//! Cross-crate integration tests pinning the *paper's statements* as
//! executable claims — one test per headline theorem/barrier, run on
//! instances small enough for CI.

use rand::rngs::StdRng;
use rand::SeedableRng;
use semi_oblivious_routing::core::lowerbound::adversarial_demand;
use semi_oblivious_routing::core::sample::{demand_pairs, sample_k};
use semi_oblivious_routing::core::SemiObliviousRouting;
use semi_oblivious_routing::flow::{max_concurrent_flow, Demand};
use semi_oblivious_routing::graph::gen::{self, TwoStar};
use semi_oblivious_routing::oblivious::routing::oblivious_congestion;
use semi_oblivious_routing::oblivious::{GreedyBitFix, KspRouting, ValiantHypercube};

/// Theorem 2.5's shape: each extra sampled path polynomially improves the
/// ratio. Checked as strict dominance s=1 → s=2 → s=4 on the hypercube's
/// adversarial permutation.
#[test]
fn power_of_choices_is_monotone_and_steep() {
    let d = 7;
    let g = gen::hypercube(d);
    let demand = Demand::from_pairs(
        gen::bit_reversal_perm(d)
            .into_iter()
            .filter(|(s, t)| s != t),
    );
    let base = ValiantHypercube::new(g.clone());
    let mut ratios = Vec::new();
    for s in [1usize, 2, 4] {
        let mut rng = StdRng::seed_from_u64(100 + s as u64);
        let sampled = sample_k(&base, &demand_pairs(&demand), s, &mut rng);
        let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
        ratios.push(sor.congestion(&demand, 0.25));
    }
    assert!(
        ratios[0] > 1.5 * ratios[1] && ratios[1] > 1.1 * ratios[2],
        "expected a steep drop with s: {ratios:?}"
    );
}

/// The deterministic barrier (\[KKT91\] via §1.1): greedy bit-fixing pays
/// ~2^{d/2}/2 on bit reversal, while the oblivious base stays O(1) — the
/// gap the semi-oblivious construction bridges deterministically.
#[test]
fn deterministic_single_path_barrier() {
    let d = 8;
    let g = gen::hypercube(d);
    let demand = Demand::from_pairs(
        gen::bit_reversal_perm(d)
            .into_iter()
            .filter(|(s, t)| s != t),
    );
    let greedy = GreedyBitFix::new(g.clone());
    let valiant = ValiantHypercube::new(g);
    let cg = oblivious_congestion(&greedy, &demand);
    let cv = oblivious_congestion(&valiant, &demand);
    assert!(
        (cg - 8.0).abs() < 1e-9,
        "greedy wall should be exactly 2^{{d/2}}/2 = 8, got {cg}"
    );
    assert!(cv < 2.5, "Valiant expected congestion {cv}");
}

/// Section 8 vs Theorem 2.3 on the same gadget: a 1-sample is exploitable
/// by the adversary (ratio ≈ r), while a log-sample defeats it (ratio
/// near 1) — the upper and lower bounds bracketing each other.
#[test]
fn lower_bound_and_upper_bound_bracket() {
    let r = 4;
    let m = 12;
    let ts = TwoStar::new(r, m);
    let g = ts.graph().clone();
    let base = KspRouting::new(g.clone(), r);
    let mut pairs = Vec::new();
    for i in 0..m {
        for j in 0..m {
            pairs.push((ts.left_leaf(i), ts.right_leaf(j)));
        }
    }

    // sparse: adversary wins
    let mut rng = StdRng::seed_from_u64(1);
    let sparse = sample_k(&base, &pairs, 1, &mut rng).system;
    let sparse_res = adversarial_demand(&ts, &sparse).expect("covered");
    assert!(
        sparse_res.ratio() >= 2.0,
        "adversary should beat a 1-sparse system, got {}",
        sparse_res.ratio()
    );

    // log-dense: adversary neutralized — verify on the *same* demand the
    // adversary found for the sparse system.
    let mut rng2 = StdRng::seed_from_u64(2);
    let dense = sample_k(&base, &pairs, 4 * r, &mut rng2).system;
    let sor = SemiObliviousRouting::new(g.clone(), dense);
    let hard_demand = &sparse_res.demand;
    if sor.covers(hard_demand) {
        let cong = sor.congestion(hard_demand, 0.1);
        let opt = max_concurrent_flow(&g, hard_demand, 0.1).congestion_upper;
        assert!(
            cong / opt < sparse_res.ratio() * 0.75,
            "dense sample ({}) should beat the sparse certificate ({})",
            cong / opt,
            sparse_res.ratio()
        );
    }
}

/// Obliviousness boundary: the path system is fixed before demands; two
/// different demands routed over the same installed system both stay
/// competitive (no per-demand reinstallation happened).
#[test]
fn one_system_many_demands() {
    let g = gen::grid(4, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let base = semi_oblivious_routing::oblivious::RaeckeRouting::build(g.clone(), 8, &mut rng);
    let pairs = semi_oblivious_routing::core::sample::all_pairs(&g);
    let sampled = sample_k(&base, &pairs, 4, &mut rng);
    let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
    for seed in 0..3 {
        let mut drng = StdRng::seed_from_u64(50 + seed);
        let dm = semi_oblivious_routing::flow::demand::random_permutation(&g, &mut drng);
        let cong = sor.congestion(&dm, 0.2);
        let opt = max_concurrent_flow(&g, &dm, 0.2).congestion_upper;
        assert!(
            cong / opt < 4.0,
            "seed {seed}: the one installed system should serve all demands, ratio {}",
            cong / opt
        );
    }
}
