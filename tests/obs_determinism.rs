//! Observability must never change what the pipeline computes.
//!
//! Runs the full seeded pipeline (Räcke build → sampling → integral
//! routing → packet simulation) twice — once with metric/span capture
//! off, once on — and asserts bit-identical routing output. Also checks
//! the coverage acceptance bar (≥10 distinct metrics spanning ≥4
//! crates) and exercises the public `sor-obs` surface end to end.
//!
//! The tests share the process-global metrics registry, so they
//! serialize on a local mutex.

use rand::rngs::StdRng;
use rand::SeedableRng;
use semi_oblivious_routing::cli::{parse_demand, parse_graph};
use semi_oblivious_routing::core::sample::{demand_pairs, sample_k};
use semi_oblivious_routing::core::SemiObliviousRouting;
use semi_oblivious_routing::graph::Path;
use semi_oblivious_routing::oblivious::RaeckeRouting;
use semi_oblivious_routing::obs;
use semi_oblivious_routing::sched::{try_simulate, Policy};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Everything the pipeline decides, in one comparable bundle.
#[derive(PartialEq, Debug)]
struct RunOutput {
    routes: Vec<Vec<u32>>,
    makespan: u64,
    congestion_bits: u64,
    dilation: u64,
    mean_latency_bits: Option<u64>,
    max_queue: usize,
}

/// The `sor sim` pipeline on twostar:2x6 with s = 4, seed 42.
fn run_pipeline() -> RunOutput {
    let seed = 42;
    let g = parse_graph("twostar:2x6", seed).expect("graph spec");
    let demand = parse_demand("perm", &g, seed).expect("demand spec");
    let mut rng = StdRng::seed_from_u64(seed);
    let base = RaeckeRouting::build(g.clone(), 8, &mut rng);
    let sampled = sample_k(&base, &demand_pairs(&demand), 4, &mut rng);
    let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
    let integral = sor.route_integral(&demand, 0.15, &mut rng);
    let mut routes: Vec<Path> = Vec::new();
    for (j, &(a, b, _)) in demand.entries().iter().enumerate() {
        let paths = sor.system().paths(a, b);
        for (i, &c) in integral.counts[j].iter().enumerate() {
            for _ in 0..c {
                routes.push(paths[i].clone());
            }
        }
    }
    let res = try_simulate(&g, &routes, Policy::Fifo).expect("simulation");
    RunOutput {
        routes: routes
            .iter()
            .map(|p| p.nodes().iter().map(|n| n.0).collect())
            .collect(),
        makespan: res.makespan,
        congestion_bits: res.congestion.to_bits(),
        dilation: res.dilation,
        mean_latency_bits: res.mean_latency().map(f64::to_bits),
        max_queue: res.max_queue,
    }
}

#[test]
fn capture_does_not_change_routing_output() {
    let _guard = serial();
    obs::set_enabled(false);
    obs::reset();
    let plain = run_pipeline();
    obs::set_enabled(true);
    obs::reset();
    let instrumented = run_pipeline();
    obs::set_enabled(false);
    assert_eq!(
        plain, instrumented,
        "enabling metric/span capture changed the routing output"
    );
}

#[test]
fn instrumented_run_meets_coverage_bar() {
    let _guard = serial();
    obs::set_enabled(true);
    obs::reset();
    {
        let _root: obs::Span = obs::span("test/pipeline");
        run_pipeline();
    }
    let snap: obs::Snapshot = obs::snapshot();
    obs::set_enabled(false);

    // ≥10 distinct named metrics spanning ≥4 crates (acceptance bar).
    assert!(
        snap.num_metrics() >= 10,
        "only {} metrics captured",
        snap.num_metrics()
    );
    let mut crates: Vec<&str> = snap
        .counters
        .iter()
        .map(|c: &obs::CounterSnapshot| c.name.as_str())
        .chain(
            snap.histograms
                .iter()
                .map(|h: &obs::HistogramSnapshot| h.name.as_str()),
        )
        .filter_map(|name| name.split('/').next())
        .collect();
    crates.sort_unstable();
    crates.dedup();
    assert!(
        crates.len() >= 4,
        "metrics span only {} crates: {crates:?}",
        crates.len()
    );
    for want in ["flow", "oblivious", "core", "sched"] {
        assert!(crates.contains(&want), "no metrics from {want}");
    }

    // The span tree nests under the root and renders.
    let root = snap
        .spans
        .iter()
        .find(|s: &&obs::SpanSnapshot| s.path == ["test/pipeline"])
        .expect("root span recorded");
    assert_eq!(root.calls, 1);
    assert!(root.total_ns > 0);
    assert!(
        snap.spans.iter().any(|s| s.depth() > 0),
        "no nested phases recorded"
    );
    let rendered = obs::render_phase_tree(&snap.spans);
    assert!(rendered.contains("test/pipeline"));
    assert!(obs::phase_report().contains("test/pipeline"));

    // JSON export carries the same inventory.
    let json = snap.to_json();
    assert!(json.contains("\"counters\""));
    assert!(json.contains("flow/restricted/phases"));
}

#[test]
fn metrics_registry_surface() {
    let _guard = serial();
    obs::set_enabled(true);
    obs::reset();
    assert!(obs::enabled());

    let c: std::sync::Arc<obs::Counter> = obs::counter("test/api/counter");
    c.inc();
    obs::count("test/api/counter", 2);
    obs::count_usize("test/api/counter", 3);
    assert_eq!(c.get(), 6);

    let h: std::sync::Arc<obs::Histogram> = obs::histogram("test/api/ratio", &obs::RATIO_BUCKETS);
    h.observe(0.5);
    obs::observe("test/api/ratio", &obs::RATIO_BUCKETS, 100.0); // overflow bucket

    let reg: &obs::MetricsRegistry = obs::registry();
    let snap = reg.snapshot();
    let hs = snap
        .histograms
        .iter()
        .find(|h| h.name == "test/api/ratio")
        .expect("histogram registered");
    assert_eq!(hs.count, 2);
    let overflow: &obs::BucketCount = hs.buckets.last().expect("overflow bucket");
    assert!(overflow.le.is_none());
    assert_eq!(overflow.count, 1);

    obs::set_enabled(false);
}

#[test]
fn logging_surface() {
    let _guard = serial();
    obs::set_sink(obs::Sink::Memory);
    obs::set_log_level(obs::Level::Debug);
    assert_eq!(obs::log_level(), obs::Level::Debug);
    assert!(obs::log_enabled(obs::Level::Warn));
    obs::log(
        obs::Level::Warn,
        "obs_determinism",
        format_args!("captured {}", 1),
    );
    let lines = obs::take_captured();
    assert_eq!(lines.len(), 1);
    assert!(lines[0].contains("captured 1"));
    obs::set_log_level(obs::Level::Off);
    assert!(!obs::log_enabled(obs::Level::Error));
    obs::set_log_level(obs::Level::Warn);
    obs::set_sink(obs::Sink::Stderr);
}
