//! End-to-end integration tests spanning every crate: graph → oblivious
//! routing → sampling → rate adaptation → evaluation → scheduling.

use rand::rngs::StdRng;
use rand::SeedableRng;
use semi_oblivious_routing::core::eval::evaluate;
use semi_oblivious_routing::core::sample::{demand_pairs, sample_k, sample_k_plus_cut};
use semi_oblivious_routing::core::SemiObliviousRouting;
use semi_oblivious_routing::flow::{demand, max_concurrent_flow, Demand};
use semi_oblivious_routing::graph::{gen, NodeId};
use semi_oblivious_routing::oblivious::{RaeckeRouting, ValiantHypercube};
use semi_oblivious_routing::sched::{simulate, Policy};

/// The full fractional pipeline on three different topologies.
#[test]
fn full_pipeline_on_three_topologies() {
    let cases: Vec<(&str, semi_oblivious_routing::graph::Graph)> = vec![
        ("grid", gen::grid(4, 4)),
        ("torus", gen::torus(3, 5)),
        ("abilene", gen::abilene()),
    ];
    for (name, g) in cases {
        let mut rng = StdRng::seed_from_u64(1);
        let base = RaeckeRouting::build(g.clone(), 6, &mut rng);
        let dm = demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&base, &demand_pairs(&dm), 4, &mut rng);
        let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
        let report = evaluate(&sor, std::slice::from_ref(&dm), Some(&base), 0.2);
        let ratio = report.worst_ratio();
        assert!(
            (0.6..8.0).contains(&ratio),
            "{name}: pipeline ratio {ratio} out of range"
        );
        // Semi-oblivious adaptation never loses to its own base routing
        // by much (it can route exactly like a sampled sub-distribution).
        let vs_obl = report.worst_ratio_vs_oblivious().unwrap();
        assert!(vs_obl < 3.0, "{name}: vs-oblivious ratio {vs_obl}");
    }
}

/// Same seed ⇒ byte-identical results across the whole stack.
#[test]
fn determinism_end_to_end() {
    let run = || {
        let g = gen::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(99);
        let base = RaeckeRouting::build(g.clone(), 5, &mut rng);
        let dm = demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&base, &demand_pairs(&dm), 3, &mut rng);
        let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
        sor.congestion(&dm, 0.2)
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_bits(), b.to_bits(), "pipeline is not deterministic");
}

/// Fractional congestion lower-bounds integral congestion, which is then
/// realized by an actual packet schedule.
#[test]
fn integral_routing_feeds_scheduler() {
    let d = 5;
    let g = gen::hypercube(d);
    let base = ValiantHypercube::new(g.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let dm = demand::random_permutation(&g, &mut rng);
    let sampled = sample_k(&base, &demand_pairs(&dm), 4, &mut rng);
    let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
    let frac = sor.route_fractional(&dm, 0.2);
    let integral = sor.route_integral(&dm, 0.2, &mut rng);
    assert!(
        integral.congestion + 1e-9 >= frac.congestion / 1.3,
        "integral {} can't be far below fractional {}",
        integral.congestion,
        frac.congestion
    );

    // Feed the integral assignment to the scheduler.
    let mut routes = Vec::new();
    for (counts, &(a, b, _)) in integral.counts.iter().zip(dm.entries()) {
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                routes.push(sor.system().paths(a, b)[i].clone());
            }
        }
    }
    let sim = simulate(&g, &routes, Policy::RandomPriority { seed: 4 });
    assert!(sim.makespan >= sim.lower_bound());
    // the simulator's congestion is per-direction; the routing's is
    // undirected, so directed is at most undirected
    assert!(sim.congestion <= integral.congestion + 1e-9);
    assert!(sim.congestion >= integral.congestion / 2.0 - 1e-9);
    assert!(
        sim.makespan as f64 <= (sim.congestion + 1.0) * (sim.dilation as f64 + 1.0),
        "makespan {} exceeds C·D envelope",
        sim.makespan
    );
}

/// The (s+cut)-sample covers demands a plain s-sample chokes on.
#[test]
fn cut_sampling_handles_heavy_demands() {
    let g = gen::dumbbell(5, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let base = RaeckeRouting::build(g.clone(), 6, &mut rng);
    let mut dm = Demand::new();
    dm.add(NodeId(4), NodeId(9), 6.0); // heavy cross-dumbbell pair

    let mut rng_a = StdRng::seed_from_u64(6);
    let plain = sample_k(&base, &demand_pairs(&dm), 1, &mut rng_a);
    let mut rng_b = StdRng::seed_from_u64(6);
    let cut = sample_k_plus_cut(&base, &g, &demand_pairs(&dm), 1, &mut rng_b);
    let sor_plain = SemiObliviousRouting::new(g.clone(), plain.system);
    let sor_cut = SemiObliviousRouting::new(g.clone(), cut.system);
    let c_plain = sor_plain.congestion(&dm, 0.15);
    let c_cut = sor_cut.congestion(&dm, 0.15);
    assert!(
        c_cut <= c_plain + 1e-9,
        "(1+cut)-sample {c_cut} should beat 1-sample {c_plain}"
    );
    let opt = max_concurrent_flow(&g, &dm, 0.15).congestion_upper;
    assert!(
        c_cut / opt < 2.5,
        "cut-sample ratio {} too large",
        c_cut / opt
    );
}

/// Permutations on hypercubes: the headline Theorem 2.3 configuration,
/// run at two scales with the ratio staying flat-ish (polylog, not
/// polynomial).
#[test]
fn log_sparsity_scales() {
    let mut ratios = Vec::new();
    for d in [4usize, 6] {
        let g = gen::hypercube(d);
        let base = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(10 + d as u64);
        let dm = demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&base, &demand_pairs(&dm), d, &mut rng);
        let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
        let c = sor.congestion(&dm, 0.2);
        let opt = max_concurrent_flow(&g, &dm, 0.2).congestion_upper;
        ratios.push(c / opt);
    }
    for &r in &ratios {
        assert!(r < 5.0, "log-sparsity ratio {r} too large");
    }
    // quadrupling n (d: 4→6) must not double the ratio (it's polylog)
    assert!(
        ratios[1] <= ratios[0] * 2.0 + 0.5,
        "ratio grew too fast: {ratios:?}"
    );
}
