//! Umbrella-level exercise of the live telemetry plane's public
//! surface: window constants and snapshots, log-bucket geometry, the
//! epoch timeline, SLO breach records and health summaries, Prometheus
//! name mangling, and the serve-side wall/delta carriers. This is the
//! cross-crate coverage for API items whose natural callers live inside
//! their own crate (`sor-obs`, `sor-serve`).
//!
//! The tests share the process-global metrics registry, so they
//! serialize on a local mutex.

use semi_oblivious_routing::graph::gen;
use semi_oblivious_routing::obs;
use semi_oblivious_routing::obs::window::{
    log_bucket_of, SeriesKind, DEFAULT_EWMA_ALPHA, DEFAULT_WINDOW_CAPACITY, SUB_BUCKETS, WINDOWS,
};
use semi_oblivious_routing::obs::{
    prom_name, EpochRecord, EpochTimeline, HealthSummary, SloBreach, SloConfig, SloInputs,
    SloWatchdog, WindowRegistry, WindowSnapshot,
};
use semi_oblivious_routing::serve::{
    run_workload_with_telemetry, CacheDeltas, EngineConfig, EpochWalls, ServeTelemetry,
    WorkloadConfig,
};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn window_constants_and_snapshots_describe_the_plane() {
    let _guard = serial();
    obs::reset();
    obs::set_enabled(true);

    // the documented defaults: every standard window fits in the ring
    assert_eq!(WINDOWS, [1, 10, 60]);
    assert!(DEFAULT_WINDOW_CAPACITY >= *WINDOWS.iter().max().expect("non-empty"));
    const { assert!(DEFAULT_EWMA_ALPHA > 0.0 && DEFAULT_EWMA_ALPHA <= 1.0) };

    let w = WindowRegistry::with_config(DEFAULT_WINDOW_CAPACITY, DEFAULT_EWMA_ALPHA);
    obs::counter_add!("umbrella/ticked", 5);
    obs::observe_into!("umbrella/obs_hist", &obs::POW2_BUCKETS, 3.0);
    w.tick(&obs::snapshot());
    obs::set_enabled(false);

    let snaps: Vec<WindowSnapshot> = w.snapshot();
    let counter = snaps
        .iter()
        .find(|s| s.name == "umbrella/ticked")
        .expect("counter series ticked in");
    assert_eq!(counter.kind, SeriesKind::Counter);
    assert!((counter.rate1 - 5.0).abs() < 1e-9);
    assert!(
        (counter.ewma - 5.0).abs() < 1e-9,
        "EWMA seeds from first delta"
    );
    let hist = snaps
        .iter()
        .find(|s| s.name == "umbrella/obs_hist")
        .expect("histogram count series ticked in");
    assert_eq!(hist.kind, SeriesKind::HistogramCount);
    assert_eq!(hist.kind.label(), "histogram");
    assert!((hist.total - 1.0).abs() < 1e-9);
}

#[test]
fn log_bucket_geometry_matches_sub_bucket_constant() {
    // SUB_BUCKETS buckets per doubling: v and 2v land exactly
    // SUB_BUCKETS apart
    assert_eq!(log_bucket_of(1.0), Some(0));
    assert_eq!(log_bucket_of(2.0), Some(SUB_BUCKETS));
    assert_eq!(log_bucket_of(4.0), Some(2 * SUB_BUCKETS));
    assert_eq!(
        log_bucket_of(0.5),
        None,
        "sub-unit values use the underflow bucket"
    );
    assert_eq!(log_bucket_of(f64::NAN), None);
}

#[test]
fn timeline_and_watchdog_round_trip_breaches() {
    let timeline = EpochTimeline::with_capacity(obs::timeline::DEFAULT_TIMELINE_CAPACITY);
    let watchdog = SloWatchdog::new(SloConfig {
        max_congestion_ratio: Some(1.5),
        max_p99_epoch_wall_ms: None,
        min_cache_hit_rate: None,
        max_fallback_fraction: None,
    });
    let mut rec = EpochRecord {
        epoch: 0,
        congestion: 3.0,
        fresh_congestion: Some(1.0),
        admitted: 4,
        ..EpochRecord::default()
    };
    let breaches: Vec<SloBreach> = watchdog.evaluate(&rec, SloInputs::default());
    assert_eq!(breaches.len(), 1);
    assert_eq!(breaches[0].rule, "max_congestion_ratio");
    assert!((breaches[0].value - 3.0).abs() < 1e-9);
    assert!((breaches[0].threshold - 1.5).abs() < 1e-9);
    assert!(breaches[0].event_line().starts_with("SLO breach epoch=0"));
    rec.slo_breaches = breaches.iter().map(|b| b.rule.to_string()).collect();
    timeline.push(rec);
    assert_eq!(timeline.len(), 1);

    let summary: HealthSummary = watchdog.summary();
    assert_eq!(summary.epochs_evaluated, 1);
    assert_eq!(summary.total_breaches, 1);
    assert!(!summary.healthy());
    assert!(summary.render().contains("degraded"));
}

#[test]
fn prom_names_are_sanitized() {
    assert_eq!(prom_name("serve/cache_hits"), "sor_serve_cache_hits");
    assert_eq!(prom_name("a-b.c/d"), "sor_a_b_c_d");
}

#[test]
fn serve_walls_and_cache_deltas_flow_through_the_plane() {
    let _guard = serial();
    obs::reset();
    obs::set_enabled(true);
    let g = gen::hypercube(3);
    let ecfg = EngineConfig {
        sparsity: 2,
        trees: 3,
        epoch_batch: 16,
        queue_bound: 32,
        cache_capacity: 4,
        seed: 5,
        ..EngineConfig::default()
    };
    let wcfg = WorkloadConfig {
        epochs: 4,
        rate: 4,
        patterns: 1,
        pairs_per_pattern: 2,
        seed: 5,
        ..WorkloadConfig::default()
    };
    let telemetry = Arc::new(ServeTelemetry::default());
    let report = run_workload_with_telemetry(&g, ecfg, &wcfg, Some(Arc::clone(&telemetry)));
    obs::set_enabled(false);

    // per-epoch cache deltas sum back to the lifetime counters
    let total: CacheDeltas = report
        .snapshots
        .iter()
        .fold(CacheDeltas::default(), |acc, s| CacheDeltas {
            hits: acc.hits + s.cache.hits,
            misses: acc.misses + s.cache.misses,
            evictions: acc.evictions + s.cache.evictions,
            invalidations: acc.invalidations + s.cache.invalidations,
        });
    assert_eq!(total.hits, report.cache.hits);
    assert_eq!(total.misses, report.cache.misses);

    // replaying a published snapshot with synthetic walls feeds the tail
    // histograms of a fresh plane
    let replay = ServeTelemetry::new(SloConfig::disabled());
    let walls = EpochWalls {
        epoch_ns: 5_000_000,
        reopt_ns: 1_000_000,
        cache_lookup_ns: 10_000,
    };
    let snap = report.snapshots.first().expect("epochs ran");
    replay.record_epoch(snap, 0, 0, walls);
    assert_eq!(replay.timeline().len(), 1);
    let rec = replay.timeline().records().remove(0);
    assert_eq!(rec.epoch_wall_ns, walls.epoch_ns);
}
