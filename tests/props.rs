//! Property-based tests (proptest) over the core data structures and
//! invariants, exercised across randomly generated graphs and demands.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use semi_oblivious_routing::core::process::deletion_process;
use semi_oblivious_routing::core::sample::{demand_pairs, sample_k};
use semi_oblivious_routing::core::{PathSystem, SemiObliviousRouting};
use semi_oblivious_routing::flow::{Demand, EdgeLoads};
use semi_oblivious_routing::graph::{gen, yen_ksp, Graph, NodeId};
use semi_oblivious_routing::oblivious::KspRouting;
use semi_oblivious_routing::sched::{simulate, Policy};

/// A random connected graph from a seed: ER with p chosen comfortably
/// above the connectivity threshold.
fn arb_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (2.5 * (n as f64).ln() / n as f64).min(0.9);
    gen::erdos_renyi_connected(n, p, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Yen's paths are valid, simple, distinct, and sorted by length.
    #[test]
    fn ksp_paths_valid_distinct_sorted(seed in 0u64..500, n in 6usize..14, k in 1usize..6) {
        let g = arb_graph(n, seed);
        let s = NodeId(0);
        let t = NodeId::from_usize(n - 1);
        let len = g.unit_lengths();
        let paths = yen_ksp(&g, s, t, k, &len);
        prop_assert!(!paths.is_empty());
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].length(&len) <= w[1].length(&len) + 1e-9);
            prop_assert!(w[0] != w[1]);
        }
        for p in &paths {
            prop_assert!(p.validate(&g));
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.target(), t);
        }
    }

    /// Sampling never exceeds the sparsity budget and always covers the
    /// requested pairs with valid paths.
    #[test]
    fn sampling_respects_sparsity(seed in 0u64..500, n in 6usize..12, k in 1usize..7) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let pairs = vec![(NodeId(0), NodeId::from_usize(n - 1)), (NodeId(1), NodeId(2))];
        let sampled = sample_k(&base, &pairs, k, &mut rng);
        prop_assert!(sampled.system.sparsity() <= k);
        prop_assert!(sampled.system.validate(&g));
        for &(s, t) in &pairs {
            prop_assert!(sampled.system.covers(s, t));
            prop_assert_eq!(sampled.draws(s, t), k);
        }
    }

    /// More candidates can only help (up to MWU solver noise): congestion
    /// of a union system is at most that of either component, within the
    /// solver's (1+O(ε)) slack.
    #[test]
    fn union_system_no_worse(seed in 0u64..200, n in 6usize..12) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 6);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let dm = Demand::from_pairs([(NodeId(0), NodeId::from_usize(n - 1))]);
        let pairs = demand_pairs(&dm);
        let a = sample_k(&base, &pairs, 2, &mut rng).system;
        let b = sample_k(&base, &pairs, 2, &mut rng).system;
        let u = a.union(&b);
        let eps = 0.1;
        let ca = SemiObliviousRouting::new(g.clone(), a).congestion(&dm, eps);
        let cb = SemiObliviousRouting::new(g.clone(), b).congestion(&dm, eps);
        let cu = SemiObliviousRouting::new(g.clone(), u).congestion(&dm, eps);
        prop_assert!(cu <= ca.min(cb) * 1.35 + 1e-9,
            "union congestion {} vs components {} / {}", cu, ca, cb);
    }

    /// Deletion-process bookkeeping: survived + deleted = total, and every
    /// overcongested edge ends with zero load.
    #[test]
    fn process_accounting(seed in 0u64..300, n in 6usize..12, tau in 0.2f64..3.0) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1111);
        let dm = Demand::from_pairs([
            (NodeId(0), NodeId::from_usize(n - 1)),
            (NodeId(1), NodeId::from_usize(n - 2)),
        ]);
        let sampled = sample_k(&base, &demand_pairs(&dm), 3, &mut rng);
        let out = deletion_process(&g, &sampled, &dm, tau);
        let deleted: f64 = out.deleted_at.iter().sum();
        prop_assert!((out.total_weight - out.survived_weight - deleted).abs() < 1e-9);
        for &e in &out.overcongested {
            prop_assert!(out.final_loads.load(e) < 1e-9);
        }
        prop_assert!(out.survival_fraction() >= 0.0 && out.survival_fraction() <= 1.0 + 1e-12);
    }

    /// Scheduler sandwich: lower bound ≤ makespan ≤ (C+1)(D+1) envelope,
    /// for all three policies.
    #[test]
    fn scheduler_sandwich(seed in 0u64..300, n in 6usize..12, packets in 1usize..8) {
        let g = arb_graph(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2222);
        let dm = semi_oblivious_routing::flow::demand::random_one_demand(&g, packets, &mut rng);
        let routes: Vec<_> = dm
            .entries()
            .iter()
            .map(|&(s, t, _)| semi_oblivious_routing::graph::bfs_path(&g, s, t).unwrap())
            .collect();
        for policy in [
            Policy::Fifo,
            Policy::RandomPriority { seed },
            Policy::RandomDelay { seed, max_delay: 3 },
        ] {
            let r = simulate(&g, &routes, policy);
            prop_assert!(r.makespan >= r.lower_bound());
            let envelope = (r.congestion + 1.0) * (r.dilation as f64 + 1.0) + 3.0;
            prop_assert!((r.makespan as f64) <= envelope,
                "makespan {} > envelope {}", r.makespan, envelope);
        }
    }

    /// Demand algebra: `plus` and `scaled` behave like pointwise ops.
    #[test]
    fn demand_algebra(amount in 0.01f64..10.0, factor in 0.0f64..4.0) {
        let d = Demand::from_triples([
            (NodeId(0), NodeId(1), amount),
            (NodeId(2), NodeId(3), 1.0),
        ]);
        let sum = d.plus(&d);
        prop_assert!((sum.size() - 2.0 * d.size()).abs() < 1e-9);
        let sc = d.scaled(factor);
        prop_assert!((sc.size() - factor * d.size()).abs() < 1e-9);
        let (a, b) = d.partition(|_, _, x| x >= 1.0);
        prop_assert!((a.size() + b.size() - d.size()).abs() < 1e-12);
    }

    /// EdgeLoads arithmetic is consistent with per-path accounting.
    #[test]
    fn loads_arithmetic(seed in 0u64..200, n in 6usize..12, w in 0.1f64..5.0) {
        let g = arb_graph(n, seed);
        let p = semi_oblivious_routing::graph::bfs_path(&g, NodeId(0), NodeId::from_usize(n - 1)).unwrap();
        let mut l = EdgeLoads::for_graph(&g);
        l.add_path(&p, w);
        prop_assert!((l.total() - w * p.hops() as f64).abs() < 1e-9);
        l.add_path(&p, -w);
        prop_assert!(l.max_load() < 1e-9);
    }

    /// PathSystem failure filtering removes exactly the crossing paths.
    #[test]
    fn failure_filtering(seed in 0u64..200, n in 6usize..12) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3333);
        let pairs = vec![(NodeId(0), NodeId::from_usize(n - 1))];
        let system = sample_k(&base, &pairs, 4, &mut rng).system;
        let dead = semi_oblivious_routing::graph::EdgeId(0);
        let filtered = system.without_edges(&[dead]);
        for (_, _, paths) in filtered.pairs() {
            for p in paths {
                prop_assert!(!p.contains_edge(dead));
            }
        }
        prop_assert!(filtered.total_paths() <= system.total_paths());
    }
}

/// Non-proptest sanity: PathSystem dedups and unions correctly on a fixed
/// instance (kept here so the file tests the type directly too).
#[test]
fn path_system_dedup_union_fixed() {
    let g = gen::cycle_graph(6);
    let paths = yen_ksp(&g, NodeId(0), NodeId(3), 2, &g.unit_lengths());
    let mut a = PathSystem::new();
    assert!(a.insert(NodeId(0), NodeId(3), paths[0].clone()));
    assert!(!a.insert(NodeId(0), NodeId(3), paths[0].clone()));
    let mut b = PathSystem::new();
    b.insert(NodeId(0), NodeId(3), paths[1].clone());
    let u = a.union(&b);
    assert_eq!(u.paths(NodeId(0), NodeId(3)).len(), 2);
}
