//! Integration test: the full export/install round trip across crates —
//! a semi-oblivious system serialized to the portable text formats,
//! reloaded, and verified to route identically.

use rand::rngs::StdRng;
use rand::SeedableRng;
use semi_oblivious_routing::core::sample::{demand_pairs, sample_k};
use semi_oblivious_routing::core::{system_from_text, system_to_text, SemiObliviousRouting};
use semi_oblivious_routing::flow::{demand_from_text, demand_to_text};
use semi_oblivious_routing::graph::{gen, graph_from_text, graph_to_text};
use semi_oblivious_routing::oblivious::RaeckeRouting;

#[test]
fn export_install_round_trip_preserves_routing() {
    // Build a complete installable artifact…
    let g = gen::abilene();
    let mut rng = StdRng::seed_from_u64(17);
    let base = RaeckeRouting::build(g.clone(), 6, &mut rng);
    let tm = semi_oblivious_routing::te::gravity_tm(
        &semi_oblivious_routing::te::Scenario::abilene(),
        3.0,
        &mut rng,
    );
    let sampled = sample_k(&base, &demand_pairs(&tm), 4, &mut rng);

    // …serialize all three pieces…
    let g_text = graph_to_text(&g);
    let sys_text = system_to_text(&sampled.system);
    let tm_text = demand_to_text(&tm);

    // …reload on the "other side"…
    let g2 = graph_from_text(&g_text).expect("graph round trip");
    let sys2 = system_from_text(&g2, &sys_text).expect("system round trip");
    let tm2 = demand_from_text(&tm_text, g2.num_nodes()).expect("demand round trip");

    // …and verify the reloaded controller routes identically.
    let sor1 = SemiObliviousRouting::new(g, sampled.system);
    let sor2 = SemiObliviousRouting::new(g2, sys2);
    let c1 = sor1.congestion(&tm, 0.15);
    let c2 = sor2.congestion(&tm2, 0.15);
    assert_eq!(
        c1.to_bits(),
        c2.to_bits(),
        "reloaded system routes differently: {c1} vs {c2}"
    );
}

#[test]
fn corrupted_artifacts_are_rejected() {
    let g = gen::cycle_graph(6);
    let mut rng = StdRng::seed_from_u64(1);
    let base = RaeckeRouting::build(g.clone(), 3, &mut rng);
    let dm = semi_oblivious_routing::flow::demand::random_matching(&g, 2, &mut rng);
    let sampled = sample_k(&base, &demand_pairs(&dm), 2, &mut rng);
    let sys_text = system_to_text(&sampled.system);

    // install against the wrong topology → must be rejected, not mangled
    let wrong = gen::path_graph(6);
    assert!(system_from_text(&wrong, &sys_text).is_err());
}
