//! Sliding-window aggregation: live rates over the metrics registry and
//! streaming tail-latency percentiles.
//!
//! The PR-3 registry is cumulative — perfect for post-mortem snapshots,
//! useless for "what is the cache hit rate *right now*". This module
//! adds the live view without touching the hot recording path at all:
//! a [`WindowRegistry`] samples a [`Snapshot`] once per **tick** (the
//! tick source is injected by the caller — the serving engine ticks once
//! per epoch — so tests stay seeded and reproducible) and keeps the
//! per-tick deltas in fixed-capacity ring buffers. From the rings it
//! derives window rates (1/10/60-tick) and an EWMA-smoothed rate.
//!
//! Because the deltas are differences of the registry's exact counters,
//! window sums are **exact** under any amount of concurrent
//! `counter_add!` traffic — the concurrency hammer test pins that down.
//!
//! Tail latencies get a different tool: [`LogHistogram`], a mergeable
//! log-bucketed histogram (geometric buckets, [`SUB_BUCKETS`] per
//! doubling) whose quantile estimates are within one bucket — a factor
//! `2^(1/SUB_BUCKETS)` — of the exact sorted-sample quantile. Recording
//! is a couple of relaxed atomic adds, so it is safe on the epoch path.

use crate::Snapshot;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// The standard window lengths, in ticks: instantaneous, short, long.
pub const WINDOWS: [usize; 3] = [1, 10, 60];

/// Ring capacity of each per-metric series — enough for the longest
/// standard window with slack.
pub const DEFAULT_WINDOW_CAPACITY: usize = 64;

/// Default EWMA smoothing factor (weight of the newest tick).
pub const DEFAULT_EWMA_ALPHA: f64 = 0.2;

/// Number of window-registry shards (FNV over the metric name, same
/// discipline as the metrics registry).
const SHARDS: usize = 8;

fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    usize::try_from(h % (SHARDS as u64)).unwrap_or(0)
}

/// Which registry facet a window series tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// A counter's value.
    Counter,
    /// A histogram's observation count.
    HistogramCount,
}

impl SeriesKind {
    /// Short label for exposition and dashboards.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::HistogramCount => "histogram",
        }
    }
}

/// Per-metric ring of per-tick deltas plus the EWMA state.
struct Series {
    kind: SeriesKind,
    /// Newest delta at the back; bounded by the registry capacity.
    deltas: VecDeque<f64>,
    /// Cumulative value at the most recent tick.
    last_total: f64,
    ewma: f64,
    ticks: u64,
}

impl Series {
    fn new(kind: SeriesKind, capacity: usize) -> Self {
        Series {
            kind,
            deltas: VecDeque::with_capacity(capacity),
            last_total: 0.0,
            ewma: 0.0,
            ticks: 0,
        }
    }

    fn push(&mut self, total: f64, capacity: usize, alpha: f64) {
        // A registry reset() can pull a cumulative value back below the
        // last sample; treat the new total as the whole delta then.
        let delta = if total >= self.last_total {
            total - self.last_total
        } else {
            total
        };
        self.last_total = total;
        self.deltas.push_back(delta);
        if self.deltas.len() > capacity {
            self.deltas.pop_front();
        }
        self.ewma = if self.ticks == 0 {
            delta
        } else {
            alpha * delta + (1.0 - alpha) * self.ewma
        };
        self.ticks += 1;
    }

    fn window_sum(&self, w: usize) -> f64 {
        self.deltas.iter().rev().take(w.max(1)).sum()
    }

    fn rate(&self, w: usize) -> f64 {
        let w = w.max(1);
        let have = self.deltas.len().min(w).max(1);
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — window lengths are tiny
        let denom = have as f64;
        self.window_sum(w) / denom
    }
}

/// Point-in-time window view of one metric.
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Counter or histogram-count series.
    pub kind: SeriesKind,
    /// Per-tick rate over the last 1 tick (the newest delta).
    pub rate1: f64,
    /// Per-tick rate over the last [`WINDOWS`]`[1]` ticks.
    pub rate10: f64,
    /// Per-tick rate over the last [`WINDOWS`]`[2]` ticks.
    pub rate60: f64,
    /// EWMA-smoothed per-tick rate.
    pub ewma: f64,
    /// Cumulative value at the last tick.
    pub total: f64,
}

/// Sliding-window registry: ring-buffer time-series for every counter
/// and histogram of a sampled [`Snapshot`] (see module docs). All state
/// is behind sharded locks; ticking and querying are safe from any
/// thread, and the tick index itself is one atomic.
pub struct WindowRegistry {
    shards: Vec<Mutex<BTreeMap<String, Series>>>,
    capacity: usize,
    alpha: f64,
    tick: AtomicU64,
}

impl Default for WindowRegistry {
    fn default() -> Self {
        Self::with_config(DEFAULT_WINDOW_CAPACITY, DEFAULT_EWMA_ALPHA)
    }
}

impl WindowRegistry {
    /// Registry with the default capacity and smoothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry with an explicit ring capacity (ticks retained per
    /// metric) and EWMA alpha.
    pub fn with_config(capacity: usize, alpha: f64) -> Self {
        assert!(capacity >= 1, "window registry needs capacity >= 1");
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        WindowRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            capacity,
            alpha,
            tick: AtomicU64::new(0),
        }
    }

    /// Advance the deterministic tick clock by one, ingesting `snap`:
    /// every counter value and histogram count becomes a per-tick delta
    /// in its metric's ring. The caller owns the tick cadence — the
    /// serving engine ticks once per epoch — which is what keeps window
    /// contents seeded-reproducible.
    pub fn tick(&self, snap: &Snapshot) {
        self.tick.fetch_add(1, Ordering::Relaxed);
        for c in &snap.counters {
            #[allow(clippy::cast_precision_loss)]
            // sor-check: allow(lossy-cast) — work counters are far below 2^52
            let total = c.value as f64;
            self.ingest(&c.name, SeriesKind::Counter, total);
        }
        for h in &snap.histograms {
            #[allow(clippy::cast_precision_loss)]
            // sor-check: allow(lossy-cast) — observation counts are far below 2^52
            let total = h.count as f64;
            self.ingest(&h.name, SeriesKind::HistogramCount, total);
        }
    }

    fn ingest(&self, name: &str, kind: SeriesKind, total: f64) {
        let mut shard = self.shards[shard_of(name)].lock();
        shard
            // sor-check: allow(alloc-in-hot) — one key allocation per metric name, first tick only (BTreeMap keys must be owned)
            .entry(name.to_string())
            .or_insert_with(|| Series::new(kind, self.capacity))
            .push(total, self.capacity, self.alpha);
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Sum of per-tick deltas of `name` over the last `w` ticks, or
    /// `None` if the metric has never been ticked in.
    pub fn window_sum(&self, name: &str, w: usize) -> Option<f64> {
        let shard = self.shards[shard_of(name)].lock();
        shard.get(name).map(|s| s.window_sum(w))
    }

    /// Window view of one metric, or `None` if it has never been ticked
    /// in.
    pub fn rates(&self, name: &str) -> Option<WindowSnapshot> {
        let shard = self.shards[shard_of(name)].lock();
        shard.get(name).map(|s| Self::view(name, s))
    }

    fn view(name: &str, s: &Series) -> WindowSnapshot {
        WindowSnapshot {
            name: name.to_string(),
            kind: s.kind,
            rate1: s.rate(WINDOWS[0]),
            rate10: s.rate(WINDOWS[1]),
            rate60: s.rate(WINDOWS[2]),
            ewma: s.ewma,
            total: s.last_total,
        }
    }

    /// Name-sorted window view of every tracked metric.
    pub fn snapshot(&self) -> Vec<WindowSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (name, s) in shard.iter() {
                out.push(Self::view(name, s));
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

// ---------------------------------------------------------------------
// Log-bucketed streaming percentiles
// ---------------------------------------------------------------------

/// Log-histogram resolution: buckets per doubling of the value. Bucket
/// `i` covers `[2^(i/SUB_BUCKETS), 2^((i+1)/SUB_BUCKETS))`, so a
/// quantile estimate is within a factor `2^(1/SUB_BUCKETS)` (~19%) of
/// the exact value — one bucket.
pub const SUB_BUCKETS: usize = 4;

/// Number of log buckets: covers `[1, 2^64)`, i.e. nanosecond latencies
/// up to several centuries.
const NUM_LOG_BUCKETS: usize = 64 * SUB_BUCKETS;

/// A mergeable log-bucketed histogram for streaming percentiles
/// (p50/p90/p99/p999 of epoch wall, re-opt wall, cache lookup, queue
/// wait). Values below 1 land in a dedicated underflow bucket; recording
/// is lock-free (relaxed atomic adds), merging is bucket-wise addition,
/// and quantiles come from a cumulative walk.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    underflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: (0..NUM_LOG_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// Bucket index of a value `>= 1`; values below 1 (or non-finite) have
/// no log bucket and live in the underflow bucket. Public so tests can
/// assert the "within one bucket" quantile contract.
pub fn log_bucket_of(v: f64) -> Option<usize> {
    if !v.is_finite() || v < 1.0 {
        return None;
    }
    #[allow(clippy::cast_precision_loss)]
    // sor-check: allow(lossy-cast) — SUB_BUCKETS is a small constant
    let scaled = v.log2() * SUB_BUCKETS as f64;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // sor-check: allow(lossy-cast) — non-negative and clamped below the bucket count
    let idx = scaled.floor().max(0.0) as usize;
    Some(idx.min(NUM_LOG_BUCKETS - 1))
}

/// Inclusive-exclusive upper edge of log bucket `i`.
fn log_bucket_upper(i: usize) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    // sor-check: allow(lossy-cast) — bucket indices are tiny
    let exp = (i + 1) as f64 / SUB_BUCKETS as f64;
    exp.exp2()
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (a couple of relaxed atomic adds; safe on
    /// the epoch path).
    pub fn observe(&self, v: f64) {
        match log_bucket_of(v) {
            // sor-check: allow(panic-path) — log_bucket_of clamps below the bucket count
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.underflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() { v } else { 0.0 };
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Fold another histogram into this one (bucket-wise; the mergeable
    /// property that lets per-shard or per-thread histograms combine).
    pub fn merge(&self, other: &LogHistogram) {
        self.underflow
            .fetch_add(other.underflow.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = other.sum();
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed (finite) values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Quantile estimate for `q` in `[0, 1]`: the upper edge of the
    /// bucket holding the rank-`⌈q·count⌉` observation (1.0 for the
    /// underflow bucket). `None` when empty. Within one log bucket of
    /// the exact sorted-sample quantile by construction.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — observation counts are far below 2^52
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // sor-check: allow(lossy-cast) — rank is in [1, count]
        let rank = rank as u64;
        let mut seen = self.underflow.load(Ordering::Relaxed);
        if seen >= rank {
            return Some(1.0);
        }
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(log_bucket_upper(i));
            }
        }
        // Counts raced ahead of buckets under concurrent recording;
        // answer with the largest occupied edge.
        Some(log_bucket_upper(NUM_LOG_BUCKETS - 1))
    }

    /// The standard tail summary: (p50, p90, p99, p999), or `None` when
    /// empty.
    pub fn tail_summary(&self) -> Option<(f64, f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.99)?,
            self.quantile(0.999)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterSnapshot, HistogramSnapshot};

    fn snap_with(counters: &[(&str, u64)]) -> Snapshot {
        Snapshot {
            counters: counters
                .iter()
                .map(|&(name, value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: Vec::new(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn deltas_and_rates_follow_ticks() {
        let w = WindowRegistry::new();
        w.tick(&snap_with(&[("a", 10)]));
        w.tick(&snap_with(&[("a", 30)]));
        w.tick(&snap_with(&[("a", 30)]));
        assert_eq!(w.ticks(), 3);
        let r = w.rates("a").expect("ticked in");
        assert!((r.rate1 - 0.0).abs() < 1e-12, "newest delta is 0");
        assert!((r.rate10 - 10.0).abs() < 1e-12, "(10+20+0)/3 over 3 ticks");
        assert!((r.total - 30.0).abs() < 1e-12);
        assert_eq!(w.window_sum("a", 2), Some(20.0));
        assert_eq!(w.window_sum("missing", 2), None);
    }

    #[test]
    fn ewma_smooths_and_seeds_from_first_delta() {
        let w = WindowRegistry::with_config(8, 0.5);
        w.tick(&snap_with(&[("a", 8)]));
        assert!((w.rates("a").expect("present").ewma - 8.0).abs() < 1e-12);
        w.tick(&snap_with(&[("a", 8)]));
        // 0.5*0 + 0.5*8 = 4
        assert!((w.rates("a").expect("present").ewma - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ring_is_bounded_and_reset_tolerated() {
        let w = WindowRegistry::with_config(4, 0.2);
        for i in 1..=10u64 {
            w.tick(&snap_with(&[("a", i)]));
        }
        // capacity 4: the 60-tick window still only sees 4 deltas of 1
        assert_eq!(w.window_sum("a", 60), Some(4.0));
        // a registry reset pulls the cumulative value down; the new
        // total counts as the whole delta
        w.tick(&snap_with(&[("a", 3)]));
        assert_eq!(w.window_sum("a", 1), Some(3.0));
    }

    #[test]
    fn histogram_counts_tick_too() {
        let w = WindowRegistry::new();
        let snap = Snapshot {
            counters: Vec::new(),
            histograms: vec![HistogramSnapshot {
                name: "h".to_string(),
                buckets: Vec::new(),
                count: 5,
                sum: 2.5,
            }],
            spans: Vec::new(),
        };
        w.tick(&snap);
        let view = w.snapshot();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].kind, SeriesKind::HistogramCount);
        assert!((view[0].rate1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_quantiles_are_within_one_bucket() {
        let h = LogHistogram::new();
        for v in 1..=1000u32 {
            h.observe(f64::from(v));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).expect("non-empty");
        // exact p50 is 500; the estimate is the bucket upper edge
        let exact_bucket = log_bucket_of(500.0).expect("in range");
        let est_bucket = log_bucket_of(p50).expect("in range");
        assert!(
            est_bucket.abs_diff(exact_bucket) <= 1,
            "p50 estimate {p50} is {est_bucket} vs exact bucket {exact_bucket}"
        );
        let (q50, q90, q99, q999) = h.tail_summary().expect("non-empty");
        assert!(q50 <= q90 && q90 <= q99 && q99 <= q999);
    }

    #[test]
    fn empty_log_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        // no bucket-0 (or any) value may leak out of an empty histogram:
        // every quantile, and the tail summary built from them, is None
        for q in [0.0, 0.01, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q} on empty histogram");
        }
        assert_eq!(h.tail_summary(), None);
        // the first observation flips every quantile to a real edge
        h.observe(2.0);
        assert!(h.quantile(0.5).is_some());
        assert!(h.tail_summary().is_some());
    }

    #[test]
    fn log_histogram_underflow_and_merge() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.observe(0.25); // underflow
        a.observe(4.0);
        b.observe(1024.0);
        b.observe(f64::NAN); // counted, no bucket, sum unchanged
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.sum() - (0.25 + 4.0 + 1024.0)).abs() < 1e-9);
        assert_eq!(a.quantile(0.01), Some(1.0), "underflow answers as 1.0");
        let p99 = a.quantile(0.99).expect("non-empty");
        assert!(p99 >= 1024.0, "tail reaches the merged large value");
        assert!(LogHistogram::new().quantile(0.5).is_none());
    }
}
