//! The sharded metrics registry: monotonic counters and fixed-bucket
//! histograms.
//!
//! Registration (name → cell) goes through one of `SHARDS` mutex-guarded
//! maps picked by an FNV-1a hash of the metric name, so unrelated metrics
//! never contend; after registration a counter is a single `AtomicU64`
//! and a histogram is a row of them, both updatable from any thread
//! without taking a lock. The hot-path macros in the crate root
//! ([`crate::counter_add!`], [`crate::observe_into!`]) additionally cache
//! the `Arc` handle per call site, so the steady-state cost of an
//! increment is one relaxed atomic load (the [`crate::enabled`] guard)
//! plus one atomic add.

use crate::Snapshot;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of registry shards (power of two; metric names hash across
/// them so registration of unrelated metrics never contends).
const SHARDS: usize = 16;

/// Power-of-two bucket edges for small nonnegative counts (hop lengths,
/// queue depths): `≤1, ≤2, ≤4, …, ≤128`, plus the implicit overflow
/// bucket.
pub const POW2_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Geometric bucket edges around 1.0 for ratio-like values (per-edge
/// load / congestion): `≤⅛ … ≤32`, plus the implicit overflow bucket.
pub const RATIO_BUCKETS: [f64; 9] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// A monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram: `bounds` are inclusive upper edges; one
/// extra overflow bucket catches everything above the last edge. The sum
/// is kept as `f64` bits in an atomic, updated by compare-exchange, so
/// recording stays lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        debug_assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite — the overflow bucket (le: null / le=\"+Inf\") \
             is implicit and always present"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation. A value exactly on a bucket edge lands in
    /// that bucket (edges are inclusive upper bounds); values above the
    /// last edge land in the overflow bucket.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The inclusive upper edges this histogram was registered with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, aligned with [`Histogram::bounds`] plus one
    /// overflow bucket at the end.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// One bucket of a [`HistogramSnapshot`]: the inclusive upper edge
/// (`None` = overflow bucket) and the count that landed in it.
#[derive(Clone, Debug, PartialEq)]
pub struct BucketCount {
    /// Inclusive upper edge; `None` for the overflow bucket.
    pub le: Option<f64>,
    /// Observations in this bucket.
    pub count: u64,
}

/// Snapshot of one counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshot of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Per-bucket edges and counts (overflow bucket last).
    pub buckets: Vec<BucketCount>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<&'static str, Arc<Counter>>>,
    histograms: Mutex<HashMap<&'static str, Arc<Histogram>>>,
}

/// The process-wide sharded metrics store. Use [`registry`] for the
/// global instance; a fresh instance is only useful in tests.
pub struct MetricsRegistry {
    shards: Vec<Shard>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }
}

/// FNV-1a over the metric name — stable across processes, so shard
/// assignment (and with it any lock interleaving) is deterministic.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    usize::try_from(h % (SHARDS as u64)).unwrap_or(0)
}

impl MetricsRegistry {
    /// Get or register the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let shard = &self.shards[shard_of(name)];
        Arc::clone(
            shard
                .counters
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get or register the histogram `name` with inclusive upper edges
    /// `bounds` (used only at first registration).
    pub fn histogram(&self, name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
        let shard = &self.shards[shard_of(name)];
        Arc::clone(
            shard
                .histograms
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Zero every counter and histogram in place (handles stay valid).
    pub fn reset(&self) {
        for shard in &self.shards {
            for c in shard.counters.lock().values() {
                c.reset();
            }
            for h in shard.histograms.lock().values() {
                h.reset();
            }
        }
    }

    /// Name-sorted snapshot of every registered counter.
    pub fn counter_snapshots(&self) -> Vec<CounterSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (name, c) in shard.counters.lock().iter() {
                out.push(CounterSnapshot {
                    name: (*name).to_string(),
                    value: c.get(),
                });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Name-sorted snapshot of every registered histogram.
    pub fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (name, h) in shard.histograms.lock().iter() {
                let counts = h.bucket_counts();
                let buckets = h
                    .bounds()
                    .iter()
                    .map(|&b| Some(b))
                    .chain(std::iter::once(None))
                    .zip(counts)
                    .map(|(le, count)| BucketCount { le, count })
                    .collect();
                out.push(HistogramSnapshot {
                    name: (*name).to_string(),
                    buckets,
                    count: h.count(),
                    sum: h.sum(),
                });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Full registry + span-tree snapshot (the export object of the
    /// `--metrics-out` flag and the `BENCH_*.json` files).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counter_snapshots(),
            histograms: self.histogram_snapshots(),
            spans: crate::span::span_snapshots(),
        }
    }
}

/// The global registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Get or register the global counter `name`. Registration is
/// unconditional; prefer [`count`] / [`crate::counter_add!`] at
/// recording sites so disabled runs register nothing.
pub fn counter(name: &'static str) -> Arc<Counter> {
    registry().counter(name)
}

/// Get or register the global histogram `name`.
pub fn histogram(name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
    registry().histogram(name, bounds)
}

/// Add `n` to counter `name` if capture is enabled (registering it on
/// first touch). For hot loops prefer [`crate::counter_add!`], which
/// caches the handle per call site.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if crate::enabled() {
        registry().counter(name).add(n);
    }
}

/// [`count`] with a `usize` increment (saturating into `u64`).
#[inline]
pub fn count_usize(name: &'static str, n: usize) {
    count(name, u64::try_from(n).unwrap_or(u64::MAX));
}

/// Record `v` into histogram `name` if capture is enabled, registering
/// with `bounds` on first touch. For hot loops prefer
/// [`crate::observe_into!`].
#[inline]
pub fn observe(name: &'static str, bounds: &[f64], v: f64) {
    if crate::enabled() {
        registry().histogram(name, bounds).observe(v);
    }
}

/// Serialize access to the process-global capture switch and registry in
/// unit tests (they run on a shared thread pool).
#[cfg(test)]
pub(crate) fn test_lock() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = MetricsRegistry::default();
        let c = r.counter("metrics/test/counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same name → same cell
        assert_eq!(r.counter("metrics/test/counter").get(), 5);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // ≤1
        h.observe(1.0); // ≤1 (exactly on the edge)
        h.observe(1.0000001); // ≤2
        h.observe(2.0); // ≤2
        h.observe(4.0); // ≤4
        h.observe(100.0); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (0.5 + 1.0 + 1.0000001 + 2.0 + 4.0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn histogram_extreme_values() {
        let h = Histogram::new(&[1.0]);
        h.observe(0.0);
        h.observe(-3.0); // below every edge → first bucket
        h.observe(f64::INFINITY); // overflow bucket
        assert_eq!(h.bucket_counts(), vec![2, 1]);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::default();
        r.counter("metrics/test/b").inc();
        r.counter("metrics/test/a").add(2);
        r.histogram("metrics/test/h", &[1.0]).observe(0.5);
        let counters = r.counter_snapshots();
        let names: Vec<&str> = counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["metrics/test/a", "metrics/test/b"]);
        let histos = r.histogram_snapshots();
        assert_eq!(histos.len(), 1);
        assert_eq!(histos[0].buckets.len(), 2);
        assert_eq!(histos[0].buckets[1].le, None);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let r = MetricsRegistry::default();
        let c = r.counter("metrics/test/reset");
        let h = r.histogram("metrics/test/reset_h", &[1.0]);
        c.add(7);
        h.observe(0.5);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        // cells survive the reset
        c.inc();
        assert_eq!(r.counter("metrics/test/reset").get(), 1);
    }

    #[test]
    fn shard_of_is_stable() {
        // the exact values don't matter; cross-process stability does
        assert_eq!(shard_of("flow/mwu/phases"), shard_of("flow/mwu/phases"));
        assert!(shard_of("a") < SHARDS);
    }
}
