//! Snapshot reader and diff engine.
//!
//! The writer half of the export lives in [`crate::json`]; this module
//! closes the loop: [`parse_snapshot`] reads an exported JSON document
//! back into a [`Snapshot`] (plus its `meta` fields), and [`diff`]
//! compares two snapshots under a [`DiffPolicy`] — the engine behind
//! `sor-bench`'s `perf --gate` baseline check.
//!
//! Diff semantics, by metric kind:
//!
//! * **Counters, histogram counts, span call counts** — deterministic
//!   work metrics under the workspace's seeded RNG. They gate exactly
//!   (`counter_tol = 0`) or within a relative tolerance.
//! * **Histogram sums** — deterministic but float-valued; gate within
//!   `value_tol` (relative).
//! * **Span wall times** — noisy. They gate loosely by ratio (median
//!   above `wall_warn_ratio`× baseline warns, above `wall_fail_ratio`×
//!   fails), only above a `min_wall_ns` floor (tiny spans are all
//!   jitter), and only when `compare_wall` is set at all.
//! * **Missing / added metrics** — a metric present in the baseline but
//!   absent from the current run fails (work disappeared silently);
//!   a new metric only warns (instrumentation grew — refresh the
//!   baseline when intended).

use crate::json::{parse_json, JsonValue};
use crate::{BucketCount, CounterSnapshot, HistogramSnapshot, Snapshot, SpanSnapshot};

/// Separator used when flattening a span path into one metric name.
pub const SPAN_PATH_SEP: &str = " > ";

/// Parse an exported snapshot document (as produced by
/// [`Snapshot::to_json_with_meta`]) back into the snapshot plus its
/// `meta` string fields. `sum: null` / `le: null` from non-finite floats
/// map back to `NaN` (sums) and the overflow bucket (edges).
pub fn parse_snapshot(text: &str) -> Result<(Snapshot, Vec<(String, String)>), String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let snap = snapshot_from_value(&doc)?;
    let mut meta = Vec::new();
    if let Some(members) = doc.get("meta").and_then(JsonValue::as_obj) {
        for (k, v) in members {
            let v = v
                .as_str()
                .ok_or_else(|| format!("meta field '{k}' is not a string"))?;
            meta.push((k.clone(), v.to_string()));
        }
    }
    Ok((snap, meta))
}

/// Reconstruct a [`Snapshot`] from a parsed JSON document with the
/// export's `counters` / `histograms` / `spans` sections. Usable on a
/// nested [`JsonValue`] too (e.g. a snapshot embedded in a larger
/// baseline document).
pub fn snapshot_from_value(doc: &JsonValue) -> Result<Snapshot, String> {
    let counters = doc
        .get("counters")
        .and_then(JsonValue::as_arr)
        .ok_or("missing 'counters' array")?
        .iter()
        .map(counter_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let histograms = doc
        .get("histograms")
        .and_then(JsonValue::as_arr)
        .ok_or("missing 'histograms' array")?
        .iter()
        .map(histogram_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let spans = doc
        .get("spans")
        .and_then(JsonValue::as_arr)
        .ok_or("missing 'spans' array")?
        .iter()
        .map(span_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Snapshot {
        counters,
        histograms,
        spans,
    })
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn counter_from_value(v: &JsonValue) -> Result<CounterSnapshot, String> {
    Ok(CounterSnapshot {
        name: str_field(v, "name")?,
        value: u64_field(v, "value")?,
    })
}

fn histogram_from_value(v: &JsonValue) -> Result<HistogramSnapshot, String> {
    let name = str_field(v, "name")?;
    let sum = match v.get("sum") {
        Some(JsonValue::Num(x)) => *x,
        // the writer emits null for non-finite sums
        Some(JsonValue::Null) => f64::NAN,
        _ => return Err(format!("histogram '{name}': missing number field 'sum'")),
    };
    let buckets = v
        .get("buckets")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("histogram '{name}': missing 'buckets' array"))?
        .iter()
        .map(|b| {
            let le = match b.get("le") {
                // a non-finite edge (e.g. an overlarge literal that
                // parsed to inf) is the overflow bucket, same as null —
                // it must never round-trip into a Some(inf)/NaN edge
                Some(JsonValue::Num(x)) if x.is_finite() => Some(*x),
                Some(JsonValue::Num(_) | JsonValue::Null) => None,
                _ => return Err(format!("histogram '{name}': bucket missing 'le'")),
            };
            Ok(BucketCount {
                le,
                count: u64_field(b, "count")?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(HistogramSnapshot {
        count: u64_field(v, "count")?,
        sum,
        buckets,
        name,
    })
}

fn span_from_value(v: &JsonValue) -> Result<SpanSnapshot, String> {
    let path = v
        .get("path")
        .and_then(JsonValue::as_arr)
        .ok_or("span missing 'path' array")?
        .iter()
        .map(|seg| {
            seg.as_str()
                .map(str::to_string)
                .ok_or_else(|| "span path segment is not a string".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SpanSnapshot {
        path,
        calls: u64_field(v, "calls")?,
        total_ns: u64_field(v, "total_ns")?,
        self_ns: u64_field(v, "self_ns")?,
    })
}

/// What a [`diff`] compares and how strictly. See the module docs for
/// the rationale behind each knob.
#[derive(Clone, Debug)]
pub struct DiffPolicy {
    /// Relative tolerance for integer work metrics (counter values,
    /// histogram counts, span call counts). `0.0` = exact.
    pub counter_tol: f64,
    /// Relative tolerance for float work metrics (histogram sums).
    pub value_tol: f64,
    /// Current wall time above this multiple of baseline → warn.
    pub wall_warn_ratio: f64,
    /// Current wall time above this multiple of baseline → fail.
    pub wall_fail_ratio: f64,
    /// Spans whose baseline wall time is below this floor are skipped
    /// for wall comparison (pure jitter).
    pub min_wall_ns: u64,
    /// Compare span wall times at all. Off for noise-proof CI gating.
    pub compare_wall: bool,
}

impl Default for DiffPolicy {
    fn default() -> Self {
        DiffPolicy {
            counter_tol: 0.0,
            value_tol: 1e-9,
            wall_warn_ratio: 1.3,
            wall_fail_ratio: 1.6,
            min_wall_ns: 200_000,
            compare_wall: false,
        }
    }
}

impl DiffPolicy {
    /// A policy that also gates wall times (loosely, per the ratios).
    pub fn with_wall(mut self) -> Self {
        self.compare_wall = true;
        self
    }
}

/// Severity of one [`Delta`], and of a whole [`SnapshotDiff`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiffStatus {
    /// Within policy.
    Pass,
    /// Suspicious but not gating (slow wall time, new metric).
    Warn,
    /// Out of policy — the gate should reject the run.
    Fail,
}

impl DiffStatus {
    /// Short uppercase tag for reports.
    pub fn tag(self) -> &'static str {
        match self {
            DiffStatus::Pass => "PASS",
            DiffStatus::Warn => "WARN",
            DiffStatus::Fail => "FAIL",
        }
    }
}

/// Which facet of a metric a [`Delta`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// A counter's value.
    Counter,
    /// A histogram's observation count.
    HistogramCount,
    /// A histogram's value sum.
    HistogramSum,
    /// A span path's call count.
    SpanCalls,
    /// A span path's total wall time.
    SpanWall,
    /// A derived quality metric (competitive ratio, MLU ratio, …).
    /// Never produced by [`diff`] itself — downstream gate engines
    /// (`sor-bench`'s perf harness) compose their quality comparisons
    /// into the same delta/report machinery.
    Quality,
    /// Metric present in baseline, absent in current.
    Missing,
    /// Metric absent in baseline, present in current.
    Added,
}

impl DeltaKind {
    /// Human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DeltaKind::Counter => "counter",
            DeltaKind::HistogramCount => "histogram count",
            DeltaKind::HistogramSum => "histogram sum",
            DeltaKind::SpanCalls => "span calls",
            DeltaKind::SpanWall => "span wall",
            DeltaKind::Quality => "quality",
            DeltaKind::Missing => "missing",
            DeltaKind::Added => "added",
        }
    }
}

/// One out-of-policy (or informational) comparison result.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Metric name (span paths joined with [`SPAN_PATH_SEP`]).
    pub metric: String,
    /// Which facet differed.
    pub kind: DeltaKind,
    /// Baseline value (`NaN` when the metric is new).
    pub base: f64,
    /// Current value (`NaN` when the metric vanished).
    pub cur: f64,
    /// Severity under the policy.
    pub status: DiffStatus,
    /// One-line explanation for the report.
    pub note: String,
}

/// Result of diffing a current snapshot against a baseline.
#[derive(Clone, Debug, Default)]
pub struct SnapshotDiff {
    /// Number of individual comparisons performed.
    pub checked: usize,
    /// Non-pass results only, in metric order.
    pub deltas: Vec<Delta>,
}

impl SnapshotDiff {
    /// Worst status across all deltas ([`DiffStatus::Pass`] when empty).
    pub fn status(&self) -> DiffStatus {
        self.deltas
            .iter()
            .map(|d| d.status)
            .max()
            .unwrap_or(DiffStatus::Pass)
    }

    /// Count of [`DiffStatus::Fail`] deltas.
    pub fn num_fail(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.status == DiffStatus::Fail)
            .count()
    }

    /// Count of [`DiffStatus::Warn`] deltas.
    pub fn num_warn(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.status == DiffStatus::Warn)
            .count()
    }

    /// Render a human-readable report block (empty string when clean).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            out.push_str(&format!(
                "  [{}] {} ({}): baseline {} -> current {} — {}\n",
                d.status.tag(),
                d.metric,
                d.kind.label(),
                fmt_val(d.base),
                fmt_val(d.cur),
                d.note
            ));
        }
        out
    }
}

fn fmt_val(v: f64) -> String {
    if v.is_nan() {
        "—".to_string()
    // sor-check: allow(float-eq) — fract()==0.0 is an exact integrality test for display
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// Relative deviation of `cur` from `base` (absolute when `base == 0`).
fn rel_dev(base: f64, cur: f64) -> f64 {
    // sor-check: allow(float-eq) — 0.0 is an exact sentinel (absolute-dev fallback)
    if base == 0.0 {
        cur.abs()
    } else {
        ((cur - base) / base).abs()
    }
}

/// Diff `cur` against `base` under `policy`. Metrics are matched by
/// name (span paths flattened with [`SPAN_PATH_SEP`]); both snapshots
/// are name-sorted by construction, so the walk is a linear merge.
pub fn diff(base: &Snapshot, cur: &Snapshot, policy: &DiffPolicy) -> SnapshotDiff {
    let mut out = SnapshotDiff::default();

    merge_by_name(
        &base.counters,
        &cur.counters,
        |c| c.name.clone(),
        &mut out,
        |b, c, out| {
            compare_u64(
                out,
                &b.name,
                DeltaKind::Counter,
                b.value,
                c.value,
                policy.counter_tol,
            );
        },
    );

    merge_by_name(
        &base.histograms,
        &cur.histograms,
        |h| h.name.clone(),
        &mut out,
        |b, c, out| {
            compare_u64(
                out,
                &b.name,
                DeltaKind::HistogramCount,
                b.count,
                c.count,
                policy.counter_tol,
            );
            out.checked += 1;
            // NaN sums (non-finite observations) compare equal to NaN:
            // the regression to catch is a *change* in non-finiteness.
            let both_nan = b.sum.is_nan() && c.sum.is_nan();
            if !both_nan && rel_dev(b.sum, c.sum) > policy.value_tol {
                out.deltas.push(Delta {
                    metric: b.name.clone(),
                    kind: DeltaKind::HistogramSum,
                    base: b.sum,
                    cur: c.sum,
                    status: DiffStatus::Fail,
                    note: format!("sum deviates beyond tolerance {}", policy.value_tol),
                });
            }
        },
    );

    merge_by_name(
        &base.spans,
        &cur.spans,
        |s| s.path.join(SPAN_PATH_SEP),
        &mut out,
        |b, c, out| {
            let name = b.path.join(SPAN_PATH_SEP);
            compare_u64(
                out,
                &name,
                DeltaKind::SpanCalls,
                b.calls,
                c.calls,
                policy.counter_tol,
            );
            if policy.compare_wall && b.total_ns >= policy.min_wall_ns {
                out.checked += 1;
                #[allow(clippy::cast_precision_loss)]
                // sor-check: allow(lossy-cast) — ns fit f64 for ratio purposes
                let (bns, cns) = (b.total_ns as f64, c.total_ns as f64);
                let ratio = if bns > 0.0 { cns / bns } else { 1.0 };
                let status = if ratio > policy.wall_fail_ratio {
                    DiffStatus::Fail
                } else if ratio > policy.wall_warn_ratio {
                    DiffStatus::Warn
                } else {
                    DiffStatus::Pass
                };
                if status != DiffStatus::Pass {
                    out.deltas.push(Delta {
                        metric: name,
                        kind: DeltaKind::SpanWall,
                        base: bns,
                        cur: cns,
                        status,
                        note: format!(
                            "wall time {ratio:.2}x baseline (warn >{:.2}x, fail >{:.2}x)",
                            policy.wall_warn_ratio, policy.wall_fail_ratio
                        ),
                    });
                }
            }
        },
    );

    out
}

fn compare_u64(out: &mut SnapshotDiff, name: &str, kind: DeltaKind, base: u64, cur: u64, tol: f64) {
    out.checked += 1;
    #[allow(clippy::cast_precision_loss)]
    // sor-check: allow(lossy-cast) — work counters are far below 2^53
    let (b, c) = (base as f64, cur as f64);
    if base != cur && rel_dev(b, c) > tol {
        out.deltas.push(Delta {
            metric: name.to_string(),
            kind,
            base: b,
            cur: c,
            status: DiffStatus::Fail,
            // sor-check: allow(float-eq) — tol==0.0 is the exact-gate configuration sentinel
            note: if tol == 0.0 {
                "deterministic work metric changed".to_string()
            } else {
                format!("deviates beyond tolerance {tol}")
            },
        });
    }
}

/// Linear merge of two name-sorted slices, dispatching matched pairs to
/// `on_pair` and recording missing/added entries.
fn merge_by_name<T>(
    base: &[T],
    cur: &[T],
    name_of: impl Fn(&T) -> String,
    out: &mut SnapshotDiff,
    mut on_pair: impl FnMut(&T, &T, &mut SnapshotDiff),
) {
    let (mut i, mut j) = (0, 0);
    while i < base.len() || j < cur.len() {
        match (base.get(i), cur.get(j)) {
            (Some(b), Some(c)) => {
                let (bn, cn) = (name_of(b), name_of(c));
                match bn.cmp(&cn) {
                    std::cmp::Ordering::Equal => {
                        on_pair(b, c, out);
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => {
                        push_missing(out, bn);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        push_added(out, cn);
                        j += 1;
                    }
                }
            }
            (Some(b), None) => {
                push_missing(out, name_of(b));
                i += 1;
            }
            (None, Some(c)) => {
                push_added(out, name_of(c));
                j += 1;
            }
            (None, None) => break,
        }
    }
}

fn push_missing(out: &mut SnapshotDiff, name: String) {
    out.checked += 1;
    out.deltas.push(Delta {
        metric: name,
        kind: DeltaKind::Missing,
        base: f64::NAN,
        cur: f64::NAN,
        status: DiffStatus::Fail,
        note: "present in baseline, absent in current run".to_string(),
    });
}

fn push_added(out: &mut SnapshotDiff, name: String) {
    out.checked += 1;
    out.deltas.push(Delta {
        metric: name,
        kind: DeltaKind::Added,
        base: f64::NAN,
        cur: f64::NAN,
        status: DiffStatus::Warn,
        note: "new metric not in baseline (refresh baseline if intended)".to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        Snapshot {
            counters: vec![
                CounterSnapshot {
                    name: "flow/oracle_calls".to_string(),
                    value: 42,
                },
                CounterSnapshot {
                    name: "flow/phases".to_string(),
                    value: 7,
                },
            ],
            histograms: vec![HistogramSnapshot {
                name: "core/path/hops".to_string(),
                buckets: vec![
                    BucketCount {
                        le: Some(2.0),
                        count: 3,
                    },
                    BucketCount { le: None, count: 1 },
                ],
                count: 4,
                sum: 11.5,
            }],
            spans: vec![SpanSnapshot {
                path: vec!["bench/run".to_string(), "frt/tree".to_string()],
                calls: 8,
                total_ns: 1_000_000,
                self_ns: 900_000,
            }],
        }
    }

    #[test]
    fn round_trip_through_reader() {
        let s = snap();
        let text = s.to_json_with_meta(&[("experiment", "e1"), ("quick", "true")]);
        let (back, meta) = parse_snapshot(&text).expect("parses");
        assert_eq!(back.counters, s.counters);
        assert_eq!(back.histograms, s.histograms);
        assert_eq!(back.spans, s.spans);
        assert_eq!(
            meta,
            vec![
                ("experiment".to_string(), "e1".to_string()),
                ("quick".to_string(), "true".to_string())
            ]
        );
    }

    #[test]
    fn round_trip_non_finite_sum_to_nan() {
        let mut s = snap();
        s.histograms[0].sum = f64::INFINITY;
        let text = s.to_json();
        assert!(text.contains("\"sum\": null"));
        let (back, _) = parse_snapshot(&text).expect("parses");
        assert!(back.histograms[0].sum.is_nan());
        // NaN sums on both sides don't trip the gate
        let d = diff(&back, &back, &DiffPolicy::default());
        assert_eq!(d.status(), DiffStatus::Pass);
    }

    #[test]
    fn overflow_bucket_round_trips_without_nan() {
        // writer: le: None renders as null; reader: null (or any
        // non-finite numeric edge a foreign writer emits) maps back to
        // None — never Some(inf)/NaN
        let s = snap();
        let text = s.to_json();
        assert!(text.contains("\"le\": null"));
        let (back, _) = parse_snapshot(&text).expect("parses");
        assert_eq!(back.histograms[0].buckets[1].le, None);
        assert!(back.histograms[0]
            .buckets
            .iter()
            .all(|b| b.le.is_none() || b.le.is_some_and(f64::is_finite)));
        // a foreign exposition that wrote an overlarge literal (parses
        // to +inf) still lands in the overflow bucket
        let foreign = text.replace("\"le\": null", "\"le\": 1e999");
        let (back2, _) = parse_snapshot(&foreign).expect("parses");
        assert_eq!(back2.histograms, s.histograms);
        // and the Prometheus exposition of the round-tripped snapshot
        // renders the overflow bucket as +Inf, not NaN
        let prom = crate::render_prometheus(&back, &crate::PromGauges::new());
        assert!(prom.contains("le=\"+Inf\""));
        assert!(!prom.contains("NaN"));
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = snap();
        let d = diff(&s, &s, &DiffPolicy::default());
        assert_eq!(d.status(), DiffStatus::Pass);
        assert!(d.deltas.is_empty());
        assert!(d.checked > 0);
    }

    #[test]
    fn counter_change_fails_exactly() {
        let base = snap();
        let mut cur = snap();
        cur.counters[0].value = 43;
        let d = diff(&base, &cur, &DiffPolicy::default());
        assert_eq!(d.status(), DiffStatus::Fail);
        let delta = &d.deltas[0];
        assert_eq!(delta.metric, "flow/oracle_calls");
        assert_eq!(delta.kind, DeltaKind::Counter);
        let report = d.render_text();
        assert!(report.contains("flow/oracle_calls"));
        assert!(report.contains("[FAIL]"));
    }

    #[test]
    fn counter_tolerance_admits_small_drift() {
        let base = snap();
        let mut cur = snap();
        cur.counters[0].value = 43; // ~2.4% off 42
        let policy = DiffPolicy {
            counter_tol: 0.05,
            ..DiffPolicy::default()
        };
        assert_eq!(diff(&base, &cur, &policy).status(), DiffStatus::Pass);
    }

    #[test]
    fn histogram_count_and_sum_gate() {
        let base = snap();
        let mut cur = snap();
        cur.histograms[0].sum = 12.5;
        let d = diff(&base, &cur, &DiffPolicy::default());
        assert_eq!(d.num_fail(), 1);
        assert_eq!(d.deltas[0].kind, DeltaKind::HistogramSum);
    }

    #[test]
    fn wall_ratios_warn_then_fail() {
        let base = snap();
        let mut cur = snap();
        let policy = DiffPolicy::default().with_wall();

        cur.spans[0].total_ns = 1_400_000; // 1.4x -> warn
        let d = diff(&base, &cur, &policy);
        assert_eq!(d.status(), DiffStatus::Warn);
        assert_eq!(d.deltas[0].kind, DeltaKind::SpanWall);

        cur.spans[0].total_ns = 1_700_000; // 1.7x -> fail
        let d = diff(&base, &cur, &policy);
        assert_eq!(d.status(), DiffStatus::Fail);

        // wall off by default: same perturbation passes
        let d = diff(&base, &cur, &DiffPolicy::default());
        assert_eq!(d.status(), DiffStatus::Pass);
    }

    #[test]
    fn tiny_spans_skip_wall_compare() {
        let mut base = snap();
        base.spans[0].total_ns = 10_000; // below min_wall_ns floor
        let mut cur = base.clone();
        cur.spans[0].total_ns = 90_000; // 9x, but tiny
        let policy = DiffPolicy::default().with_wall();
        assert_eq!(diff(&base, &cur, &policy).status(), DiffStatus::Pass);
    }

    #[test]
    fn missing_fails_added_warns() {
        let base = snap();
        let mut cur = snap();
        cur.counters.remove(0);
        cur.counters.push(CounterSnapshot {
            name: "new/metric".to_string(),
            value: 1,
        });
        cur.counters.sort_by(|a, b| a.name.cmp(&b.name));
        let d = diff(&base, &cur, &DiffPolicy::default());
        assert!(d
            .deltas
            .iter()
            .any(|x| x.kind == DeltaKind::Missing && x.status == DiffStatus::Fail));
        assert!(d
            .deltas
            .iter()
            .any(|x| x.kind == DeltaKind::Added && x.status == DiffStatus::Warn));
    }

    #[test]
    fn parse_errors_name_the_problem() {
        assert!(parse_snapshot("{").is_err());
        assert!(parse_snapshot("{\"meta\": {}}")
            .expect_err("no sections")
            .contains("counters"));
    }
}
