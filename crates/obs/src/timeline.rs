//! Epoch timeline: a bounded ring of per-epoch serving records.
//!
//! The registry answers "how much, ever"; the timeline answers "what
//! happened around epoch 37". Each published epoch appends one
//! [`EpochRecord`] — congestion vs. the fresh-sample baseline, the
//! cache's per-epoch counter deltas, fallback/unserved counts, rejected
//! ingest, the failure state, and any SLO breaches — into a fixed-size
//! ring, so a long-running `sor serve` keeps the recent past at O(1)
//! memory. The ring exports as JSON (`--timeline-out`, `/timeline` on
//! the scrape endpoint) and renders as a text dashboard.
//!
//! Everything here is plain recorded data — the timeline never feeds
//! back into routing, so it cannot perturb the bit-determinism contract.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Default number of epochs the ring retains.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 256;

/// One epoch's worth of serving telemetry (plain data; the serve crate
/// fills it in from its `EpochSnapshot` plus cache deltas).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochRecord {
    /// Engine epoch counter at publish time.
    pub epoch: u64,
    /// Requests admitted into this epoch's demand.
    pub admitted: usize,
    /// Requests rejected by ingest backpressure during this epoch.
    pub rejected: u64,
    /// Whether the path system came from the cache.
    pub cache_hit: bool,
    /// Cache hits this epoch (delta, not lifetime total).
    pub cache_hits: u64,
    /// Cache misses this epoch.
    pub cache_misses: u64,
    /// Cache evictions this epoch.
    pub cache_evictions: u64,
    /// Cache invalidations this epoch (failure-driven).
    pub cache_invalidations: u64,
    /// Published max edge congestion.
    pub congestion: f64,
    /// Congestion of a fresh same-epoch sample, when the engine ran the
    /// comparison (`compare_fresh`).
    pub fresh_congestion: Option<f64>,
    /// Pairs routed via shortest-path fallback after failures.
    pub fallback_pairs: usize,
    /// Pairs that could not be routed at all.
    pub unserved_pairs: usize,
    /// Requests still queued after the epoch batch.
    pub queue_depth: usize,
    /// Edges currently failed.
    pub failed_edges: usize,
    /// Wall time of the whole epoch, nanoseconds (0 when telemetry
    /// timing is off).
    pub epoch_wall_ns: u64,
    /// Names of SLO rules breached this epoch.
    pub slo_breaches: Vec<String>,
}

impl EpochRecord {
    /// `published congestion / fresh-sample congestion` when the
    /// comparison ran (1.0 ⇒ the cached path system costs nothing).
    pub fn congestion_ratio(&self) -> Option<f64> {
        self.fresh_congestion
            .map(|fresh| self.congestion / fresh.max(1e-12))
    }
}

/// Bounded ring of [`EpochRecord`]s. Push and read from any thread; the
/// lock is held only to move plain data in or out.
pub struct EpochTimeline {
    ring: Mutex<VecDeque<EpochRecord>>,
    capacity: usize,
}

impl Default for EpochTimeline {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TIMELINE_CAPACITY)
    }
}

impl EpochTimeline {
    /// Timeline retaining the default number of epochs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Timeline retaining the most recent `capacity` epochs.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "timeline needs capacity >= 1");
        EpochTimeline {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
        }
    }

    /// Append one epoch, evicting the oldest past capacity.
    pub fn push(&self, rec: EpochRecord) {
        let mut ring = self.ring.lock();
        // sor-check: allow(lock-order) — `ring.len()` is VecDeque::len on the live guard, not a re-acquisition
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Epochs currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no epoch has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<EpochRecord> {
        let ring = self.ring.lock();
        ring.iter().cloned().collect()
    }

    /// The retained records as a JSON document:
    /// `{"format":"sor-timeline/1","epochs":[...]}`. Hand-rolled like
    /// the snapshot export; `null` for absent fresh baselines.
    pub fn to_json(&self) -> String {
        render_records_json(&self.records())
    }

    /// [`EpochTimeline::to_json`] truncated to the most recent `last`
    /// records (the `/timeline?last=N` endpoint; `last = 0` serves an
    /// empty document).
    pub fn to_json_last(&self, last: usize) -> String {
        let records = self.records();
        let tail = records.len().saturating_sub(last);
        render_records_json(records.get(tail..).unwrap_or(&[]))
    }

    /// Render the retained records as a fixed-width text dashboard.
    pub fn render_dashboard(&self) -> String {
        let records = self.records();
        let mut out = String::new();
        out.push_str(
            "epoch   adm  rej hit  h/m/e/i      cong    fresh  ratio  fb uns  q fail   wall_ms  slo\n",
        );
        for r in &records {
            let hit = if r.cache_hit { "y" } else { "n" };
            let fresh = r
                .fresh_congestion
                .map_or_else(|| "     -".to_string(), |f| format!("{f:6.3}"));
            let ratio = r
                .congestion_ratio()
                .map_or_else(|| "    -".to_string(), |x| format!("{x:5.2}"));
            #[allow(clippy::cast_precision_loss)]
            // sor-check: allow(lossy-cast) — display only
            let wall_ms = r.epoch_wall_ns as f64 / 1e6;
            let slo = if r.slo_breaches.is_empty() {
                "-".to_string()
            } else {
                r.slo_breaches.join(",")
            };
            out.push_str(&format!(
                "{:5} {:5} {:4}   {} {:2}/{}/{}/{} {:9.3} {} {} {:3} {:3} {:2} {:4} {:9.3}  {}\n",
                r.epoch,
                r.admitted,
                r.rejected,
                hit,
                r.cache_hits,
                r.cache_misses,
                r.cache_evictions,
                r.cache_invalidations,
                r.congestion,
                fresh,
                ratio,
                r.fallback_pairs,
                r.unserved_pairs,
                r.queue_depth,
                r.failed_edges,
                wall_ms,
                slo,
            ));
        }
        out
    }
}

fn render_records_json(records: &[EpochRecord]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 256);
    out.push_str("{\"format\":\"sor-timeline/1\",\"epochs\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_record_json(&mut out, r);
    }
    out.push_str("]}");
    out
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_record_json(out: &mut String, r: &EpochRecord) {
    out.push_str(&format!(
        "{{\"epoch\":{},\"admitted\":{},\"rejected\":{},\"cache_hit\":{},",
        r.epoch, r.admitted, r.rejected, r.cache_hit
    ));
    out.push_str(&format!(
        "\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{}}},",
        r.cache_hits, r.cache_misses, r.cache_evictions, r.cache_invalidations
    ));
    out.push_str("\"congestion\":");
    push_f64(out, r.congestion);
    out.push_str(",\"fresh_congestion\":");
    match r.fresh_congestion {
        Some(f) => push_f64(out, f),
        None => out.push_str("null"),
    }
    out.push_str(",\"congestion_ratio\":");
    match r.congestion_ratio() {
        Some(x) => push_f64(out, x),
        None => out.push_str("null"),
    }
    out.push_str(&format!(
        ",\"fallback_pairs\":{},\"unserved_pairs\":{},\"queue_depth\":{},\"failed_edges\":{},\"epoch_wall_ns\":{},",
        r.fallback_pairs, r.unserved_pairs, r.queue_depth, r.failed_edges, r.epoch_wall_ns
    ));
    out.push_str("\"slo_breaches\":[");
    for (i, b) in r.slo_breaches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // rule names are identifiers; no escaping needed beyond quoting
        out.push('"');
        out.push_str(b);
        out.push('"');
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn record(epoch: u64) -> EpochRecord {
        EpochRecord {
            epoch,
            admitted: 8,
            rejected: 0,
            cache_hit: epoch > 0,
            cache_hits: u64::from(epoch > 0),
            cache_misses: u64::from(epoch == 0),
            cache_evictions: 0,
            cache_invalidations: 0,
            congestion: 1.5,
            fresh_congestion: Some(1.25),
            fallback_pairs: 0,
            unserved_pairs: 0,
            queue_depth: 0,
            failed_edges: 0,
            epoch_wall_ns: 2_000_000,
            slo_breaches: Vec::new(),
        }
    }

    #[test]
    fn ring_bounds_and_orders() {
        let t = EpochTimeline::with_capacity(3);
        assert!(t.is_empty());
        for e in 0..5 {
            t.push(record(e));
        }
        assert_eq!(t.len(), 3);
        let recs = t.records();
        assert_eq!(
            recs.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn json_round_trips_through_parser() {
        let t = EpochTimeline::new();
        t.push(record(0));
        let mut r = record(1);
        r.fresh_congestion = None;
        r.slo_breaches = vec!["max_congestion_ratio".to_string()];
        t.push(r);
        let json = t.to_json();
        let v = crate::parse_json(&json).expect("valid JSON");
        assert_eq!(
            v.get("format").and_then(|f| f.as_str()),
            Some("sor-timeline/1")
        );
        let epochs = v.get("epochs").and_then(|e| e.as_arr()).expect("array");
        assert_eq!(epochs.len(), 2);
        let first = &epochs[0];
        assert_eq!(first.get("epoch").and_then(|x| x.as_u64()), Some(0));
        let cache = first.get("cache").expect("cache object");
        assert_eq!(cache.get("misses").and_then(|x| x.as_u64()), Some(1));
        let ratio = first
            .get("congestion_ratio")
            .and_then(|x| x.as_f64())
            .expect("ratio present");
        assert!((ratio - 1.5 / 1.25).abs() < 1e-12);
        let second = &epochs[1];
        assert_eq!(
            second.get("fresh_congestion"),
            Some(&crate::JsonValue::Null)
        );
        let breaches = second
            .get("slo_breaches")
            .and_then(|b| b.as_arr())
            .expect("array");
        assert_eq!(breaches.len(), 1);
    }

    #[test]
    fn ring_wraps_exactly_at_capacity() {
        let t = EpochTimeline::with_capacity(4);
        // fill to exactly capacity: nothing evicted
        for e in 0..4 {
            t.push(record(e));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.records().iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // the next push evicts exactly the oldest
        t.push(record(4));
        assert_eq!(t.len(), 4, "capacity never exceeded");
        assert_eq!(
            t.records().iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn to_json_last_truncates_to_recent_epochs() {
        let t = EpochTimeline::new();
        for e in 0..5 {
            t.push(record(e));
        }
        let json = t.to_json_last(2);
        let v = crate::parse_json(&json).expect("valid JSON");
        let epochs = v.get("epochs").and_then(|e| e.as_arr()).expect("array");
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].get("epoch").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(epochs[1].get("epoch").and_then(|x| x.as_u64()), Some(4));
        // over-asking serves everything; zero serves an empty document
        let all = crate::parse_json(&t.to_json_last(100)).expect("valid");
        assert_eq!(
            all.get("epochs").and_then(|e| e.as_arr()).map(<[_]>::len),
            Some(5)
        );
        let none = crate::parse_json(&t.to_json_last(0)).expect("valid");
        assert_eq!(
            none.get("epochs").and_then(|e| e.as_arr()).map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn dashboard_survives_huge_cells_without_panicking() {
        let t = EpochTimeline::new();
        let mut r = record(0);
        r.epoch = 12_345_678;
        r.admitted = 9_999_999;
        r.rejected = 1_000_000_000;
        r.cache_hits = 88_888_888;
        r.congestion = 123_456_789.5;
        r.fresh_congestion = Some(9_876_543.25);
        r.fallback_pairs = 7_000_000;
        r.unserved_pairs = 8_000_000;
        r.queue_depth = 2_000_000;
        r.failed_edges = 3_000_000;
        r.epoch_wall_ns = u64::MAX;
        t.push(r);
        let dash = t.render_dashboard();
        let lines: Vec<&str> = dash.lines().collect();
        assert_eq!(lines.len(), 2, "header + 1 epoch");
        // fixed-width columns widen rather than truncate: every value
        // survives verbatim
        assert!(lines[1].contains("12345678"), "{dash}");
        assert!(lines[1].contains("9999999"), "{dash}");
        assert!(lines[1].contains("1000000000"), "{dash}");
        assert!(lines[1].contains("123456789.5"), "{dash}");
    }

    #[test]
    fn dashboard_renders_one_line_per_epoch() {
        let t = EpochTimeline::new();
        t.push(record(0));
        t.push(record(1));
        let dash = t.render_dashboard();
        let lines: Vec<&str> = dash.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 epochs");
        assert!(lines[0].contains("cong"));
        assert!(lines[1].contains("n"), "epoch 0 was a miss");
        assert!(lines[2].contains("y"), "epoch 1 hit");
    }
}
