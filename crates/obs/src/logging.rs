//! Leveled logging through one process-wide sink.
//!
//! The pipeline's diagnostics (rounding convergence warnings, topology
//! build stats, failure-replay fallbacks, …) go through the [`error!`],
//! [`warn!`], [`info!`], [`debug!`] macros instead of ad-hoc
//! `eprintln!`s, so one switch silences everything: the `sor` CLI's
//! `--quiet` maps to [`set_log_level`]`(Level::Off)` and tests can
//! redirect output into a capture buffer with [`set_sink`].
//!
//! Logging is deliberately independent of the metric/span capture
//! switch ([`crate::enabled`]): diagnostics default to [`Level::Warn`]
//! even in otherwise uninstrumented runs.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity. Ordering matters: a message is emitted when its level
/// is `<=` the configured [`log_level`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Suppress everything (the `--quiet` setting).
    Off = 0,
    /// Unrecoverable or wrong-answer conditions.
    Error = 1,
    /// Degraded behaviour the user should know about (fallbacks,
    /// non-convergence). The default.
    Warn = 2,
    /// High-level progress.
    Info = 3,
    /// Per-iteration / per-topology detail.
    Debug = 4,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Warn,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Where log lines go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sink {
    /// Write to standard error (the default).
    Stderr,
    /// Drop everything (distinct from [`Level::Off`]: the level check
    /// still runs, useful for benchmarking the logging path itself).
    Silent,
    /// Append formatted lines to an in-memory buffer readable with
    /// [`take_captured`] — for tests.
    Memory,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

fn sink_state() -> &'static Mutex<(Sink, Vec<String>)> {
    static SINK: OnceLock<Mutex<(Sink, Vec<String>)>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new((Sink::Stderr, Vec::new())))
}

/// Set the global log level.
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
pub fn log_level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Redirect log output. Switching away from [`Sink::Memory`] keeps any
/// captured lines until [`take_captured`] drains them.
pub fn set_sink(sink: Sink) {
    sink_state().lock().0 = sink;
}

/// Drain and return the lines captured while the sink was
/// [`Sink::Memory`].
pub fn take_captured() -> Vec<String> {
    std::mem::take(&mut sink_state().lock().1)
}

/// Emit one log line (the macros call this; prefer them). The line
/// format is `level target: message`.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    let line = format!("{} {}: {}", level.label(), target, args);
    let mut state = sink_state().lock();
    match state.0 {
        Sink::Stderr => eprintln!("{line}"),
        Sink::Silent => {}
        Sink::Memory => state.1.push(line),
    }
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Error) {
            $crate::log($crate::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::log($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_filter_and_sink_captures() {
        let _guard = crate::metrics::test_lock();
        set_sink(Sink::Memory);
        let _ = take_captured();
        set_log_level(Level::Warn);
        crate::warn!("shown {}", 1);
        crate::debug!("hidden");
        set_log_level(Level::Debug);
        crate::debug!("now shown");
        set_log_level(Level::Off);
        crate::error!("silenced entirely");
        let lines = take_captured();
        set_log_level(Level::Warn);
        set_sink(Sink::Stderr);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("warn "));
        assert!(lines[0].ends_with("shown 1"));
        assert!(lines[1].starts_with("debug "));
        assert!(lines[1].contains("sor_obs::logging"));
    }

    #[test]
    fn level_roundtrip_and_order() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Debug);
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
        ] {
            assert_eq!(Level::from_u8(l as u8), l);
        }
    }
}
