//! # sor-obs
//!
//! The workspace's observability layer: structured spans, metrics, and
//! leveled logging for the routing pipeline. The paper's claims are
//! quantitative (congestion competitiveness vs. sparsity `s`, completion
//! time vs. `C + D`), so every performance PR needs to see *where* the
//! iterations and the wall time go — this crate is that instrument.
//!
//! Three facilities, one registry:
//!
//! * **Spans** ([`span`]) — RAII scoped timers that nest into a phase
//!   tree (`sor/run` → `hierarchy/build` → `frt/tree`, …) with call
//!   counts and wall time, rendered as a flamegraph-style text report
//!   ([`phase_report`]).
//! * **Counters and histograms** ([`count`], [`observe`], and the
//!   cached-handle macros [`counter_add!`] and [`observe_into!`]) — a
//!   lock-cheap sharded [`MetricsRegistry`] built on the vendored
//!   `parking_lot`; counters are single atomics after registration.
//! * **Leveled logging** ([`error!`], [`warn!`], [`info!`], [`debug!`])
//!   routed through one process-wide sink, so `--quiet` can actually
//!   silence the whole pipeline and tests can capture diagnostics.
//!
//! # Zero cost when disabled
//!
//! Capture is **off by default**. Every recording call site first checks
//! [`enabled`] — one relaxed atomic load, and with the `capture` cargo
//! feature disabled the check is `const false` and the whole call folds
//! away. Metrics never feed back into any algorithm, so seeded pipeline
//! output is bit-identical with observability on or off (the workspace's
//! determinism test asserts exactly that).
//!
//! # Snapshot / export
//!
//! [`snapshot`] collects every registered counter, histogram, and span
//! into a deterministic, name-sorted [`Snapshot`]; `Snapshot::to_json`
//! hand-rolls the machine-readable export (no serde in the tree — same
//! discipline as `sor-check`'s SARIF writer). The `sor` CLI exposes it
//! as `--metrics-out FILE` / `--trace`, and `sor-bench` writes
//! `BENCH_<experiment>.json` next to its result tables.
//!
//! # Live telemetry (v2)
//!
//! On top of the cumulative registry sits a live plane for long-running
//! serving: [`window`] (sliding-window rates over deterministic ticks
//! plus log-bucketed streaming percentiles), [`timeline`] (a bounded
//! ring of per-epoch records), [`slo`] (declarative threshold
//! watchdogs), and [`expose`] (Prometheus-style text exposition over a
//! plain TCP scrape thread). All of it is read-only over recorded data
//! — live telemetry can never perturb the bit-determinism contract.
//!
//! # Flight recorder & forensics (v3)
//!
//! [`journal`] is a bounded, sharded ring of structured *causal* events
//! (admissions, cache movements, failures, fallbacks, re-opt summaries,
//! top-k edge loads, path churn) with a versioned `sor-journal/1` dump
//! format; [`forensics`] ingests a dump and attributes epoch-over-epoch
//! congestion/wall deltas to causes (failure vs. eviction vs. cold
//! sampling vs. demand churn). The serving layer snapshots the ring on
//! SLO breaches; `sor forensics` analyzes the artifact offline.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

pub mod expose;
pub mod forensics;
pub mod journal;
mod json;
mod logging;
mod metrics;
pub mod slo;
pub mod snapshot;
mod span;
pub mod timeline;
pub mod window;

pub use expose::{prom_name, render_prometheus, PromGauges, TelemetryHandler, TelemetryServer};
pub use forensics::{
    analyze, fold_epochs, Cause, CauseAttribution, EdgeShift, EpochStats, EpochTransition,
    ForensicsReport, CAUSES,
};
pub use journal::{
    parse_journal, EdgeLoad, Journal, JournalDump, JournalEvent, DEFAULT_JOURNAL_CAPACITY,
    JOURNAL_SHARDS,
};
pub use json::{parse_json, JsonError, JsonValue};
pub use logging::{
    log, log_enabled, log_level, set_log_level, set_sink, take_captured, Level, Sink,
};
pub use metrics::{
    count, count_usize, counter, histogram, observe, registry, BucketCount, Counter,
    CounterSnapshot, Histogram, HistogramSnapshot, MetricsRegistry, POW2_BUCKETS, RATIO_BUCKETS,
};
pub use slo::{HealthSummary, SloBreach, SloConfig, SloInputs, SloWatchdog, SLO_RULES};
pub use span::{phase_report, render_phase_tree, span, Span, SpanSnapshot};
pub use timeline::{EpochRecord, EpochTimeline};
pub use window::{LogHistogram, WindowRegistry, WindowSnapshot};

/// Runtime capture switch (compile-time gated by the `capture` feature).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric/span capture is currently on. One relaxed atomic load;
/// statically `false` when the crate is built without the `capture`
/// feature, so guarded call sites vanish entirely.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "capture") && ENABLED.load(Ordering::Relaxed)
}

/// Turn metric/span capture on or off. A no-op (capture stays off) when
/// the `capture` feature is compiled out.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zero every registered counter and histogram and clear the span tree.
///
/// Handles returned by [`counter`] / [`histogram`] (including the ones
/// cached by [`counter_add!`] / [`observe_into!`]) stay valid — the
/// registry zeroes values in place rather than dropping the cells, so a
/// cached handle never counts into a detached metric.
pub fn reset() {
    metrics::registry().reset();
    span::reset_spans();
}

/// A full, deterministic (name-sorted) dump of the registry and the span
/// tree. See [`snapshot`].
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// The span phase tree, sorted by path.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// Number of distinct named metrics (counters + histograms).
    pub fn num_metrics(&self) -> usize {
        self.counters.len() + self.histograms.len()
    }

    /// Serialize to the machine-readable JSON export, optionally with
    /// extra top-level string fields (`meta`), e.g. the experiment id.
    pub fn to_json_with_meta(&self, meta: &[(&str, &str)]) -> String {
        json::snapshot_to_json(self, meta)
    }

    /// Serialize to the machine-readable JSON export.
    pub fn to_json(&self) -> String {
        self.to_json_with_meta(&[])
    }
}

/// Collect a [`Snapshot`] of everything recorded so far.
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: metrics::registry().counter_snapshots(),
        histograms: metrics::registry().histogram_snapshots(),
        spans: span::span_snapshots(),
    }
}

/// Increment a named counter through a call-site-cached handle: the
/// registry is consulted once per call site, after which each hit is a
/// single atomic add. The name must be a `&'static str` literal. No-op
/// while capture is disabled.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {{
        if $crate::enabled() {
            static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::counter($name)).add($n);
        }
    }};
    ($name:expr) => {
        $crate::counter_add!($name, 1)
    };
}

/// Record a value into a named fixed-bucket histogram through a
/// call-site-cached handle (see [`counter_add!`]). `$bounds` are the
/// inclusive bucket upper edges used at first registration. No-op while
/// capture is disabled.
#[macro_export]
macro_rules! observe_into {
    ($name:expr, $bounds:expr, $value:expr) => {{
        if $crate::enabled() {
            static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            CELL.get_or_init(|| $crate::histogram($name, $bounds))
                .observe($value);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_toggles() {
        // Serialize against other tests that flip the global switch.
        let _guard = crate::metrics::test_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn macros_are_noops_when_disabled() {
        let _guard = crate::metrics::test_lock();
        set_enabled(false);
        counter_add!("lib/test/disabled_counter");
        observe_into!("lib/test/disabled_histo", &[1.0, 2.0], 1.5);
        let snap = snapshot();
        assert!(!snap
            .counters
            .iter()
            .any(|c| c.name == "lib/test/disabled_counter"));
        assert!(!snap
            .histograms
            .iter()
            .any(|h| h.name == "lib/test/disabled_histo"));
    }

    #[test]
    fn macros_record_when_enabled() {
        let _guard = crate::metrics::test_lock();
        set_enabled(true);
        counter_add!("lib/test/macro_counter", 3);
        counter_add!("lib/test/macro_counter");
        observe_into!("lib/test/macro_histo", &[1.0, 2.0], 1.5);
        set_enabled(false);
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|c| c.name == "lib/test/macro_counter")
            .expect("registered");
        assert_eq!(c.value, 4);
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "lib/test/macro_histo" && h.count == 1));
    }

    #[test]
    fn reset_keeps_cached_handles_valid() {
        let _guard = crate::metrics::test_lock();
        set_enabled(true);
        let c = counter("lib/test/reset_counter");
        c.add(5);
        reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        // the registry still serves the same cell
        assert_eq!(counter("lib/test/reset_counter").get(), 2);
        set_enabled(false);
    }
}
