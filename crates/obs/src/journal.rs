//! Flight recorder: a bounded, sharded ring journal of causal events.
//!
//! The timeline ([`crate::timeline`]) answers "what were the numbers
//! around epoch 37"; the journal answers "what *happened*" — the causal
//! chain of admissions, cache movements, failures, fallbacks, re-opt
//! summaries, per-edge load concentrations, and per-pair path churn that
//! explains *why* congestion moved. A long-running `sor serve` keeps the
//! recent past in a fixed-size ring; when the SLO watchdog fires, the
//! serving layer snapshots the ring to a breach-stamped dump that the
//! `sor forensics` analyzer ([`crate::forensics`]) can attribute.
//!
//! Design constraints, in order:
//!
//! * **Zero cost detached.** Nothing global: the engine holds an
//!   `Option<Arc<Journal>>` and emits only behind it. No atomics are
//!   touched on the detached path.
//! * **Bit-output-neutral attached.** Recording is strictly read-only
//!   over the epoch's outputs — events carry copies of already-published
//!   data, never feed anything back, and hold no wall clocks on the
//!   deterministic path (the serve determinism test pins bit-equality of
//!   published snapshots with the journal attached and detached).
//! * **Bounded and cheap.** Eight shards, each a pre-sized
//!   `Mutex<VecDeque>`; a global relaxed sequence counter round-robins
//!   writers across shards, so concurrent emitters (engine thread vs. a
//!   `fail_edges` caller) contend at 1/8 the rate. Past capacity the
//!   oldest event in the shard is dropped and counted.
//!
//! The dump format is versioned (`sor-journal/1`), hand-rolled like
//! every JSON writer in the tree, and round-trips through the PR-4
//! reader ([`crate::parse_json`]) via [`parse_journal`].
//!
//! This crate sits at the bottom of the workspace layering (`sor-obs`
//! depends on nothing), so events carry raw `u32` edge/node ids rather
//! than `sor-graph` newtypes; the serving layer owns the translation.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of ring shards (writers round-robin by sequence number).
pub const JOURNAL_SHARDS: usize = 8;

/// Default total event capacity across all shards.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8192;

/// One edge's load in a top-k congestion record: raw edge id, absolute
/// routed load, and load/capacity utilization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeLoad {
    /// Raw edge id (`EdgeId.0` upstream).
    pub edge: u32,
    /// Routed load on the edge (sum of rates over paths crossing it).
    pub load: f64,
    /// `load / capacity` — the congestion contribution.
    pub utilization: f64,
}

/// One structured causal event. Every variant is tagged with the epoch
/// it belongs to (for failure/restore events: the next epoch to run,
/// i.e. the first epoch the change affects).
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// An epoch started: queue depth at entry (before admission).
    EpochBegin {
        /// Epoch index.
        epoch: u64,
        /// Requests queued when the epoch began.
        queue_depth: usize,
    },
    /// The epoch admitted a batch. `demand_fp` fingerprints the ordered
    /// admitted pair set — the forensics analyzer compares consecutive
    /// fingerprints to detect demand churn.
    Admit {
        /// Epoch index.
        epoch: u64,
        /// Requests admitted.
        count: usize,
        /// Fingerprint of the admitted pair set (0 for an empty epoch).
        demand_fp: u64,
    },
    /// Backpressure rejections since the previous epoch.
    Reject {
        /// Epoch index.
        epoch: u64,
        /// Rejections attributed to this inter-epoch interval.
        count: u64,
    },
    /// The path-system cache served the epoch's system.
    CacheHit {
        /// Epoch index.
        epoch: u64,
    },
    /// The epoch sampled a fresh path system (cache miss).
    CacheMiss {
        /// Epoch index.
        epoch: u64,
    },
    /// Capacity evictions attributed to this epoch.
    CacheEvict {
        /// Epoch index.
        epoch: u64,
        /// Entries evicted.
        count: u64,
    },
    /// Failure-driven invalidations attributed to this epoch.
    CacheInvalidate {
        /// Epoch index.
        epoch: u64,
        /// Entries invalidated.
        count: u64,
    },
    /// Edges went down (raw edge ids).
    EdgeFail {
        /// First epoch the failure affects.
        epoch: u64,
        /// Newly failed edge ids.
        edges: Vec<u32>,
    },
    /// All failed edges came back up.
    EdgeRestore {
        /// First epoch the restore affects.
        epoch: u64,
        /// How many edges were restored.
        restored: usize,
    },
    /// Pairs that lost every sampled candidate and were routed on an
    /// emergency shortest path.
    Fallback {
        /// Epoch index.
        epoch: u64,
        /// Pairs falling back.
        pairs: usize,
    },
    /// Pairs disconnected outright and dropped from the epoch.
    Unserved {
        /// Epoch index.
        epoch: u64,
        /// Pairs dropped.
        pairs: usize,
    },
    /// Rate re-optimization summary for the epoch's solve.
    Reopt {
        /// Epoch index.
        epoch: u64,
        /// Commodities solved.
        pairs: usize,
        /// Achieved max edge congestion.
        congestion: f64,
        /// LP lower bound (0 for integral solves).
        lower_bound: f64,
        /// Whether the solve was integral.
        integral: bool,
    },
    /// The k most utilized edges under the epoch's published routing.
    TopEdges {
        /// Epoch index.
        epoch: u64,
        /// Utilization-sorted (descending) edge loads.
        edges: Vec<EdgeLoad>,
    },
    /// A served pair's path set changed (or appeared) relative to the
    /// last epoch that served the pair.
    PathChurn {
        /// Epoch index.
        epoch: u64,
        /// Raw source node id.
        src: u32,
        /// Raw destination node id.
        dst: u32,
        /// `true` when the pair had never been served before.
        new_pair: bool,
    },
    /// The epoch published: the summary counters a transition analysis
    /// needs, plus the epoch wall when telemetry timing was on (0
    /// otherwise — walls never feed the deterministic path).
    EpochEnd {
        /// Epoch index.
        epoch: u64,
        /// Requests admitted.
        admitted: usize,
        /// Whether the system came from the cache.
        cache_hit: bool,
        /// Published max edge congestion.
        congestion: f64,
        /// Pairs routed via fallback.
        fallback_pairs: usize,
        /// Pairs dropped as unserved.
        unserved_pairs: usize,
        /// Edges failed while the epoch ran.
        failed_edges: usize,
        /// Wall time of the epoch in nanoseconds (0 when timing is off).
        epoch_wall_ns: u64,
    },
}

impl JournalEvent {
    /// The epoch this event is tagged with.
    pub fn epoch(&self) -> u64 {
        match *self {
            JournalEvent::EpochBegin { epoch, .. }
            | JournalEvent::Admit { epoch, .. }
            | JournalEvent::Reject { epoch, .. }
            | JournalEvent::CacheHit { epoch }
            | JournalEvent::CacheMiss { epoch }
            | JournalEvent::CacheEvict { epoch, .. }
            | JournalEvent::CacheInvalidate { epoch, .. }
            | JournalEvent::EdgeFail { epoch, .. }
            | JournalEvent::EdgeRestore { epoch, .. }
            | JournalEvent::Fallback { epoch, .. }
            | JournalEvent::Unserved { epoch, .. }
            | JournalEvent::Reopt { epoch, .. }
            | JournalEvent::TopEdges { epoch, .. }
            | JournalEvent::PathChurn { epoch, .. }
            | JournalEvent::EpochEnd { epoch, .. } => epoch,
        }
    }

    /// The stable `type` tag used in the dump format.
    pub fn type_tag(&self) -> &'static str {
        match self {
            JournalEvent::EpochBegin { .. } => "epoch_begin",
            JournalEvent::Admit { .. } => "admit",
            JournalEvent::Reject { .. } => "reject",
            JournalEvent::CacheHit { .. } => "cache_hit",
            JournalEvent::CacheMiss { .. } => "cache_miss",
            JournalEvent::CacheEvict { .. } => "cache_evict",
            JournalEvent::CacheInvalidate { .. } => "cache_invalidate",
            JournalEvent::EdgeFail { .. } => "edge_fail",
            JournalEvent::EdgeRestore { .. } => "edge_restore",
            JournalEvent::Fallback { .. } => "fallback",
            JournalEvent::Unserved { .. } => "unserved",
            JournalEvent::Reopt { .. } => "reopt",
            JournalEvent::TopEdges { .. } => "top_edges",
            JournalEvent::PathChurn { .. } => "path_churn",
            JournalEvent::EpochEnd { .. } => "epoch_end",
        }
    }
}

/// The bounded, sharded ring journal (see module docs).
pub struct Journal {
    shards: Vec<Mutex<VecDeque<(u64, JournalEvent)>>>,
    shard_cap: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    last_epoch: AtomicU64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// Journal with the default total capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Journal retaining roughly `capacity` events total across the
    /// shards (rounded up to a multiple of [`JOURNAL_SHARDS`]). Each
    /// shard's buffer is pre-sized so steady-state recording never
    /// allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let shard_cap = capacity.div_ceil(JOURNAL_SHARDS).max(1);
        Journal {
            shards: (0..JOURNAL_SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(shard_cap)))
                .collect(),
            shard_cap,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            last_epoch: AtomicU64::new(0),
        }
    }

    /// Append one event: take a global sequence number, push into the
    /// round-robin shard, drop (and count) the shard's oldest event past
    /// capacity. One relaxed fetch-add plus one short shard lock.
    pub fn record(&self, event: JournalEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.last_epoch.fetch_max(event.epoch(), Ordering::Relaxed);
        let idx = usize::try_from(seq % JOURNAL_SHARDS as u64).unwrap_or(0);
        let Some(shard) = self.shards.get(idx) else {
            return; // unreachable: idx < JOURNAL_SHARDS by construction
        };
        let evicted = {
            let mut ring = shard.lock();
            // sor-check: allow(lock-order) — VecDeque::len on the live guard, not a re-acquisition
            let full = ring.len() == self.shard_cap;
            if full {
                ring.pop_front();
            }
            ring.push_back((seq, event));
            full
        };
        if evicted {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events currently retained (across all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Highest epoch tag seen so far.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch.load(Ordering::Relaxed)
    }

    /// Merged copy of the retained `(seq, event)` pairs in sequence
    /// order. Shard locks are taken one at a time and released before
    /// the sort — nothing expensive happens under a guard.
    pub fn events(&self) -> Vec<(u64, JournalEvent)> {
        let mut all: Vec<(u64, JournalEvent)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let ring = shard.lock();
            all.extend(ring.iter().cloned());
        }
        all.sort_by_key(|&(seq, _)| seq);
        all
    }

    /// Retained events tagged with epoch `>= min_epoch`, in sequence
    /// order.
    pub fn events_since_epoch(&self, min_epoch: u64) -> Vec<(u64, JournalEvent)> {
        let mut all = self.events();
        all.retain(|(_, e)| e.epoch() >= min_epoch);
        all
    }

    /// Serialize the whole retained ring as a `sor-journal/1` document
    /// with extra top-level string fields (`meta`).
    pub fn dump_json(&self, meta: &[(&str, &str)]) -> String {
        events_to_json(&self.events(), self.recorded(), self.dropped(), meta)
    }

    /// Serialize only the last `epochs` epochs of context (relative to
    /// the highest epoch seen) — the breach-dump shape.
    pub fn dump_json_last(&self, epochs: u64, meta: &[(&str, &str)]) -> String {
        let min_epoch = self.last_epoch().saturating_sub(epochs.saturating_sub(1));
        let events = if epochs == 0 {
            self.events()
        } else {
            self.events_since_epoch(min_epoch)
        };
        events_to_json(&events, self.recorded(), self.dropped(), meta)
    }
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn push_event_json(out: &mut String, seq: u64, e: &JournalEvent) {
    out.push_str(&format!(
        "{{\"seq\":{seq},\"type\":\"{}\",\"epoch\":{}",
        e.type_tag(),
        e.epoch()
    ));
    match e {
        JournalEvent::EpochBegin { queue_depth, .. } => {
            out.push_str(&format!(",\"queue_depth\":{queue_depth}"));
        }
        JournalEvent::Admit {
            count, demand_fp, ..
        } => {
            out.push_str(&format!(",\"count\":{count},\"demand_fp\":{demand_fp}"));
        }
        JournalEvent::Reject { count, .. }
        | JournalEvent::CacheEvict { count, .. }
        | JournalEvent::CacheInvalidate { count, .. } => {
            out.push_str(&format!(",\"count\":{count}"));
        }
        JournalEvent::CacheHit { .. } | JournalEvent::CacheMiss { .. } => {}
        JournalEvent::EdgeFail { edges, .. } => {
            out.push_str(",\"edges\":[");
            for (i, id) in edges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{id}"));
            }
            out.push(']');
        }
        JournalEvent::EdgeRestore { restored, .. } => {
            out.push_str(&format!(",\"restored\":{restored}"));
        }
        JournalEvent::Fallback { pairs, .. } | JournalEvent::Unserved { pairs, .. } => {
            out.push_str(&format!(",\"pairs\":{pairs}"));
        }
        JournalEvent::Reopt {
            pairs,
            congestion,
            lower_bound,
            integral,
            ..
        } => {
            out.push_str(&format!(",\"pairs\":{pairs},\"congestion\":"));
            push_json_f64(out, *congestion);
            out.push_str(",\"lower_bound\":");
            push_json_f64(out, *lower_bound);
            out.push_str(&format!(",\"integral\":{integral}"));
        }
        JournalEvent::TopEdges { edges, .. } => {
            out.push_str(",\"edges\":[");
            for (i, el) in edges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"edge\":{},\"load\":", el.edge));
                push_json_f64(out, el.load);
                out.push_str(",\"utilization\":");
                push_json_f64(out, el.utilization);
                out.push('}');
            }
            out.push(']');
        }
        JournalEvent::PathChurn {
            src, dst, new_pair, ..
        } => {
            out.push_str(&format!(
                ",\"src\":{src},\"dst\":{dst},\"new_pair\":{new_pair}"
            ));
        }
        JournalEvent::EpochEnd {
            admitted,
            cache_hit,
            congestion,
            fallback_pairs,
            unserved_pairs,
            failed_edges,
            epoch_wall_ns,
            ..
        } => {
            out.push_str(&format!(
                ",\"admitted\":{admitted},\"cache_hit\":{cache_hit},\"congestion\":"
            ));
            push_json_f64(out, *congestion);
            out.push_str(&format!(
                ",\"fallback_pairs\":{fallback_pairs},\"unserved_pairs\":{unserved_pairs},\
                 \"failed_edges\":{failed_edges},\"epoch_wall_ns\":{epoch_wall_ns}"
            ));
        }
    }
    out.push('}');
}

fn events_to_json(
    events: &[(u64, JournalEvent)],
    recorded: u64,
    dropped: u64,
    meta: &[(&str, &str)],
) -> String {
    let mut out = String::with_capacity(256 + events.len() * 128);
    out.push_str("{\"format\":\"sor-journal/1\"");
    for (k, v) in meta {
        // meta keys/values are caller-controlled identifiers and specs;
        // escape the two characters that could break the document
        let vq = v.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(",\"{k}\":\"{vq}\""));
    }
    out.push_str(&format!(",\"recorded\":{recorded},\"dropped\":{dropped}"));
    out.push_str(",\"events\":[");
    for (i, (seq, e)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        push_event_json(&mut out, *seq, e);
    }
    if !events.is_empty() {
        out.push_str("\n ");
    }
    out.push_str("]}\n");
    out
}

/// A parsed `sor-journal/1` document.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalDump {
    /// Top-level string metadata fields, in document order.
    pub meta: Vec<(String, String)>,
    /// Total events the recording journal ever saw.
    pub recorded: u64,
    /// Events the ring evicted before the dump.
    pub dropped: u64,
    /// The dumped `(seq, event)` pairs, in sequence order.
    pub events: Vec<(u64, JournalEvent)>,
}

fn field_u64(v: &crate::JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(crate::JsonValue::as_u64)
        .ok_or_else(|| format!("event missing numeric field '{key}'"))
}

fn field_usize(v: &crate::JsonValue, key: &str) -> Result<usize, String> {
    usize::try_from(field_u64(v, key)?).map_err(|_| format!("field '{key}' out of range"))
}

fn field_u32(v: &crate::JsonValue, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(v, key)?).map_err(|_| format!("field '{key}' out of range"))
}

fn field_f64(v: &crate::JsonValue, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(crate::JsonValue::Num(x)) => Ok(*x),
        Some(crate::JsonValue::Null) => Ok(f64::NAN),
        _ => Err(format!("event missing numeric field '{key}'")),
    }
}

fn field_bool(v: &crate::JsonValue, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(crate::JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("event missing bool field '{key}'")),
    }
}

fn parse_event(v: &crate::JsonValue) -> Result<(u64, JournalEvent), String> {
    let seq = field_u64(v, "seq")?;
    let epoch = field_u64(v, "epoch")?;
    let tag = v
        .get("type")
        .and_then(crate::JsonValue::as_str)
        .ok_or_else(|| "event missing 'type'".to_string())?;
    let event = match tag {
        "epoch_begin" => JournalEvent::EpochBegin {
            epoch,
            queue_depth: field_usize(v, "queue_depth")?,
        },
        "admit" => JournalEvent::Admit {
            epoch,
            count: field_usize(v, "count")?,
            demand_fp: field_u64(v, "demand_fp")?,
        },
        "reject" => JournalEvent::Reject {
            epoch,
            count: field_u64(v, "count")?,
        },
        "cache_hit" => JournalEvent::CacheHit { epoch },
        "cache_miss" => JournalEvent::CacheMiss { epoch },
        "cache_evict" => JournalEvent::CacheEvict {
            epoch,
            count: field_u64(v, "count")?,
        },
        "cache_invalidate" => JournalEvent::CacheInvalidate {
            epoch,
            count: field_u64(v, "count")?,
        },
        "edge_fail" => {
            let arr = v
                .get("edges")
                .and_then(crate::JsonValue::as_arr)
                .ok_or_else(|| "edge_fail missing 'edges'".to_string())?;
            let mut edges = Vec::with_capacity(arr.len());
            for item in arr {
                let id = item
                    .as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| "bad edge id in edge_fail".to_string())?;
                edges.push(id);
            }
            JournalEvent::EdgeFail { epoch, edges }
        }
        "edge_restore" => JournalEvent::EdgeRestore {
            epoch,
            restored: field_usize(v, "restored")?,
        },
        "fallback" => JournalEvent::Fallback {
            epoch,
            pairs: field_usize(v, "pairs")?,
        },
        "unserved" => JournalEvent::Unserved {
            epoch,
            pairs: field_usize(v, "pairs")?,
        },
        "reopt" => JournalEvent::Reopt {
            epoch,
            pairs: field_usize(v, "pairs")?,
            congestion: field_f64(v, "congestion")?,
            lower_bound: field_f64(v, "lower_bound")?,
            integral: field_bool(v, "integral")?,
        },
        "top_edges" => {
            let arr = v
                .get("edges")
                .and_then(crate::JsonValue::as_arr)
                .ok_or_else(|| "top_edges missing 'edges'".to_string())?;
            let mut edges = Vec::with_capacity(arr.len());
            for item in arr {
                edges.push(EdgeLoad {
                    edge: field_u32(item, "edge")?,
                    load: field_f64(item, "load")?,
                    utilization: field_f64(item, "utilization")?,
                });
            }
            JournalEvent::TopEdges { epoch, edges }
        }
        "path_churn" => JournalEvent::PathChurn {
            epoch,
            src: field_u32(v, "src")?,
            dst: field_u32(v, "dst")?,
            new_pair: field_bool(v, "new_pair")?,
        },
        "epoch_end" => JournalEvent::EpochEnd {
            epoch,
            admitted: field_usize(v, "admitted")?,
            cache_hit: field_bool(v, "cache_hit")?,
            congestion: field_f64(v, "congestion")?,
            fallback_pairs: field_usize(v, "fallback_pairs")?,
            unserved_pairs: field_usize(v, "unserved_pairs")?,
            failed_edges: field_usize(v, "failed_edges")?,
            epoch_wall_ns: field_u64(v, "epoch_wall_ns")?,
        },
        other => return Err(format!("unknown journal event type '{other}'")),
    };
    Ok((seq, event))
}

/// Parse a `sor-journal/1` document produced by [`Journal::dump_json`]
/// (or a breach dump). Unknown top-level fields are ignored; unknown
/// event types are an error (the format is versioned for exactly this).
pub fn parse_journal(text: &str) -> Result<JournalDump, String> {
    let doc = crate::parse_json(text).map_err(|e| format!("journal parse: {e}"))?;
    match doc.get("format").and_then(crate::JsonValue::as_str) {
        Some("sor-journal/1") => {}
        Some(other) => return Err(format!("unsupported journal format '{other}'")),
        None => return Err("not a sor-journal document (no 'format')".to_string()),
    }
    let mut meta = Vec::new();
    if let Some(members) = doc.as_obj() {
        for (k, v) in members {
            if k == "format" {
                continue;
            }
            if let Some(s) = v.as_str() {
                meta.push((k.clone(), s.to_string()));
            }
        }
    }
    let recorded = doc
        .get("recorded")
        .and_then(crate::JsonValue::as_u64)
        .unwrap_or(0);
    let dropped = doc
        .get("dropped")
        .and_then(crate::JsonValue::as_u64)
        .unwrap_or(0);
    let arr = doc
        .get("events")
        .and_then(crate::JsonValue::as_arr)
        .ok_or_else(|| "journal document has no 'events' array".to_string())?;
    let mut events = Vec::with_capacity(arr.len());
    for item in arr {
        events.push(parse_event(item)?);
    }
    Ok(JournalDump {
        meta,
        recorded,
        dropped,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::EpochBegin {
                epoch: 0,
                queue_depth: 8,
            },
            JournalEvent::Admit {
                epoch: 0,
                count: 8,
                demand_fp: 0xdead_beef,
            },
            JournalEvent::Reject { epoch: 0, count: 2 },
            JournalEvent::CacheMiss { epoch: 0 },
            JournalEvent::Reopt {
                epoch: 0,
                pairs: 4,
                congestion: 1.5,
                lower_bound: 1.25,
                integral: false,
            },
            JournalEvent::TopEdges {
                epoch: 0,
                edges: vec![
                    EdgeLoad {
                        edge: 3,
                        load: 2.0,
                        utilization: 1.5,
                    },
                    EdgeLoad {
                        edge: 7,
                        load: 1.0,
                        utilization: 0.5,
                    },
                ],
            },
            JournalEvent::PathChurn {
                epoch: 0,
                src: 1,
                dst: 6,
                new_pair: true,
            },
            JournalEvent::EpochEnd {
                epoch: 0,
                admitted: 8,
                cache_hit: false,
                congestion: 1.5,
                fallback_pairs: 0,
                unserved_pairs: 0,
                failed_edges: 0,
                epoch_wall_ns: 0,
            },
            JournalEvent::EdgeFail {
                epoch: 1,
                edges: vec![4, 9],
            },
            JournalEvent::CacheInvalidate { epoch: 1, count: 1 },
            JournalEvent::CacheHit { epoch: 1 },
            JournalEvent::CacheEvict { epoch: 1, count: 1 },
            JournalEvent::Fallback { epoch: 1, pairs: 2 },
            JournalEvent::Unserved { epoch: 1, pairs: 1 },
            JournalEvent::EdgeRestore {
                epoch: 2,
                restored: 2,
            },
        ]
    }

    #[test]
    fn record_orders_by_sequence_across_shards() {
        let j = Journal::new();
        for e in sample_events() {
            j.record(e);
        }
        let events = j.events();
        assert_eq!(events.len(), 15);
        assert_eq!(j.recorded(), 15);
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.last_epoch(), 2);
        let seqs: Vec<u64> = events.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, (0..15).collect::<Vec<_>>());
        assert_eq!(
            events.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>(),
            sample_events()
        );
    }

    #[test]
    fn ring_bounds_capacity_and_counts_drops() {
        let j = Journal::with_capacity(JOURNAL_SHARDS * 2); // 2 per shard
        for i in 0..40u64 {
            j.record(JournalEvent::CacheHit { epoch: i });
        }
        assert_eq!(j.len(), JOURNAL_SHARDS * 2);
        assert_eq!(j.recorded(), 40);
        assert_eq!(j.dropped(), 40 - (JOURNAL_SHARDS as u64) * 2);
        // survivors are the most recent events
        let events = j.events();
        let min_seq = events.iter().map(|&(s, _)| s).min().unwrap_or(0);
        assert!(min_seq >= 40 - (JOURNAL_SHARDS as u64) * 2);
    }

    #[test]
    fn events_since_epoch_filters_context() {
        let j = Journal::new();
        for e in sample_events() {
            j.record(e);
        }
        let tail = j.events_since_epoch(1);
        assert_eq!(tail.len(), 7);
        assert!(tail.iter().all(|(_, e)| e.epoch() >= 1));
    }

    #[test]
    fn dump_round_trips_through_parser() {
        let j = Journal::new();
        for e in sample_events() {
            j.record(e);
        }
        let json = j.dump_json(&[("reason", "test"), ("graph", "cycle:8")]);
        let dump = parse_journal(&json).expect("round-trip parse");
        assert_eq!(dump.recorded, 15);
        assert_eq!(dump.dropped, 0);
        assert!(dump.meta.iter().any(|(k, v)| k == "reason" && v == "test"));
        assert!(dump
            .meta
            .iter()
            .any(|(k, v)| k == "graph" && v == "cycle:8"));
        assert_eq!(
            dump.events
                .iter()
                .map(|(_, e)| e.clone())
                .collect::<Vec<_>>(),
            sample_events()
        );
    }

    #[test]
    fn dump_last_epochs_limits_context() {
        let j = Journal::new();
        for e in sample_events() {
            j.record(e);
        }
        let json = j.dump_json_last(2, &[]);
        let dump = parse_journal(&json).expect("parse tail dump");
        // last 2 epochs relative to epoch 2 → epochs 1 and 2 only
        assert!(dump.events.iter().all(|(_, e)| e.epoch() >= 1));
        assert!(dump.events.iter().any(|(_, e)| e.epoch() == 2));
        // 0 means "everything"
        let full = parse_journal(&j.dump_json_last(0, &[])).expect("parse full dump");
        assert_eq!(full.events.len(), 15);
    }

    #[test]
    fn parser_rejects_foreign_documents() {
        assert!(parse_journal("{\"format\":\"sor-timeline/1\",\"events\":[]}").is_err());
        assert!(parse_journal("{\"events\":[]}").is_err());
        assert!(parse_journal("[1,2,3]").is_err());
        let bad_event =
            "{\"format\":\"sor-journal/1\",\"events\":[{\"seq\":0,\"type\":\"warp\",\"epoch\":0}]}";
        assert!(parse_journal(bad_event).is_err());
    }

    #[test]
    fn meta_values_are_escaped() {
        let j = Journal::new();
        j.record(JournalEvent::CacheHit { epoch: 0 });
        let json = j.dump_json(&[("note", "say \"hi\" \\ bye")]);
        let dump = parse_journal(&json).expect("escaped meta parses");
        assert!(dump
            .meta
            .iter()
            .any(|(k, v)| k == "note" && v == "say \"hi\" \\ bye"));
    }
}
