//! Prometheus-style text exposition and the scrape endpoint.
//!
//! [`render_prometheus`] turns a [`Snapshot`] into the text exposition
//! format: counters as `# TYPE ... counter`, histograms as *cumulative*
//! `_bucket{le="..."}` series ending in the mandatory `le="+Inf"` bucket
//! (the PR-3 snapshot's `le: None` overflow bucket — rendering it as
//! `+Inf` rather than dropping or NaN-ing it is the whole point), plus
//! `_sum`/`_count`. Callers can append gauges (window rates, streaming
//! percentiles, SLO breach counts) through [`PromGauges`].
//!
//! [`TelemetryServer`] serves the exposition over a plain
//! `std::net::TcpListener` accept thread — no HTTP framework, HTTP/1.0
//! responses, one request per connection, exactly what a Prometheus
//! scraper or `curl` needs. Routing: `/metrics` (text exposition),
//! `/timeline` (epoch timeline JSON), `/health` (SLO summary), anything
//! else 404. The handler trait decouples the server from the serve
//! crate; all rendering happens before any socket write and outside any
//! registry lock.

use crate::Snapshot;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Sanitize a registry metric name into a Prometheus metric name:
/// `serve/cache_hits` → `sor_serve_cache_hits`. Every non-alphanumeric
/// byte becomes `_`, and everything gets the `sor_` namespace prefix.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("sor_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_prom_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else if v.is_nan() {
        out.push_str("NaN");
    } else if v > 0.0 {
        out.push_str("+Inf");
    } else {
        out.push_str("-Inf");
    }
}

/// Extra gauge samples appended to the exposition (window rates,
/// percentiles, health counts — anything not in the registry proper).
#[derive(Clone, Debug, Default)]
pub struct PromGauges {
    samples: Vec<(String, f64)>,
}

impl PromGauges {
    /// An empty gauge set.
    pub fn new() -> Self {
        PromGauges::default()
    }

    /// Append one gauge; `name` is a registry-style name (it goes
    /// through [`prom_name`]), `labels` is a pre-rendered label body
    /// such as `window="10"` (empty for none).
    pub fn push(&mut self, name: &str, labels: &str, value: f64) {
        let rendered = if labels.is_empty() {
            prom_name(name)
        } else {
            format!("{}{{{labels}}}", prom_name(name))
        };
        self.samples.push((rendered, value));
    }

    /// Number of gauges queued.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no gauge has been queued.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Render a [`Snapshot`] (plus optional extra gauges) as Prometheus text
/// exposition format, deterministically (name-sorted input, stable
/// bucket order).
pub fn render_prometheus(snap: &Snapshot, gauges: &PromGauges) -> String {
    let mut out = String::with_capacity(1024 + snap.num_metrics() * 128);
    for c in &snap.counters {
        let name = prom_name(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name} {}\n", c.value));
    }
    for h in &snap.histograms {
        if h.count == 0 {
            // a registered-but-never-observed histogram has nothing to
            // say; an all-zero bucket series only confuses scrapers
            continue;
        }
        let name = prom_name(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        // Prometheus buckets are cumulative and must end at le="+Inf";
        // the snapshot's per-bucket counts (overflow bucket `le: None`
        // last) accumulate into exactly that.
        let mut cum = 0u64;
        for b in &h.buckets {
            cum += b.count;
            out.push_str(&format!("{name}_bucket{{le=\""));
            match b.le {
                Some(edge) => push_prom_f64(&mut out, edge),
                None => out.push_str("+Inf"),
            }
            out.push_str(&format!("\"}} {cum}\n"));
        }
        if !h.buckets.iter().any(|b| b.le.is_none()) {
            // a histogram without an explicit overflow bucket still
            // needs the mandatory +Inf series
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        }
        out.push_str(&format!("{name}_sum "));
        push_prom_f64(&mut out, h.sum);
        out.push('\n');
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    let mut seen_type: Vec<&str> = Vec::new();
    for (rendered, value) in &gauges.samples {
        let base = rendered.split('{').next().unwrap_or(rendered);
        if !seen_type.contains(&base) {
            out.push_str(&format!("# TYPE {base} gauge\n"));
            seen_type.push(base);
        }
        out.push_str(rendered);
        out.push(' ');
        push_prom_f64(&mut out, *value);
        out.push('\n');
    }
    out
}

/// What the scrape endpoint serves; implemented by the serve crate's
/// telemetry plane. Implementations must render entirely before
/// returning (no locks escaping, no sockets touched).
pub trait TelemetryHandler: Send + Sync {
    /// Body for `GET /metrics` (Prometheus text exposition).
    fn metrics(&self) -> String;
    /// Body for `GET /timeline` (epoch timeline JSON).
    fn timeline_json(&self) -> String;
    /// Body for `GET /timeline?last=N` — the same document truncated to
    /// the most recent `last` epochs. The default ignores the truncation
    /// and serves the full timeline.
    fn timeline_json_last(&self, last: usize) -> String {
        let _ = last;
        self.timeline_json()
    }
    /// Body for `GET /health` (SLO health summary, JSON — served with
    /// `Content-Type: application/json`; see
    /// [`crate::slo::HealthSummary::render_json`] for the canonical
    /// `sor-health/1` shape).
    fn health(&self) -> String;
}

/// A minimal scrape server: one accept thread on a
/// `std::net::TcpListener`, HTTP/1.0, one request per connection.
/// Shuts down on drop (a self-connection wakes the accept loop).
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// start the accept thread.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        handler: Arc<dyn TelemetryHandler>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("sor-telemetry".to_string())
            .spawn(move || accept_loop(&listener, &stop_flag, handler.as_ref()))?;
        Ok(TelemetryServer {
            addr: bound,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept thread and join it. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        // Relaxed: the flag carries no data — the wake-up connection and
        // the join below provide all the synchronization shutdown needs.
        self.stop.store(true, Ordering::Relaxed);
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, handler: &dyn TelemetryHandler) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Relaxed: flag-only check, no ordering needed (see
                // `shutdown`)
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        serve_one(stream, handler);
    }
}

/// Read one request head (bounded, with a timeout) and answer it.
fn serve_one(mut stream: TcpStream, handler: &dyn TelemetryHandler) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let path = request_line
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, Some(q)),
        None => (path, None),
    };
    let bad_request = || {
        (
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "bad query string\n".to_string(),
        )
    };
    let (status, content_type, body) = match route {
        // only /timeline takes a query; a query anywhere else (or one
        // that is not exactly `last=N`) is a 400, not a silent ignore
        "/metrics" | "/" if query.is_none() => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            handler.metrics(),
        ),
        "/timeline" => match query {
            None => ("200 OK", "application/json", handler.timeline_json()),
            Some(q) => match parse_timeline_query(q) {
                Some(last) => (
                    "200 OK",
                    "application/json",
                    handler.timeline_json_last(last),
                ),
                None => bad_request(),
            },
        },
        "/health" if query.is_none() => ("200 OK", "application/json", handler.health()),
        "/metrics" | "/" | "/health" => bad_request(),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Parse a `/timeline` query string: exactly one `last=N` parameter with
/// a non-negative integer `N`. Anything else is malformed (`None`).
fn parse_timeline_query(query: &str) -> Option<usize> {
    let value = query.strip_prefix("last=")?;
    if value.is_empty() || value.contains('=') || value.contains('&') {
        return None;
    }
    value.parse::<usize>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BucketCount, CounterSnapshot, HistogramSnapshot};

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "serve/cache_hits".to_string(),
                value: 42,
            }],
            histograms: vec![HistogramSnapshot {
                name: "serve/epoch_wall_ms".to_string(),
                buckets: vec![
                    BucketCount {
                        le: Some(1.0),
                        count: 2,
                    },
                    BucketCount {
                        le: Some(8.0),
                        count: 3,
                    },
                    BucketCount { le: None, count: 1 },
                ],
                count: 6,
                sum: 19.5,
            }],
            spans: Vec::new(),
        }
    }

    #[test]
    fn names_are_sanitized_and_namespaced() {
        assert_eq!(prom_name("serve/cache_hits"), "sor_serve_cache_hits");
        assert_eq!(prom_name("slo/breaches"), "sor_slo_breaches");
        assert_eq!(prom_name("a-b.c"), "sor_a_b_c");
    }

    #[test]
    fn exposition_is_cumulative_with_inf_overflow() {
        let text = render_prometheus(&sample_snapshot(), &PromGauges::new());
        assert!(text.contains("# TYPE sor_serve_cache_hits counter\n"));
        assert!(text.contains("sor_serve_cache_hits 42\n"));
        assert!(text.contains("# TYPE sor_serve_epoch_wall_ms histogram\n"));
        // cumulative: 2, then 2+3, then all 6 in the overflow bucket
        assert!(text.contains("sor_serve_epoch_wall_ms_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("sor_serve_epoch_wall_ms_bucket{le=\"8\"} 5\n"));
        assert!(
            text.contains("sor_serve_epoch_wall_ms_bucket{le=\"+Inf\"} 6\n"),
            "le:null must render as +Inf, got:\n{text}"
        );
        assert!(!text.contains("NaN"), "no NaN leaks from the overflow edge");
        assert!(text.contains("sor_serve_epoch_wall_ms_sum 19.5\n"));
        assert!(text.contains("sor_serve_epoch_wall_ms_count 6\n"));
    }

    #[test]
    fn gauges_append_with_labels() {
        let mut g = PromGauges::new();
        assert!(g.is_empty());
        g.push("serve/cache_hit_rate", "window=\"10\"", 0.875);
        g.push("serve/epoch_wall_p99_ms", "", 12.0);
        assert_eq!(g.len(), 2);
        let text = render_prometheus(
            &Snapshot {
                counters: Vec::new(),
                histograms: Vec::new(),
                spans: Vec::new(),
            },
            &g,
        );
        assert!(text.contains("# TYPE sor_serve_cache_hit_rate gauge\n"));
        assert!(text.contains("sor_serve_cache_hit_rate{window=\"10\"} 0.875\n"));
        assert!(text.contains("sor_serve_epoch_wall_p99_ms 12\n"));
    }

    #[test]
    fn empty_histograms_are_skipped_in_exposition() {
        let mut snap = sample_snapshot();
        snap.histograms.push(HistogramSnapshot {
            name: "serve/never_observed".to_string(),
            buckets: vec![
                BucketCount {
                    le: Some(1.0),
                    count: 0,
                },
                BucketCount { le: None, count: 0 },
            ],
            count: 0,
            sum: 0.0,
        });
        let text = render_prometheus(&snap, &PromGauges::new());
        assert!(
            !text.contains("sor_serve_never_observed"),
            "empty histogram must not render:\n{text}"
        );
        // the non-empty sibling still renders in full
        assert!(text.contains("sor_serve_epoch_wall_ms_count 6\n"));
    }

    #[test]
    fn timeline_query_parses_strictly() {
        assert_eq!(parse_timeline_query("last=3"), Some(3));
        assert_eq!(parse_timeline_query("last=0"), Some(0));
        assert_eq!(parse_timeline_query(""), None);
        assert_eq!(parse_timeline_query("last="), None);
        assert_eq!(parse_timeline_query("last=abc"), None);
        assert_eq!(parse_timeline_query("last=1&x=2"), None);
        assert_eq!(parse_timeline_query("first=1"), None);
        assert_eq!(parse_timeline_query("last=1=2"), None);
    }

    struct FixedHandler;
    impl TelemetryHandler for FixedHandler {
        fn metrics(&self) -> String {
            "sor_test_metric 1\n".to_string()
        }
        fn timeline_json(&self) -> String {
            "{\"format\":\"sor-timeline/1\",\"epochs\":[]}".to_string()
        }
        fn timeline_json_last(&self, last: usize) -> String {
            format!("{{\"format\":\"sor-timeline/1\",\"last\":{last},\"epochs\":[]}}")
        }
        fn health(&self) -> String {
            crate::slo::HealthSummary::default().render_json()
        }
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn server_routes_and_shuts_down() {
        let mut server =
            TelemetryServer::start("127.0.0.1:0", Arc::new(FixedHandler)).expect("bind");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port resolved");
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(metrics.contains("Content-Length:"));
        assert!(metrics.ends_with("sor_test_metric 1\n"));
        let timeline = get(addr, "/timeline");
        assert!(timeline.contains("Content-Type: application/json\r\n"));
        assert!(timeline.contains("sor-timeline/1"));
        let health = get(addr, "/health");
        assert!(health.contains("health: ok"));
        assert!(
            health.contains("Content-Type: application/json\r\n"),
            "/health must declare a JSON content type: {health}"
        );
        assert!(health.contains("\"sor-health/1\""));
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        // query handling: /timeline?last=N truncates, malformed is 400
        let truncated = get(addr, "/timeline?last=2");
        assert!(truncated.starts_with("HTTP/1.0 200"), "{truncated}");
        assert!(truncated.contains("\"last\":2"), "{truncated}");
        for bad in [
            "/timeline?",
            "/timeline?last=",
            "/timeline?last=x",
            "/metrics?x=1",
        ] {
            let resp = get(addr, bad);
            assert!(
                resp.starts_with("HTTP/1.0 400"),
                "{bad} must 400, got: {resp}"
            );
        }
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
