//! Congestion forensics: epoch-delta attribution over a journal dump.
//!
//! The journal ([`crate::journal`]) records *what happened*; this module
//! answers *what moved the needle*. [`analyze`] folds a dump's event
//! stream into per-epoch statistics, classifies every epoch-over-epoch
//! transition into a causal bucket, and charges each transition's
//! congestion and wall deltas to its bucket:
//!
//! * **failure** — an edge failed or was restored, failures were active,
//!   the cache was invalidated, or pairs fell back / went unserved. The
//!   paper's robustness story (few random paths + re-optimization absorb
//!   failures) makes this the bucket worth isolating.
//! * **eviction** — a cache miss on a demand fingerprint the dump has
//!   seen before, absent failures: the only way a previously-cached
//!   pattern misses is that capacity evicted it.
//! * **cold_sample** — a miss on a first-seen fingerprint: the pattern
//!   was genuinely new and paid the sampling phase.
//! * **demand_churn** — a cache hit but the admitted pair set changed:
//!   congestion moved because the demand moved, not the path system.
//! * **steady** — none of the above (residual solver/noise movement;
//!   zero for seeded deterministic workloads).
//!
//! Precedence is top-down: a failed epoch that also churned demand is a
//! failure epoch — the analyzer attributes to the *dominant* cause, and
//! [`ForensicsReport::causes`] ranks buckets by total absolute
//! congestion delta. A per-edge load-shift table (from the journal's
//! `top_edges` records) names the edges whose load moved most between
//! consecutive epochs. Reports render as text and as a versioned
//! `sor-forensics/1` JSON document.

use crate::journal::{EdgeLoad, JournalEvent};

/// Causal buckets, in attribution precedence order (first match wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cause {
    /// Failure lifecycle: fail/restore/fallback/unserved/invalidation.
    Failure,
    /// Re-sample forced by a capacity eviction.
    Eviction,
    /// First-ever sample of a new demand pattern.
    ColdSample,
    /// The admitted pair set changed (but hit the cache).
    DemandChurn,
    /// No identified cause.
    Steady,
}

/// All causes, in precedence (and tie-break) order.
pub const CAUSES: [Cause; 5] = [
    Cause::Failure,
    Cause::Eviction,
    Cause::ColdSample,
    Cause::DemandChurn,
    Cause::Steady,
];

impl Cause {
    /// Stable identifier used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Cause::Failure => "failure",
            Cause::Eviction => "eviction",
            Cause::ColdSample => "cold_sample",
            Cause::DemandChurn => "demand_churn",
            Cause::Steady => "steady",
        }
    }
}

/// Per-epoch statistics folded out of the event stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: u64,
    /// Requests admitted.
    pub admitted: usize,
    /// Whether the epoch hit the path-system cache.
    pub cache_hit: bool,
    /// Whether the epoch missed (sampled fresh).
    pub cache_miss: bool,
    /// Published max edge congestion.
    pub congestion: f64,
    /// Epoch wall in nanoseconds (0 when timing was off).
    pub epoch_wall_ns: u64,
    /// Pairs routed via emergency fallback.
    pub fallback_pairs: usize,
    /// Pairs dropped as unserved.
    pub unserved_pairs: usize,
    /// Edges failed while the epoch ran.
    pub failed_edges: usize,
    /// Capacity evictions charged to the epoch.
    pub evictions: u64,
    /// Failure-driven invalidations charged to the epoch.
    pub invalidations: u64,
    /// An `edge_fail` event is tagged with this epoch.
    pub edge_failed: bool,
    /// An `edge_restore` event is tagged with this epoch.
    pub edge_restored: bool,
    /// Fingerprint of the admitted pair set, when an `admit` event was
    /// in the dump.
    pub demand_fp: Option<u64>,
    /// Pairs whose path set changed vs. their last service.
    pub churned_pairs: usize,
    /// Pairs served for the first time.
    pub new_pairs: usize,
    /// Top-k utilized edges under the epoch's routing.
    pub top_edges: Vec<EdgeLoad>,
}

/// One epoch-over-epoch transition with its attributed cause.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochTransition {
    /// Earlier epoch.
    pub from: u64,
    /// Later epoch.
    pub to: u64,
    /// `congestion(to) - congestion(from)`.
    pub congestion_delta: f64,
    /// `wall(to) - wall(from)` in nanoseconds (may be negative).
    pub wall_delta_ns: f64,
    /// Attributed dominant cause.
    pub cause: Cause,
}

/// Aggregate attribution for one cause bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct CauseAttribution {
    /// The bucket.
    pub cause: Cause,
    /// Transitions attributed to it.
    pub transitions: usize,
    /// Sum of absolute congestion deltas.
    pub abs_congestion_delta: f64,
    /// Sum of absolute wall deltas, nanoseconds.
    pub abs_wall_delta_ns: f64,
    /// `abs_congestion_delta / total` over all buckets (0 when the run
    /// never moved).
    pub share: f64,
}

/// One edge's largest load movement between consecutive epochs.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeShift {
    /// Raw edge id.
    pub edge: u32,
    /// `load(to) - load(from)` at the edge's biggest move.
    pub delta: f64,
    /// Load before the move.
    pub before: f64,
    /// Load after the move.
    pub after: f64,
    /// The epoch the move landed on.
    pub epoch: u64,
    /// The cause attributed to that transition.
    pub cause: Cause,
}

/// The full analysis: per-epoch stats, per-transition attribution,
/// ranked cause totals, and the per-edge load-shift table.
#[derive(Clone, Debug, PartialEq)]
pub struct ForensicsReport {
    /// Per-epoch statistics, epoch order.
    pub epochs: Vec<EpochStats>,
    /// Attributed transitions, epoch order.
    pub transitions: Vec<EpochTransition>,
    /// Cause totals ranked by absolute congestion delta (descending;
    /// ties break in [`CAUSES`] precedence order).
    pub causes: Vec<CauseAttribution>,
    /// Largest per-edge load movements, magnitude-descending.
    pub edge_shifts: Vec<EdgeShift>,
}

impl ForensicsReport {
    /// The top-ranked cause, if any transition was analyzed.
    pub fn top_cause(&self) -> Option<Cause> {
        self.causes
            .iter()
            .find(|c| c.transitions > 0)
            .map(|c| c.cause)
    }

    /// Human-readable attribution report.
    pub fn render_text(&self) -> String {
        let total_cong: f64 = self.causes.iter().map(|c| c.abs_congestion_delta).sum();
        let mut out = format!(
            "forensics: {} epochs, {} transitions, total |dcong| = {:.4}\n",
            self.epochs.len(),
            self.transitions.len(),
            total_cong
        );
        out.push_str("cause attribution (ranked by |dcong|):\n");
        out.push_str("  cause          trans   |dcong|   share   |dwall_ms|\n");
        for c in &self.causes {
            out.push_str(&format!(
                "  {:<12} {:>7} {:>9.4} {:>6.1}% {:>11.3}\n",
                c.cause.label(),
                c.transitions,
                c.abs_congestion_delta,
                c.share * 100.0,
                c.abs_wall_delta_ns / 1e6
            ));
        }
        if !self.edge_shifts.is_empty() {
            out.push_str(&format!(
                "per-edge load shifts (top {}):\n",
                self.edge_shifts.len()
            ));
            out.push_str("  edge     dload     before ->  after   epoch  cause\n");
            for s in &self.edge_shifts {
                out.push_str(&format!(
                    "  {:>4} {:>9.4} {:>10.4} -> {:>6.4} {:>7}  {}\n",
                    s.edge,
                    s.delta,
                    s.before,
                    s.after,
                    s.epoch,
                    s.cause.label()
                ));
            }
        }
        if let Some(top) = self.top_cause() {
            out.push_str(&format!("top cause: {}\n", top.label()));
        } else {
            out.push_str("top cause: none (not enough epochs)\n");
        }
        out
    }

    /// Versioned JSON rendering (`sor-forensics/1`), hand-rolled like
    /// every writer in the tree.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.transitions.len() * 96);
        out.push_str("{\"format\":\"sor-forensics/1\"");
        out.push_str(&format!(
            ",\"epochs\":{},\"transitions\":{}",
            self.epochs.len(),
            self.transitions.len()
        ));
        out.push_str(",\"top_cause\":");
        match self.top_cause() {
            Some(c) => out.push_str(&format!("\"{}\"", c.label())),
            None => out.push_str("null"),
        }
        out.push_str(",\"causes\":[");
        for (i, c) in self.causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"cause\":\"{}\",\"transitions\":{},\"abs_congestion_delta\":",
                c.cause.label(),
                c.transitions
            ));
            push_f64(&mut out, c.abs_congestion_delta);
            out.push_str(",\"abs_wall_delta_ns\":");
            push_f64(&mut out, c.abs_wall_delta_ns);
            out.push_str(",\"share\":");
            push_f64(&mut out, c.share);
            out.push('}');
        }
        out.push_str("],\"transitions_detail\":[");
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"from\":{},\"to\":{},\"cause\":\"{}\",\"congestion_delta\":",
                t.from,
                t.to,
                t.cause.label()
            ));
            push_f64(&mut out, t.congestion_delta);
            out.push_str(",\"wall_delta_ns\":");
            push_f64(&mut out, t.wall_delta_ns);
            out.push('}');
        }
        out.push_str("],\"edge_shifts\":[");
        for (i, s) in self.edge_shifts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"edge\":{},\"epoch\":{},\"cause\":\"{}\",\"delta\":",
                s.edge,
                s.epoch,
                s.cause.label()
            ));
            push_f64(&mut out, s.delta);
            out.push_str(",\"before\":");
            push_f64(&mut out, s.before);
            out.push_str(",\"after\":");
            push_f64(&mut out, s.after);
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Fold the event stream into per-epoch statistics (epoch order).
pub fn fold_epochs(events: &[JournalEvent]) -> Vec<EpochStats> {
    let mut epochs: Vec<EpochStats> = Vec::new();
    for ev in events {
        let epoch = ev.epoch();
        let idx = match epochs.iter().position(|s| s.epoch == epoch) {
            Some(i) => i,
            None => {
                epochs.push(EpochStats {
                    epoch,
                    ..EpochStats::default()
                });
                epochs.len() - 1
            }
        };
        let Some(stats) = epochs.get_mut(idx) else {
            continue; // unreachable: idx < epochs.len() by construction
        };
        match ev {
            JournalEvent::Admit {
                count, demand_fp, ..
            } => {
                stats.admitted = *count;
                stats.demand_fp = Some(*demand_fp);
            }
            JournalEvent::CacheHit { .. } => stats.cache_hit = true,
            JournalEvent::CacheMiss { .. } => stats.cache_miss = true,
            JournalEvent::CacheEvict { count, .. } => stats.evictions += count,
            JournalEvent::CacheInvalidate { count, .. } => stats.invalidations += count,
            JournalEvent::EdgeFail { .. } => stats.edge_failed = true,
            JournalEvent::EdgeRestore { .. } => stats.edge_restored = true,
            JournalEvent::Fallback { pairs, .. } => stats.fallback_pairs = *pairs,
            JournalEvent::Unserved { pairs, .. } => stats.unserved_pairs = *pairs,
            JournalEvent::TopEdges { edges, .. } => stats.top_edges.clone_from(edges),
            JournalEvent::PathChurn { new_pair, .. } => {
                stats.churned_pairs += 1;
                if *new_pair {
                    stats.new_pairs += 1;
                }
            }
            JournalEvent::EpochEnd {
                admitted,
                cache_hit,
                congestion,
                fallback_pairs,
                unserved_pairs,
                failed_edges,
                epoch_wall_ns,
                ..
            } => {
                stats.admitted = *admitted;
                stats.cache_hit |= *cache_hit;
                stats.congestion = *congestion;
                stats.fallback_pairs = *fallback_pairs;
                stats.unserved_pairs = *unserved_pairs;
                stats.failed_edges = *failed_edges;
                stats.epoch_wall_ns = *epoch_wall_ns;
            }
            JournalEvent::EpochBegin { .. }
            | JournalEvent::Reject { .. }
            | JournalEvent::Reopt { .. } => {}
        }
    }
    epochs.sort_by_key(|s| s.epoch);
    epochs
}

/// The dominant cause for the transition landing on `to`, given the
/// demand fingerprints seen strictly before it.
fn classify(to: &EpochStats, prev_fp: Option<u64>, seen_before: bool) -> Cause {
    let failure = to.edge_failed
        || to.edge_restored
        || to.failed_edges > 0
        || to.fallback_pairs > 0
        || to.unserved_pairs > 0
        || to.invalidations > 0;
    if failure {
        return Cause::Failure;
    }
    if to.cache_miss {
        return if seen_before {
            Cause::Eviction
        } else {
            Cause::ColdSample
        };
    }
    if let (Some(fp), Some(prev)) = (to.demand_fp, prev_fp) {
        if fp != prev {
            return Cause::DemandChurn;
        }
    }
    Cause::Steady
}

/// Analyze a journal event stream: fold epochs, attribute transitions,
/// rank causes, and extract the top-`top_k` per-edge load shifts.
pub fn analyze(events: &[JournalEvent], top_k: usize) -> ForensicsReport {
    let epochs = fold_epochs(events);
    let mut transitions = Vec::with_capacity(epochs.len().saturating_sub(1));
    let mut seen_fps: Vec<u64> = Vec::new();
    if let Some(first) = epochs.first() {
        if let Some(fp) = first.demand_fp {
            seen_fps.push(fp);
        }
    }
    for pair in epochs.windows(2) {
        let (from, to) = match pair {
            [a, b] => (a, b),
            _ => continue, // unreachable: windows(2) yields pairs
        };
        let seen_before = to.demand_fp.is_some_and(|fp| seen_fps.contains(&fp));
        let cause = classify(to, from.demand_fp, seen_before);
        if let Some(fp) = to.demand_fp {
            if !seen_fps.contains(&fp) {
                seen_fps.push(fp);
            }
        }
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — wall deltas are approximate by nature
        let wall_delta_ns = to.epoch_wall_ns as f64 - from.epoch_wall_ns as f64;
        transitions.push(EpochTransition {
            from: from.epoch,
            to: to.epoch,
            congestion_delta: to.congestion - from.congestion,
            wall_delta_ns,
            cause,
        });
    }

    let mut causes: Vec<CauseAttribution> = CAUSES
        .iter()
        .map(|&cause| CauseAttribution {
            cause,
            transitions: 0,
            abs_congestion_delta: 0.0,
            abs_wall_delta_ns: 0.0,
            share: 0.0,
        })
        .collect();
    for t in &transitions {
        if let Some(c) = causes.iter_mut().find(|c| c.cause == t.cause) {
            c.transitions += 1;
            c.abs_congestion_delta += t.congestion_delta.abs();
            c.abs_wall_delta_ns += t.wall_delta_ns.abs();
        }
    }
    let total: f64 = causes.iter().map(|c| c.abs_congestion_delta).sum();
    if total > 0.0 {
        for c in &mut causes {
            c.share = c.abs_congestion_delta / total;
        }
    }
    // Rank by congestion movement; the sort is stable, so ties keep the
    // precedence order of CAUSES.
    causes.sort_by(|a, b| {
        b.abs_congestion_delta
            .partial_cmp(&a.abs_congestion_delta)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let edge_shifts = edge_shift_table(&epochs, &transitions, top_k);
    ForensicsReport {
        epochs,
        transitions,
        causes,
        edge_shifts,
    }
}

/// Each edge's largest load move between consecutive epochs that both
/// carry `top_edges` records (edges absent from a record count as load
/// 0 — they fell out of, or rose into, the top-k).
fn edge_shift_table(
    epochs: &[EpochStats],
    transitions: &[EpochTransition],
    top_k: usize,
) -> Vec<EdgeShift> {
    let mut best: Vec<EdgeShift> = Vec::new();
    for pair in epochs.windows(2) {
        let (from, to) = match pair {
            [a, b] => (a, b),
            _ => continue, // unreachable: windows(2) yields pairs
        };
        if from.top_edges.is_empty() && to.top_edges.is_empty() {
            continue;
        }
        let cause = transitions
            .iter()
            .find(|t| t.to == to.epoch)
            .map_or(Cause::Steady, |t| t.cause);
        let mut ids: Vec<u32> = from
            .top_edges
            .iter()
            .chain(to.top_edges.iter())
            .map(|e| e.edge)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let load_of = |s: &EpochStats| {
                s.top_edges
                    .iter()
                    .find(|e| e.edge == id)
                    .map_or(0.0, |e| e.load)
            };
            let before = load_of(from);
            let after = load_of(to);
            // Bit equality: skip only when the load literally did not move;
            // any representable change, however small, is a real shift.
            if before.to_bits() == after.to_bits() {
                continue;
            }
            let delta = after - before;
            let shift = EdgeShift {
                edge: id,
                delta,
                before,
                after,
                epoch: to.epoch,
                cause,
            };
            match best.iter_mut().find(|s| s.edge == id) {
                Some(existing) if existing.delta.abs() >= delta.abs() => {}
                Some(existing) => *existing = shift,
                None => best.push(shift),
            }
        }
    }
    best.sort_by(|a, b| {
        b.delta
            .abs()
            .partial_cmp(&a.delta.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.edge.cmp(&b.edge))
    });
    best.truncate(top_k);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_events(
        epoch: u64,
        fp: u64,
        hit: bool,
        congestion: f64,
        top: &[(u32, f64)],
    ) -> Vec<JournalEvent> {
        let mut evs = vec![
            JournalEvent::EpochBegin {
                epoch,
                queue_depth: 4,
            },
            JournalEvent::Admit {
                epoch,
                count: 4,
                demand_fp: fp,
            },
            if hit {
                JournalEvent::CacheHit { epoch }
            } else {
                JournalEvent::CacheMiss { epoch }
            },
        ];
        evs.push(JournalEvent::TopEdges {
            epoch,
            edges: top
                .iter()
                .map(|&(edge, load)| EdgeLoad {
                    edge,
                    load,
                    utilization: load,
                })
                .collect(),
        });
        evs.push(JournalEvent::EpochEnd {
            epoch,
            admitted: 4,
            cache_hit: hit,
            congestion,
            fallback_pairs: 0,
            unserved_pairs: 0,
            failed_edges: 0,
            epoch_wall_ns: 0,
        });
        evs
    }

    #[test]
    fn failure_dominates_attribution() {
        let mut events = Vec::new();
        events.extend(epoch_events(0, 1, false, 1.0, &[(0, 1.0)]));
        events.extend(epoch_events(1, 1, true, 1.0, &[(0, 1.0)]));
        // failure epoch: invalidation + miss + big jump
        events.push(JournalEvent::EdgeFail {
            epoch: 2,
            edges: vec![5],
        });
        events.push(JournalEvent::CacheInvalidate { epoch: 2, count: 1 });
        let mut fail_epoch = epoch_events(2, 1, false, 3.0, &[(0, 0.5), (7, 2.5)]);
        if let Some(JournalEvent::EpochEnd { failed_edges, .. }) = fail_epoch.last_mut() {
            *failed_edges = 1;
        }
        events.extend(fail_epoch);
        events.extend(epoch_events(3, 1, true, 1.0, &[(0, 1.0)]));
        // epoch 3 still has no failure markers → its recovery delta is
        // not failure-attributed unless markers say so; tag a restore
        events.push(JournalEvent::EdgeRestore {
            epoch: 3,
            restored: 1,
        });

        let report = analyze(&events, 4);
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(report.transitions.len(), 3);
        assert_eq!(report.top_cause(), Some(Cause::Failure));
        let failure = report
            .causes
            .iter()
            .find(|c| c.cause == Cause::Failure)
            .expect("failure bucket");
        assert_eq!(failure.transitions, 2, "fail + restore transitions");
        assert!((failure.abs_congestion_delta - 4.0).abs() < 1e-12);
        assert!(failure.share > 0.99);
        // edge 7 rose by 2.5 on the failure transition
        let top_shift = report.edge_shifts.first().expect("shift table");
        assert_eq!(top_shift.edge, 7);
        assert!((top_shift.delta - 2.5).abs() < 1e-12);
        assert_eq!(top_shift.cause, Cause::Failure);
    }

    #[test]
    fn eviction_vs_cold_sample_uses_fingerprint_history() {
        let mut events = Vec::new();
        events.extend(epoch_events(0, 10, false, 1.0, &[])); // cold
        events.extend(epoch_events(1, 20, false, 1.2, &[])); // cold (new fp)
        let mut evicting = epoch_events(2, 30, false, 1.1, &[]);
        evicting.insert(3, JournalEvent::CacheEvict { epoch: 2, count: 1 });
        events.extend(evicting); // cold + eviction happening
        events.extend(epoch_events(3, 10, false, 1.0, &[])); // seen fp missing again → eviction
        events.extend(epoch_events(4, 10, true, 1.0, &[])); // steady hit

        let report = analyze(&events, 4);
        let causes: Vec<(Cause, usize)> = report
            .transitions
            .iter()
            .map(|t| (t.cause, usize::try_from(t.to).unwrap_or(0)))
            .collect();
        assert_eq!(
            causes,
            vec![
                (Cause::ColdSample, 1),
                (Cause::ColdSample, 2),
                (Cause::Eviction, 3),
                (Cause::Steady, 4),
            ]
        );
    }

    #[test]
    fn demand_churn_on_hits_with_fingerprint_change() {
        let mut events = Vec::new();
        events.extend(epoch_events(0, 1, false, 1.0, &[]));
        events.extend(epoch_events(1, 2, false, 1.5, &[]));
        events.extend(epoch_events(2, 1, true, 1.0, &[]));
        events.extend(epoch_events(3, 2, true, 1.5, &[]));
        let report = analyze(&events, 4);
        let churn = report
            .causes
            .iter()
            .find(|c| c.cause == Cause::DemandChurn)
            .expect("churn bucket");
        assert_eq!(churn.transitions, 2, "hit-with-changed-fp transitions");
        assert_eq!(report.top_cause(), Some(Cause::DemandChurn));
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut events = Vec::new();
        events.extend(epoch_events(0, 1, false, 1.0, &[(2, 1.0)]));
        events.extend(epoch_events(1, 1, true, 1.5, &[(2, 1.5)]));
        let report = analyze(&events, 4);
        let text = report.render_text();
        assert!(text.contains("cause attribution"));
        assert!(text.contains("top cause:"));
        assert!(text.contains("per-edge load shifts"));
        let json = report.to_json();
        let doc = crate::parse_json(&json).expect("forensics JSON parses");
        assert_eq!(
            doc.get("format").and_then(crate::JsonValue::as_str),
            Some("sor-forensics/1")
        );
        assert_eq!(
            doc.get("epochs").and_then(crate::JsonValue::as_u64),
            Some(2)
        );
        let causes = doc
            .get("causes")
            .and_then(crate::JsonValue::as_arr)
            .expect("causes array");
        assert_eq!(causes.len(), CAUSES.len());
        assert!(doc
            .get("edge_shifts")
            .and_then(crate::JsonValue::as_arr)
            .is_some());
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let report = analyze(&[], 4);
        assert!(report.epochs.is_empty());
        assert!(report.transitions.is_empty());
        assert_eq!(report.top_cause(), None);
        assert!(report.render_text().contains("none"));
    }
}
