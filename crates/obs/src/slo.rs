//! SLO watchdogs: declarative per-epoch thresholds over the timeline.
//!
//! An operator states what "healthy" means — a cap on the congestion
//! ratio vs. the fresh-sample baseline, a p99 epoch-wall budget, a floor
//! on the cache hit rate, a cap on the fallback fraction — and the
//! watchdog evaluates every published epoch against it, emitting one
//! structured [`warn!`](crate::warn) event per breach
//! (`SLO breach epoch=.. rule=.. value=.. threshold=..`), bumping the
//! `slo/breaches` counter, and accumulating a [`HealthSummary`] with
//! per-rule breach counts for the `/health` endpoint.
//!
//! Evaluation consumes recorded data only; it never feeds back into
//! routing, so breaches cannot perturb published routes.

use crate::timeline::EpochRecord;
use parking_lot::Mutex;

/// Declarative SLO thresholds. `None` disables a rule.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloConfig {
    /// Max allowed `congestion / fresh_congestion` (quality-of-cache
    /// rule; skipped on epochs without a fresh baseline).
    pub max_congestion_ratio: Option<f64>,
    /// Max allowed p99 epoch wall time, milliseconds (skipped until the
    /// wall histogram has data).
    pub max_p99_epoch_wall_ms: Option<f64>,
    /// Min allowed cache hit rate over recent epochs, in `[0, 1]`
    /// (skipped until a hit rate is supplied).
    pub min_cache_hit_rate: Option<f64>,
    /// Max allowed `fallback_pairs / admitted` per epoch.
    pub max_fallback_fraction: Option<f64>,
}

impl SloConfig {
    /// All rules disabled (the default).
    pub fn disabled() -> Self {
        SloConfig::default()
    }

    /// Sane serving defaults: cached quality within 2x of fresh, p99
    /// epoch under a second, hit rate above half, fallback under a
    /// quarter of admitted demand.
    pub fn serving_defaults() -> Self {
        SloConfig {
            max_congestion_ratio: Some(2.0),
            max_p99_epoch_wall_ms: Some(1000.0),
            min_cache_hit_rate: Some(0.5),
            max_fallback_fraction: Some(0.25),
        }
    }

    /// Whether any rule is armed.
    pub fn is_armed(&self) -> bool {
        self.max_congestion_ratio.is_some()
            || self.max_p99_epoch_wall_ms.is_some()
            || self.min_cache_hit_rate.is_some()
            || self.max_fallback_fraction.is_some()
    }
}

/// The rule identifiers, in evaluation order (stable: exposition and
/// breach events use these names verbatim).
pub const SLO_RULES: [&str; 4] = [
    "max_congestion_ratio",
    "max_p99_epoch_wall_ms",
    "min_cache_hit_rate",
    "max_fallback_fraction",
];

/// One threshold violation on one epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct SloBreach {
    /// Epoch the violation happened on.
    pub epoch: u64,
    /// Rule identifier (one of [`SLO_RULES`]).
    pub rule: &'static str,
    /// Observed value.
    pub value: f64,
    /// Configured threshold.
    pub threshold: f64,
}

impl SloBreach {
    /// The structured event line emitted for this breach.
    pub fn event_line(&self) -> String {
        format!(
            "SLO breach epoch={} rule={} value={:.6} threshold={:.6}",
            self.epoch, self.rule, self.value, self.threshold
        )
    }
}

/// Live inputs a single [`EpochRecord`] cannot carry: tail latency from
/// the epoch-wall [`LogHistogram`](crate::LogHistogram) and the windowed
/// cache hit rate from the [`WindowRegistry`](crate::WindowRegistry).
#[derive(Clone, Copy, Debug, Default)]
pub struct SloInputs {
    /// Current p99 of epoch wall time, milliseconds, if observed.
    pub p99_epoch_wall_ms: Option<f64>,
    /// Cache hit rate over recent epochs, in `[0, 1]`, if computable.
    pub cache_hit_rate: Option<f64>,
}

/// Running health state: epochs evaluated and breach counts per rule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthSummary {
    /// Epochs the watchdog has evaluated.
    pub epochs_evaluated: u64,
    /// Total breaches across all rules.
    pub total_breaches: u64,
    /// Breach count per rule, in [`SLO_RULES`] order.
    pub breaches_by_rule: [u64; SLO_RULES.len()],
}

impl HealthSummary {
    /// `true` when no rule has ever been breached.
    pub fn healthy(&self) -> bool {
        self.total_breaches == 0
    }

    /// Text rendering for the `/health` endpoint and the dashboard
    /// footer.
    pub fn render(&self) -> String {
        let mut out = format!(
            "health: {} ({} epochs, {} breaches)\n",
            if self.healthy() { "ok" } else { "degraded" },
            self.epochs_evaluated,
            self.total_breaches
        );
        for (rule, count) in SLO_RULES.iter().zip(self.breaches_by_rule.iter()) {
            out.push_str(&format!("  {rule}: {count}\n"));
        }
        out
    }

    /// JSON rendering for the `/health` endpoint (`sor-health/1`): the
    /// counters plus per-rule breach counts, with the text headline
    /// embedded as `summary` (rule names and the headline contain no
    /// characters needing JSON escaping).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"format\":\"sor-health/1\",\"healthy\":{},\"epochs_evaluated\":{},\
             \"total_breaches\":{},\"summary\":\"health: {} ({} epochs, {} breaches)\",\
             \"breaches_by_rule\":{{",
            self.healthy(),
            self.epochs_evaluated,
            self.total_breaches,
            if self.healthy() { "ok" } else { "degraded" },
            self.epochs_evaluated,
            self.total_breaches
        );
        for (i, (rule, count)) in SLO_RULES
            .iter()
            .zip(self.breaches_by_rule.iter())
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{rule}\":{count}"));
        }
        out.push_str("}}\n");
        out
    }
}

/// Evaluates an [`SloConfig`] against each published epoch and keeps the
/// running [`HealthSummary`]. Thread-safe; evaluation is a short lock
/// around plain counters.
pub struct SloWatchdog {
    cfg: SloConfig,
    summary: Mutex<HealthSummary>,
}

impl SloWatchdog {
    /// Watchdog for `cfg` (a fully-disabled config never breaches).
    pub fn new(cfg: SloConfig) -> Self {
        SloWatchdog {
            cfg,
            summary: Mutex::new(HealthSummary::default()),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Evaluate one epoch. Returns the breaches (possibly empty) after
    /// logging each as a structured warn event and counting it into
    /// `slo/breaches` and the health summary.
    pub fn evaluate(&self, rec: &EpochRecord, inputs: SloInputs) -> Vec<SloBreach> {
        let mut breaches = Vec::new();
        if let (Some(max), Some(ratio)) = (self.cfg.max_congestion_ratio, rec.congestion_ratio()) {
            if ratio > max {
                breaches.push(SloBreach {
                    epoch: rec.epoch,
                    rule: SLO_RULES[0],
                    value: ratio,
                    threshold: max,
                });
            }
        }
        if let (Some(max), Some(p99)) = (self.cfg.max_p99_epoch_wall_ms, inputs.p99_epoch_wall_ms) {
            if p99 > max {
                breaches.push(SloBreach {
                    epoch: rec.epoch,
                    rule: SLO_RULES[1],
                    value: p99,
                    threshold: max,
                });
            }
        }
        if let (Some(min), Some(rate)) = (self.cfg.min_cache_hit_rate, inputs.cache_hit_rate) {
            if rate < min {
                breaches.push(SloBreach {
                    epoch: rec.epoch,
                    rule: SLO_RULES[2],
                    value: rate,
                    threshold: min,
                });
            }
        }
        if let Some(max) = self.cfg.max_fallback_fraction {
            if rec.admitted > 0 {
                #[allow(clippy::cast_precision_loss)]
                // sor-check: allow(lossy-cast) — pair counts are tiny
                let frac = rec.fallback_pairs as f64 / rec.admitted as f64;
                if frac > max {
                    breaches.push(SloBreach {
                        epoch: rec.epoch,
                        rule: SLO_RULES[3],
                        value: frac,
                        threshold: max,
                    });
                }
            }
        }
        for b in &breaches {
            crate::warn!("{}", b.event_line());
            crate::count("slo/breaches", 1);
        }
        let mut summary = self.summary.lock();
        summary.epochs_evaluated += 1;
        summary.total_breaches += breaches.len() as u64;
        for b in &breaches {
            if let Some(i) = SLO_RULES.iter().position(|r| *r == b.rule) {
                summary.breaches_by_rule[i] += 1;
            }
        }
        breaches
    }

    /// Copy of the running health state.
    pub fn summary(&self) -> HealthSummary {
        self.summary.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_sink, take_captured, Sink};

    fn record() -> EpochRecord {
        EpochRecord {
            epoch: 7,
            admitted: 8,
            rejected: 0,
            cache_hit: false,
            cache_hits: 0,
            cache_misses: 1,
            cache_evictions: 0,
            cache_invalidations: 0,
            congestion: 3.0,
            fresh_congestion: Some(1.0),
            fallback_pairs: 4,
            unserved_pairs: 0,
            queue_depth: 0,
            failed_edges: 1,
            epoch_wall_ns: 5_000_000,
            slo_breaches: Vec::new(),
        }
    }

    #[test]
    fn disabled_config_never_breaches() {
        let w = SloWatchdog::new(SloConfig::disabled());
        assert!(!w.config().is_armed());
        let breaches = w.evaluate(&record(), SloInputs::default());
        assert!(breaches.is_empty());
        let s = w.summary();
        assert!(s.healthy());
        assert_eq!(s.epochs_evaluated, 1);
    }

    #[test]
    fn breaches_fire_count_and_log() {
        let _guard = crate::metrics::test_lock();
        set_sink(Sink::Memory);
        let _ = take_captured();
        let w = SloWatchdog::new(SloConfig {
            max_congestion_ratio: Some(2.0),
            max_p99_epoch_wall_ms: Some(1.0),
            min_cache_hit_rate: Some(0.9),
            max_fallback_fraction: Some(0.25),
        });
        assert!(w.config().is_armed());
        let breaches = w.evaluate(
            &record(),
            SloInputs {
                p99_epoch_wall_ms: Some(5.0),
                cache_hit_rate: Some(0.1),
            },
        );
        set_sink(Sink::Stderr);
        assert_eq!(breaches.len(), 4, "all four rules violated");
        assert_eq!(breaches[0].rule, "max_congestion_ratio");
        assert!((breaches[0].value - 3.0).abs() < 1e-12);
        let lines = take_captured();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[0].contains("SLO breach epoch=7 rule=max_congestion_ratio"),
            "structured event: {}",
            lines[0]
        );
        assert!(lines[0].contains("threshold=2.0"));
        let s = w.summary();
        assert!(!s.healthy());
        assert_eq!(s.total_breaches, 4);
        assert_eq!(s.breaches_by_rule, [1, 1, 1, 1]);
        let rendered = s.render();
        assert!(rendered.contains("degraded"));
        assert!(rendered.contains("min_cache_hit_rate: 1"));
    }

    #[test]
    fn within_threshold_epochs_stay_healthy() {
        let w = SloWatchdog::new(SloConfig::serving_defaults());
        let mut rec = record();
        rec.congestion = 1.1;
        rec.fallback_pairs = 1;
        let breaches = w.evaluate(
            &rec,
            SloInputs {
                p99_epoch_wall_ms: Some(2.0),
                cache_hit_rate: Some(0.8),
            },
        );
        assert!(breaches.is_empty());
        assert!(w.summary().healthy());
        assert!(w.summary().render().contains("ok"));
    }
}
