//! RAII structured spans and the phase tree.
//!
//! [`span`] returns a guard that times its scope; guards nest through a
//! thread-local stack, so each distinct *path* of span names (e.g.
//! `sor/run` → `hierarchy/build` → `frt/tree`) becomes one node of a
//! phase tree with a call count and accumulated wall time. Span names
//! themselves may contain `/` (the workspace convention is
//! `area/action`), so tree paths are stored as segment vectors and keyed
//! internally with a separator that cannot appear in a name.
//!
//! [`phase_report`] renders the tree as an indented flamegraph-style
//! text report with per-node total time, self time (total minus direct
//! children), and share of the root span.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Internal path separator for the span map key. Span *names* use `/`
/// freely; `;` is reserved (a name containing it would corrupt the
/// tree, so don't).
const SEP: char = ';';

#[derive(Default)]
struct SpanStat {
    calls: u64,
    total_ns: u64,
}

fn span_map() -> &'static Mutex<HashMap<String, SpanStat>> {
    static MAP: OnceLock<Mutex<HashMap<String, SpanStat>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    /// The currently open span names on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A live RAII span; created by [`span`], recorded into the phase tree
/// when dropped. Inert (and allocation-free) while capture is disabled.
#[must_use = "a span times its scope; dropping it immediately records ~0ns"]
#[derive(Debug)]
pub struct Span {
    /// `Some((start, key))` when capture was enabled at creation; the
    /// key is the full stack path, pre-joined so `Drop` does no work
    /// beyond one map update.
    live: Option<(Instant, String)>,
}

/// Open a span named `name` for the enclosing scope. The returned guard
/// records one call and the elapsed wall time into the phase-tree node
/// identified by the stack of currently open spans on this thread.
///
/// ```
/// let _root = sor_obs::span("doc/outer");
/// {
///     let _inner = sor_obs::span("doc/inner"); // node: doc/outer → doc/inner
/// }
/// ```
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { live: None };
    }
    let key = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        let mut key = String::with_capacity(stack.len() * 16);
        for (i, seg) in stack.iter().enumerate() {
            if i > 0 {
                key.push(SEP);
            }
            key.push_str(seg);
        }
        key
    });
    Span {
        live: Some((Instant::now(), key)),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((start, key)) = self.live.take() else {
            return;
        };
        let elapsed = start.elapsed().as_nanos();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut map = span_map().lock();
        let stat = map.entry(key).or_default();
        stat.calls += 1;
        stat.total_ns = stat
            .total_ns
            .saturating_add(u64::try_from(elapsed).unwrap_or(u64::MAX));
    }
}

/// One node of the phase tree at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span names from the root down to this node (names may contain
    /// `/`; the nesting structure lives in this vector, not the names).
    pub path: Vec<String>,
    /// How many times this exact path was entered.
    pub calls: u64,
    /// Accumulated wall time across all calls, in nanoseconds.
    pub total_ns: u64,
    /// `total_ns` minus the total of direct children (saturating);
    /// computed at snapshot time.
    pub self_ns: u64,
}

impl SpanSnapshot {
    /// Depth in the tree (root spans have depth 1).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// The node's own name (last path segment), or `""` for a
    /// degenerate empty path (never produced by [`span`]).
    pub fn name(&self) -> &str {
        self.path.last().map_or("", String::as_str)
    }
}

/// Snapshot the phase tree, sorted by path (parents sort before their
/// children, so iteration order is a pre-order walk).
pub(crate) fn span_snapshots() -> Vec<SpanSnapshot> {
    let mut nodes: Vec<SpanSnapshot> = {
        let map = span_map().lock();
        map.iter()
            .map(|(key, stat)| SpanSnapshot {
                path: key.split(SEP).map(str::to_string).collect(),
                calls: stat.calls,
                total_ns: stat.total_ns,
                self_ns: stat.total_ns,
            })
            .collect()
    };
    nodes.sort_by(|a, b| a.path.cmp(&b.path));
    // Subtract each node's total from its parent's self time.
    for i in 0..nodes.len() {
        let (parent_path, child_total) = (nodes[i].path.clone(), nodes[i].total_ns);
        if parent_path.len() < 2 {
            continue;
        }
        let parent = &parent_path[..parent_path.len() - 1];
        if let Some(p) = nodes.iter_mut().find(|n| n.path == parent) {
            p.self_ns = p.self_ns.saturating_sub(child_total);
        }
    }
    nodes
}

/// Clear the phase tree (open spans on other threads will re-create
/// their nodes when they close).
pub(crate) fn reset_spans() {
    span_map().lock().clear();
}

fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let ms = ns as f64 / 1e6;
    if ms >= 100.0 {
        format!("{ms:.0}ms")
    } else if ms >= 1.0 {
        format!("{ms:.2}ms")
    } else {
        format!("{ms:.3}ms")
    }
}

/// Render a snapshot of the phase tree (as produced by
/// [`crate::snapshot`]) as an indented text report. Percentages are of
/// the first root span's total.
pub fn render_phase_tree(nodes: &[SpanSnapshot]) -> String {
    if nodes.is_empty() {
        return "(no spans recorded)\n".to_string();
    }
    let root_total: u64 = nodes
        .iter()
        .filter(|n| n.depth() == 1)
        .map(|n| n.total_ns)
        .sum();
    let name_width = nodes
        .iter()
        .map(|n| 2 * (n.depth() - 1) + n.name().len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut out = String::new();
    for n in nodes {
        let indent = "  ".repeat(n.depth() - 1);
        #[allow(clippy::cast_precision_loss)]
        let pct = if root_total > 0 {
            100.0 * n.total_ns as f64 / root_total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{indent}{name:<width$}  calls={calls:<7} total={total:>9}  self={selfv:>9}  {pct:5.1}%",
            name = n.name(),
            width = name_width - indent.len(),
            calls = n.calls,
            total = fmt_ns(n.total_ns),
            selfv = fmt_ns(n.self_ns),
        );
    }
    out
}

/// Snapshot the phase tree and render it — the `--trace` report.
pub fn phase_report() -> String {
    render_phase_tree(&span_snapshots())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(ns: u64) {
        let t0 = Instant::now();
        while u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let _guard = crate::metrics::test_lock();
        crate::set_enabled(true);
        reset_spans();
        {
            let _root = span("span-test/root");
            spin(50_000);
            for _ in 0..3 {
                let _child = span("span-test/child");
                spin(10_000);
            }
            {
                let _other = span("span-test/other");
                let _grand = span("span-test/grand");
                spin(5_000);
            }
        }
        crate::set_enabled(false);
        let nodes = span_snapshots();
        let paths: Vec<Vec<String>> = nodes.iter().map(|n| n.path.clone()).collect();
        assert_eq!(
            paths,
            vec![
                vec!["span-test/root".to_string()],
                vec!["span-test/root".to_string(), "span-test/child".to_string()],
                vec!["span-test/root".to_string(), "span-test/other".to_string()],
                vec![
                    "span-test/root".to_string(),
                    "span-test/other".to_string(),
                    "span-test/grand".to_string()
                ],
            ]
        );
        let root = &nodes[0];
        let child = &nodes[1];
        assert_eq!(root.calls, 1);
        assert_eq!(child.calls, 3);
        // parent strictly contains its children
        assert!(root.total_ns >= child.total_ns + nodes[2].total_ns);
        // self = total − direct children (grandchild subtracts from
        // `other`, not from root)
        assert_eq!(
            root.self_ns,
            root.total_ns - child.total_ns - nodes[2].total_ns
        );
        reset_spans();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::metrics::test_lock();
        crate::set_enabled(false);
        reset_spans();
        {
            let _s = span("span-test/ghost");
        }
        assert!(span_snapshots().is_empty());
    }

    #[test]
    fn render_includes_names_and_handles_empty() {
        let _guard = crate::metrics::test_lock();
        assert!(render_phase_tree(&[]).contains("no spans"));
        let nodes = vec![
            SpanSnapshot {
                path: vec!["a".into()],
                calls: 1,
                total_ns: 2_000_000,
                self_ns: 1_000_000,
            },
            SpanSnapshot {
                path: vec!["a".into(), "b".into()],
                calls: 4,
                total_ns: 1_000_000,
                self_ns: 1_000_000,
            },
        ];
        let text = render_phase_tree(&nodes);
        assert!(text.contains("a "));
        assert!(text.contains("  b"));
        assert!(text.contains("calls=4"));
        assert!(text.contains("100.0%"));
    }
}
