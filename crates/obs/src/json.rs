//! Hand-rolled JSON for [`crate::Snapshot`] — same no-serde discipline
//! as `sor-check`'s SARIF writer. The writer half serializes snapshots;
//! the reader half ([`parse_json`] / [`JsonValue`]) is a small
//! recursive-descent parser so the exports can be consumed back
//! (baseline gating in `sor-bench`'s `perf` harness, the
//! [`crate::snapshot::diff`] engine, round-trip tests).
//!
//! Output shape (all arrays name-sorted by construction, so two
//! snapshots of the same run serialize identically):
//!
//! ```json
//! {
//!   "meta": { "experiment": "e1" },
//!   "counters":   [ { "name": "flow/mwu/phases", "value": 42 } ],
//!   "histograms": [ { "name": "core/path/hops", "count": 7, "sum": 21.0,
//!                     "buckets": [ { "le": 1.0, "count": 0 },
//!                                  { "le": null, "count": 0 } ] } ],
//!   "spans":      [ { "path": ["sor/run", "hierarchy/build"],
//!                     "calls": 1, "total_ns": 12345, "self_ns": 12000 } ]
//! }
//! ```
//!
//! `le: null` marks a histogram's overflow bucket; non-finite floats
//! (which no metric should produce) serialize as `null` rather than
//! emitting invalid JSON.

use crate::Snapshot;
use std::fmt::Write as _;

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-roundtrip; ensure the
        // token stays a JSON number (Display never emits exponents
        // without a mantissa dot issue, and integers print bare).
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn snapshot_to_json(snap: &Snapshot, meta: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push(' ');
        push_escaped(&mut out, k);
        out.push_str(": ");
        push_escaped(&mut out, v);
    }
    if !meta.is_empty() {
        out.push(' ');
    }
    out.push_str("},\n  \"counters\": [");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"name\": ");
        push_escaped(&mut out, &c.name);
        let _ = write!(out, ", \"value\": {} }}", c.value);
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"histograms\": [");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"name\": ");
        push_escaped(&mut out, &h.name);
        let _ = write!(out, ", \"count\": {}, \"sum\": ", h.count);
        push_f64(&mut out, h.sum);
        out.push_str(", \"buckets\": [");
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{ \"le\": ");
            match b.le {
                Some(le) => push_f64(&mut out, le),
                None => out.push_str("null"),
            }
            let _ = write!(out, ", \"count\": {} }}", b.count);
        }
        out.push_str("] }");
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"spans\": [");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"path\": [");
        for (j, seg) in s.path.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_escaped(&mut out, seg);
        }
        let _ = write!(
            out,
            "], \"calls\": {}, \"total_ns\": {}, \"self_ns\": {} }}",
            s.calls, s.total_ns, s.self_ns
        );
    }
    if !snap.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// A parsed JSON document. Object member order is preserved (snapshots
/// are name-sorted by construction, and round-trip tests rely on it).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; snapshot counters are integral
    /// and round-trip exactly up to 2^53, far above any real count).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered `(key, value)` members.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a `u64` (must be a non-negative integer
    /// within `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        // the boundary value 2^64 itself rounds out of range
        // sor-check: allow(float-eq) — fract()==0.0 is an exact integrality test
        if x >= 0.0 && x.fract() == 0.0 && x < u64::MAX as f64 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // sor-check: allow(lossy-cast) — integrality and range checked above
            Some(x as u64)
        } else {
            None
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse error: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            out,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting guard — snapshots are ~4 levels deep; anything past this is
/// hostile or corrupt input, not a metrics export.
const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", char::from(expected))))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat_literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte '{}'", char::from(c)))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own exports
                            // (metric names are valid UTF-8); map them to
                            // the replacement char rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

/// Parse a JSON document (the whole input must be one value plus
/// whitespace). Numbers become `f64`; object member order is preserved.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BucketCount, CounterSnapshot, HistogramSnapshot, SpanSnapshot};

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "a/b".to_string(),
                value: 3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "h \"q\"".to_string(),
                buckets: vec![
                    BucketCount {
                        le: Some(1.5),
                        count: 2,
                    },
                    BucketCount { le: None, count: 1 },
                ],
                count: 3,
                sum: 4.25,
            }],
            spans: vec![SpanSnapshot {
                path: vec!["sor/run".to_string(), "x".to_string()],
                calls: 2,
                total_ns: 10,
                self_ns: 7,
            }],
        }
    }

    #[test]
    fn serializes_all_sections_with_escaping() {
        let text = snapshot_to_json(&sample(), &[("experiment", "e1"), ("quick", "true")]);
        assert!(text.contains("\"experiment\": \"e1\""));
        assert!(text.contains("\"name\": \"a/b\", \"value\": 3"));
        assert!(text.contains("\"h \\\"q\\\"\""));
        assert!(text.contains("{ \"le\": 1.5, \"count\": 2 }"));
        assert!(text.contains("{ \"le\": null, \"count\": 1 }"));
        assert!(text.contains("\"sum\": 4.25"));
        assert!(text.contains("\"path\": [\"sor/run\", \"x\"], \"calls\": 2"));
        // balanced braces/brackets — cheap structural sanity check
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces in:\n{text}"
        );
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let empty = Snapshot {
            counters: vec![],
            histograms: vec![],
            spans: vec![],
        };
        let text = snapshot_to_json(&empty, &[]);
        assert!(text.contains("\"counters\": []"));
        assert!(text.contains("\"histograms\": []"));
        assert!(text.contains("\"spans\": []"));
        assert!(text.contains("\"meta\": {}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = sample();
        s.histograms[0].sum = f64::NAN;
        let text = snapshot_to_json(&s, &[]);
        assert!(text.contains("\"sum\": null"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut out = String::new();
        push_escaped(&mut out, "a\nb\u{1}c");
        assert_eq!(out, "\"a\\nb\\u0001c\"");
    }
}
