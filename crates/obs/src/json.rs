//! Hand-rolled JSON serialization for [`crate::Snapshot`] — same
//! no-serde discipline as `sor-check`'s SARIF writer.
//!
//! Output shape (all arrays name-sorted by construction, so two
//! snapshots of the same run serialize identically):
//!
//! ```json
//! {
//!   "meta": { "experiment": "e1" },
//!   "counters":   [ { "name": "flow/mwu/phases", "value": 42 } ],
//!   "histograms": [ { "name": "core/path/hops", "count": 7, "sum": 21.0,
//!                     "buckets": [ { "le": 1.0, "count": 0 },
//!                                  { "le": null, "count": 0 } ] } ],
//!   "spans":      [ { "path": ["sor/run", "hierarchy/build"],
//!                     "calls": 1, "total_ns": 12345, "self_ns": 12000 } ]
//! }
//! ```
//!
//! `le: null` marks a histogram's overflow bucket; non-finite floats
//! (which no metric should produce) serialize as `null` rather than
//! emitting invalid JSON.

use crate::Snapshot;
use std::fmt::Write as _;

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-roundtrip; ensure the
        // token stays a JSON number (Display never emits exponents
        // without a mantissa dot issue, and integers print bare).
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn snapshot_to_json(snap: &Snapshot, meta: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push(' ');
        push_escaped(&mut out, k);
        out.push_str(": ");
        push_escaped(&mut out, v);
    }
    if !meta.is_empty() {
        out.push(' ');
    }
    out.push_str("},\n  \"counters\": [");
    for (i, c) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"name\": ");
        push_escaped(&mut out, &c.name);
        let _ = write!(out, ", \"value\": {} }}", c.value);
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"histograms\": [");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"name\": ");
        push_escaped(&mut out, &h.name);
        let _ = write!(out, ", \"count\": {}, \"sum\": ", h.count);
        push_f64(&mut out, h.sum);
        out.push_str(", \"buckets\": [");
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{ \"le\": ");
            match b.le {
                Some(le) => push_f64(&mut out, le),
                None => out.push_str("null"),
            }
            let _ = write!(out, ", \"count\": {} }}", b.count);
        }
        out.push_str("] }");
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"spans\": [");
    for (i, s) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"path\": [");
        for (j, seg) in s.path.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_escaped(&mut out, seg);
        }
        let _ = write!(
            out,
            "], \"calls\": {}, \"total_ns\": {}, \"self_ns\": {} }}",
            s.calls, s.total_ns, s.self_ns
        );
    }
    if !snap.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BucketCount, CounterSnapshot, HistogramSnapshot, SpanSnapshot};

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot {
                name: "a/b".to_string(),
                value: 3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "h \"q\"".to_string(),
                buckets: vec![
                    BucketCount {
                        le: Some(1.5),
                        count: 2,
                    },
                    BucketCount { le: None, count: 1 },
                ],
                count: 3,
                sum: 4.25,
            }],
            spans: vec![SpanSnapshot {
                path: vec!["sor/run".to_string(), "x".to_string()],
                calls: 2,
                total_ns: 10,
                self_ns: 7,
            }],
        }
    }

    #[test]
    fn serializes_all_sections_with_escaping() {
        let text = snapshot_to_json(&sample(), &[("experiment", "e1"), ("quick", "true")]);
        assert!(text.contains("\"experiment\": \"e1\""));
        assert!(text.contains("\"name\": \"a/b\", \"value\": 3"));
        assert!(text.contains("\"h \\\"q\\\"\""));
        assert!(text.contains("{ \"le\": 1.5, \"count\": 2 }"));
        assert!(text.contains("{ \"le\": null, \"count\": 1 }"));
        assert!(text.contains("\"sum\": 4.25"));
        assert!(text.contains("\"path\": [\"sor/run\", \"x\"], \"calls\": 2"));
        // balanced braces/brackets — cheap structural sanity check
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces in:\n{text}"
        );
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let empty = Snapshot {
            counters: vec![],
            histograms: vec![],
            spans: vec![],
        };
        let text = snapshot_to_json(&empty, &[]);
        assert!(text.contains("\"counters\": []"));
        assert!(text.contains("\"histograms\": []"));
        assert!(text.contains("\"spans\": []"));
        assert!(text.contains("\"meta\": {}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = sample();
        s.histograms[0].sum = f64::NAN;
        let text = snapshot_to_json(&s, &[]);
        assert!(text.contains("\"sum\": null"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut out = String::new();
        push_escaped(&mut out, "a\nb\u{1}c");
        assert_eq!(out, "\"a\\nb\\u0001c\"");
    }
}
