//! Concurrency hammer for the 16-way sharded metrics registry.
//!
//! The registry's contract: registration takes a shard lock once, after
//! which every `counter_add!` / `observe_into!` hit is lock-free atomic
//! work, safe to fire from many threads at once; `reset()` zeroes the
//! cells *in place*, so handles cached in call-site `OnceLock`s keep
//! pointing at live metrics across resets.
//!
//! The vendored `rayon` is a sequential stand-in (`par_iter` is plain
//! `iter`), so it cannot create real contention — it is exercised below
//! only to pin the idiom the instrumented crates use. Real concurrency
//! comes from `std::thread::scope`.
//!
//! This is an integration test (own process), so the process-global
//! registry is isolated from the crate's unit tests; the tests in this
//! file still share it, hence the file-local serialization lock.

use rayon::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;

const THREADS: u64 = 8;
const ITERS: u64 = 10_000;

/// Serialize tests in this file: they share the process-global registry
/// and `reset()` / `set_enabled()` are global effects.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn counter_value(name: &str) -> u64 {
    sor_obs::snapshot()
        .counters
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value)
}

fn histogram_count(name: &str) -> u64 {
    sor_obs::snapshot()
        .histograms
        .iter()
        .find(|h| h.name == name)
        .map_or(0, |h| h.count)
}

#[test]
fn threads_hammering_macros_sum_exactly() {
    let _guard = lock();
    sor_obs::reset();
    sor_obs::set_enabled(true);

    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..ITERS {
                    sor_obs::counter_add!("conc/hammer/adds");
                    sor_obs::counter_add!("conc/hammer/weighted", t + 1);
                    #[allow(clippy::cast_precision_loss)]
                    // sor-check: allow(lossy-cast) — i < 10^4 is exact in f64
                    let value = i as f64;
                    sor_obs::observe_into!("conc/hammer/histo", &[64.0, 4096.0], value);
                }
            });
        }
    });
    sor_obs::set_enabled(false);

    assert_eq!(counter_value("conc/hammer/adds"), THREADS * ITERS);
    // sum over t of (t+1) * ITERS = ITERS * THREADS*(THREADS+1)/2
    assert_eq!(
        counter_value("conc/hammer/weighted"),
        ITERS * THREADS * (THREADS + 1) / 2
    );
    assert_eq!(histogram_count("conc/hammer/histo"), THREADS * ITERS);

    let snap = sor_obs::snapshot();
    let h = snap
        .histograms
        .iter()
        .find(|h| h.name == "conc/hammer/histo")
        .expect("registered");
    // per-bucket counts are exact too: values 0..ITERS, le edges 64/4096
    assert_eq!(h.buckets[0].count, THREADS * 65); // 0..=64
    assert_eq!(h.buckets[1].count, THREADS * (4096 - 64)); // 65..=4096
    assert_eq!(h.buckets[2].count, THREADS * (ITERS - 4097)); // overflow
                                                              // sum of 0..ITERS per thread, exact in f64 well below 2^53
    #[allow(clippy::cast_precision_loss)]
    // sor-check: allow(lossy-cast) — bounded by THREADS*ITERS^2 < 2^53
    let expect_sum = (THREADS * ITERS * (ITERS - 1) / 2) as f64;
    assert!((h.sum - expect_sum).abs() < 1e-6);
}

#[test]
fn reset_mid_flight_keeps_cached_handles_valid() {
    let _guard = lock();
    sor_obs::reset();
    sor_obs::set_enabled(true);

    // Prime the call-site OnceLock caches.
    sor_obs::counter_add!("conc/reset/counter");
    sor_obs::observe_into!("conc/reset/histo", &[10.0], 1.0);

    // Hammer through the *same cached handles* while another thread
    // resets concurrently: every add must land in a live cell (no lost
    // registration, no counting into a detached metric), so after a
    // final reset-then-count round the totals are exact again.
    thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..ITERS {
                    sor_obs::counter_add!("conc/reset/counter");
                    sor_obs::observe_into!("conc/reset/histo", &[10.0], 1.0);
                }
            });
        }
        s.spawn(|| {
            for _ in 0..50 {
                sor_obs::reset();
                thread::yield_now();
            }
        });
    });

    // Handles survived the resets: one more exact round proves they
    // still feed the registry's (zeroed-in-place) cells.
    sor_obs::reset();
    for _ in 0..ITERS {
        sor_obs::counter_add!("conc/reset/counter");
    }
    assert_eq!(counter_value("conc/reset/counter"), ITERS);
    assert_eq!(histogram_count("conc/reset/histo"), 0);
    sor_obs::observe_into!("conc/reset/histo", &[10.0], 3.0);
    assert_eq!(histogram_count("conc/reset/histo"), 1);
    sor_obs::set_enabled(false);
}

#[test]
fn rayon_par_iter_idiom_counts_exactly() {
    let _guard = lock();
    sor_obs::reset();
    sor_obs::set_enabled(true);

    // The idiom the instrumented crates use. With the vendored
    // sequential rayon this runs on one thread — the assertion pins
    // that the macros still sum exactly under par_iter regardless of
    // the backing implementation.
    let n: u64 = (0..ITERS)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|_| {
            sor_obs::counter_add!("conc/rayon/adds");
            1u64
        })
        .sum();
    sor_obs::set_enabled(false);

    assert_eq!(n, ITERS);
    assert_eq!(counter_value("conc/rayon/adds"), ITERS);
}
