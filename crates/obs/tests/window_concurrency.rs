//! Concurrency hammer for the sliding-window registry and property
//! tests for the log-bucketed percentile histogram.
//!
//! The window contract under concurrency: ticks are injected (the
//! engine ticks once per epoch), deltas are differences of the
//! registry's exact counters, so however many threads hammer
//! `counter_add!` between two ticks, the windowed sums are **exact** —
//! no sampling loss, no double counting. The hammer below runs rounds
//! of concurrent adds separated by barriers and asserts the per-tick
//! delta to the unit.
//!
//! The percentile contract: a [`LogHistogram`] quantile is the upper
//! edge of the bucket holding the ranked observation, so the estimate
//! is within one log bucket (a `2^(1/4)` factor) of the exact
//! sorted-sample quantile — including across merges. The proptest
//! drives seeded sample sets through split/merge and checks the bucket
//! distance. (The vendored proptest stub generates numeric values only,
//! so each case draws a seed and derives its samples from it.)

use proptest::prelude::*;
use sor_obs::window::log_bucket_of;
use sor_obs::{LogHistogram, WindowRegistry};
use std::sync::{Barrier, Mutex, MutexGuard, OnceLock};
use std::thread;

const THREADS: u64 = 8;
const PER_ROUND: u64 = 2_000;
const ROUNDS: u64 = 5;

/// Serialize tests in this file: they share the process-global registry
/// and `reset()` / `set_enabled()` are global effects.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn window_sums_are_exact_under_concurrent_adds() {
    let _guard = lock();
    sor_obs::reset();
    sor_obs::set_enabled(true);

    let windows = WindowRegistry::new();
    // two rendezvous per round: adds-done (tick runs), tick-done (next
    // round's adds may start)
    let barrier = Barrier::new(usize::try_from(THREADS).expect("tiny") + 1);

    thread::scope(|s| {
        for t in 0..THREADS {
            let barrier = &barrier;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    for _ in 0..PER_ROUND {
                        sor_obs::counter_add!("winconc/adds");
                        sor_obs::counter_add!("winconc/weighted", t + 1);
                    }
                    barrier.wait();
                    barrier.wait();
                }
            });
        }
        for round in 0..ROUNDS {
            barrier.wait(); // every thread finished this round's adds
            windows.tick(&sor_obs::snapshot());
            #[allow(clippy::cast_precision_loss)]
            // sor-check: allow(lossy-cast) — counts are far below 2^52
            let expect = (THREADS * PER_ROUND) as f64;
            #[allow(clippy::cast_precision_loss)]
            // sor-check: allow(lossy-cast) — counts are far below 2^52
            let expect_weighted = (PER_ROUND * THREADS * (THREADS + 1) / 2) as f64;
            let newest = windows.window_sum("winconc/adds", 1).expect("ticked");
            assert!(
                (newest - expect).abs() < 1e-9,
                "round {round}: newest delta {newest} != {expect}"
            );
            let weighted = windows.window_sum("winconc/weighted", 1).expect("ticked");
            assert!((weighted - expect_weighted).abs() < 1e-9);
            barrier.wait(); // release the next round
        }
    });
    sor_obs::set_enabled(false);

    // the 60-tick window covers all rounds: the total is exact too
    #[allow(clippy::cast_precision_loss)]
    // sor-check: allow(lossy-cast) — counts are far below 2^52
    let total = (THREADS * PER_ROUND * ROUNDS) as f64;
    assert_eq!(windows.window_sum("winconc/adds", 60), Some(total));
    let view = windows.rates("winconc/adds").expect("present");
    assert!((view.total - total).abs() < 1e-9);
    assert_eq!(windows.ticks(), ROUNDS);
}

#[test]
fn log_histogram_counts_exactly_under_concurrent_observe() {
    // LogHistogram is registry-independent (no global state, no lock()
    // needed) — recording is relaxed atomics, so counts stay exact.
    let h = LogHistogram::new();
    thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_ROUND {
                    #[allow(clippy::cast_precision_loss)]
                    // sor-check: allow(lossy-cast) — i < 2^11
                    h.observe((t * PER_ROUND + i + 1) as f64);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_ROUND);
    let p999 = h.quantile(0.999).expect("non-empty");
    #[allow(clippy::cast_precision_loss)]
    // sor-check: allow(lossy-cast) — counts are far below 2^52
    let max = (THREADS * PER_ROUND) as f64;
    assert!(p999 <= max * 2.0, "tail estimate stays within one bucket");
}

/// Derive a deterministic positive sample from (seed, index) without
/// pulling in rand: SplitMix64 over the pair, mapped into [1, 2^20).
fn sample(seed: u64, i: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    #[allow(clippy::cast_precision_loss)]
    // sor-check: allow(lossy-cast) — reduced below 2^20 first
    let v = (z % (1 << 20)) as f64;
    v + 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merged log-bucket percentile estimates are within one bucket of
    /// the exact sorted-sample quantile, for every standard quantile.
    #[test]
    fn merged_quantiles_within_one_bucket_of_exact(seed in 0u64..100_000, n in 2u64..400) {
        let values: Vec<f64> = (0..n).map(|i| sample(seed, i)).collect();
        // split across two histograms (alternating), then merge — the
        // mergeable property must not cost accuracy
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 { a.observe(*v) } else { b.observe(*v) }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), n);

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.5, 0.9, 0.99, 0.999] {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // sor-check: allow(lossy-cast) — n < 400, rank in [1, n]
            let rank = ((q * n as f64).ceil().max(1.0)) as usize;
            // sor-check: allow(panic-path) — rank is in [1, n] by construction
            let exact = sorted[rank.min(sorted.len()) - 1];
            let est = a.quantile(q).expect("non-empty");
            let exact_bucket = log_bucket_of(exact).expect("in range");
            let est_bucket = log_bucket_of(est).expect("in range");
            prop_assert!(
                est_bucket.abs_diff(exact_bucket) <= 1,
                "q={} exact={} (bucket {}) est={} (bucket {})",
                q, exact, exact_bucket, est, est_bucket
            );
        }
    }

    /// Quantiles are monotone in q, bounded by the extreme buckets.
    #[test]
    fn quantiles_are_monotone(seed in 0u64..100_000, n in 1u64..200) {
        let h = LogHistogram::new();
        for i in 0..n { h.observe(sample(seed, i)); }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q).expect("non-empty")).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", vals);
        }
    }
}
