//! TE schemes and the comparison harness (experiment E8's machinery).

use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_core::sample::{demand_pairs, sample_k};
use sor_core::SemiObliviousRouting;
use sor_flow::{max_concurrent_flow, Demand};
use sor_oblivious::routing::{fractional_loads, ObliviousRouting};
use sor_oblivious::{KspRouting, RaeckeRouting};

/// A routing scheme under comparison.
#[derive(Clone, Copy, Debug)]
pub enum Scheme {
    /// The paper/SMORE scheme: sample `s` paths per pair from a Räcke
    /// routing with `trees` trees, adapt rates to the demand.
    SemiOblivious {
        /// Paths per pair.
        s: usize,
        /// FRT trees in the Räcke mixture.
        trees: usize,
    },
    /// Adaptive KSP: install the `s` shortest (inverse-capacity) paths per
    /// pair, adapt rates — SMORE's main practical baseline.
    Ksp {
        /// Paths per pair.
        s: usize,
    },
    /// Pure oblivious Räcke: no demand-time adaptation at all.
    ObliviousRaecke {
        /// FRT trees in the mixture.
        trees: usize,
    },
    /// The offline multicommodity optimum (the denominator of every
    /// ratio).
    OptimalMcf,
}

impl Scheme {
    /// Table label.
    pub fn label(&self) -> String {
        match self {
            Scheme::SemiOblivious { s, .. } => format!("semi-oblivious(s={s})"),
            Scheme::Ksp { s } => format!("ksp(s={s})"),
            Scheme::ObliviousRaecke { .. } => "oblivious-raecke".to_string(),
            Scheme::OptimalMcf => "optimal".to_string(),
        }
    }
}

/// Result of one (scenario, demand, scheme) run.
#[derive(Clone, Debug)]
pub struct SchemeResult {
    /// Scheme label.
    pub name: String,
    /// Max link utilization achieved on the demand.
    pub mlu: f64,
    /// `mlu / OPT` where OPT is the MCF optimum's achievable value.
    pub ratio_vs_opt: f64,
    /// Installed paths per pair (max), 0 for schemes without installed
    /// systems.
    pub sparsity: usize,
}

/// Run one scheme on a demand. `seed` drives every random choice (Räcke
/// trees and sampling); `eps` the MWU solvers.
pub fn run_scheme(
    scenario: &Scenario,
    demand: &Demand,
    scheme: Scheme,
    seed: u64,
    eps: f64,
) -> SchemeResult {
    let g = &scenario.graph;
    let opt = max_concurrent_flow(g, demand, eps).congestion_upper;
    let (mlu, sparsity) = match scheme {
        Scheme::SemiOblivious { s, trees } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = RaeckeRouting::build(g.clone(), trees, &mut rng);
            let sampled = sample_k(&base, &demand_pairs(demand), s, &mut rng);
            let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
            (sor.congestion(demand, eps), sor.sparsity())
        }
        Scheme::Ksp { s } => {
            let ksp = KspRouting::inv_cap(g.clone(), s);
            let mut system = sor_core::PathSystem::new();
            for &(a, b) in &demand_pairs(demand) {
                for (p, _) in ksp.path_distribution(a, b).iter() {
                    system.insert(a, b, p.clone());
                }
            }
            let sor = SemiObliviousRouting::new(g.clone(), system);
            (sor.congestion(demand, eps), sor.sparsity())
        }
        Scheme::ObliviousRaecke { trees } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = RaeckeRouting::build(g.clone(), trees, &mut rng);
            (fractional_loads(&base, demand).congestion(g), 0)
        }
        Scheme::OptimalMcf => (opt, 0),
    };
    SchemeResult {
        name: scheme.label(),
        mlu,
        ratio_vs_opt: mlu / opt.max(1e-12),
        sparsity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::gravity_tm;

    #[test]
    fn ordering_on_abilene() {
        // The qualitative SMORE result: optimal ≤ semi-oblivious(4) ≲
        // oblivious, with semi-oblivious close to optimal.
        let sc = Scenario::abilene();
        let mut rng = StdRng::seed_from_u64(7);
        let tm = gravity_tm(&sc, 4.0, &mut rng);
        let opt = run_scheme(&sc, &tm, Scheme::OptimalMcf, 1, 0.1);
        let semi = run_scheme(&sc, &tm, Scheme::SemiOblivious { s: 4, trees: 8 }, 1, 0.1);
        let obl = run_scheme(&sc, &tm, Scheme::ObliviousRaecke { trees: 8 }, 1, 0.1);
        assert!((opt.ratio_vs_opt - 1.0).abs() < 1e-9);
        assert!(semi.ratio_vs_opt >= 1.0 - 0.15, "{}", semi.ratio_vs_opt);
        assert!(
            semi.ratio_vs_opt < 3.0,
            "semi-oblivious ratio {} too large on abilene",
            semi.ratio_vs_opt
        );
        assert!(
            semi.mlu <= obl.mlu * 1.05 + 1e-9,
            "adaptation should not lose to pure oblivious: {} vs {}",
            semi.mlu,
            obl.mlu
        );
        assert!(semi.sparsity <= 4);
    }

    #[test]
    fn ksp_runs_and_is_adaptive() {
        let sc = Scenario::b4();
        let mut rng = StdRng::seed_from_u64(3);
        let tm = gravity_tm(&sc, 3.0, &mut rng);
        let ksp = run_scheme(&sc, &tm, Scheme::Ksp { s: 3 }, 2, 0.1);
        assert!(ksp.ratio_vs_opt >= 1.0 - 0.15);
        assert!(ksp.ratio_vs_opt < 5.0, "{}", ksp.ratio_vs_opt);
        assert!(ksp.sparsity <= 3);
    }

    #[test]
    fn labels() {
        assert_eq!(
            Scheme::SemiOblivious { s: 4, trees: 8 }.label(),
            "semi-oblivious(s=4)"
        );
        assert_eq!(Scheme::Ksp { s: 2 }.label(), "ksp(s=2)");
    }
}
