//! # sor-te
//!
//! SMORE-style traffic engineering harness \[KYF+18\] — the practical
//! setting that motivated the paper and that its theorems finally justify.
//!
//! A *scenario* is a WAN topology plus the set of traffic endpoints; a
//! *traffic matrix* is a gravity-model demand over those endpoints. Each
//! *scheme* installs a candidate path system (or a full oblivious routing)
//! and routes the matrix; the headline metric is max link utilization
//! (MLU) relative to the multicommodity-flow optimum. The failure module
//! re-adapts sending rates on the surviving candidate paths — the
//! robustness story that makes semi-oblivious TE attractive in practice.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sor_te::{gravity_tm, run_scheme, Scenario, Scheme};
//!
//! let sc = Scenario::abilene();
//! let mut rng = StdRng::seed_from_u64(7);
//! let tm = gravity_tm(&sc, 3.0, &mut rng);
//! let semi = run_scheme(&sc, &tm, Scheme::SemiOblivious { s: 4, trees: 6 }, 1, 0.2);
//! assert!(semi.ratio_vs_opt < 2.0);
//! assert!(semi.sparsity <= 4);
//! ```

#![forbid(unsafe_code)]

pub mod churn;
pub mod failures;
pub mod scenario;
pub mod schemes;

pub use churn::{churn_experiment, online_simulation, ChurnResult, OnlineStep};
pub use failures::{emergency_path, failure_experiment, FailureResult};
pub use scenario::{gravity_tm, Scenario};
pub use schemes::{run_scheme, Scheme, SchemeResult};
