//! Path churn across traffic-matrix updates — SMORE's operational
//! argument for semi-oblivious TE.
//!
//! Installing a path means touching forwarding tables on every switch it
//! crosses; changing *rates* on installed paths is nearly free. A
//! re-solved MCF optimum changes its path set with every TM snapshot,
//! while a semi-oblivious system keeps its paths fixed forever and only
//! re-splits rates. This module quantifies that difference on a drifting
//! TM sequence.

use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_core::sample::{demand_pairs, sample_k};
use sor_core::SemiObliviousRouting;
use sor_flow::{max_concurrent_flow, Demand};
use sor_graph::{NodeId, Path};
use sor_oblivious::RaeckeRouting;
use std::collections::HashSet;

/// Result of the churn experiment over a TM sequence.
#[derive(Clone, Debug)]
pub struct ChurnResult {
    /// Mean MLU ratio of the semi-oblivious system vs per-step optimum.
    pub semi_mean_ratio: f64,
    /// Mean per-step path churn of the re-solved MCF optimum: Jaccard
    /// distance between consecutive support path sets (0 = stable,
    /// 1 = fully replaced).
    pub mcf_path_churn: f64,
    /// Semi-oblivious path churn — identically zero by construction
    /// (paths are installed once); kept explicit for the table.
    pub semi_path_churn: f64,
    /// Number of TM steps evaluated.
    pub steps: usize,
}

fn support_keys(
    paths: &[(usize, Path, f64)],
    demand: &Demand,
) -> HashSet<(NodeId, NodeId, Vec<u32>)> {
    let entries = demand.entries();
    paths
        .iter()
        .filter(|(_, _, w)| *w > 1e-6)
        .map(|(j, p, _)| {
            let (s, t, _) = entries[*j];
            (s, t, p.edges().iter().map(|e| e.0).collect())
        })
        .collect()
}

/// Run the churn experiment: a gravity base TM drifting for `steps` steps
/// with multiplicative `jitter`; the semi-oblivious side re-adapts rates
/// on one fixed `s`-sample, the optimum is re-solved per step.
#[allow(clippy::too_many_arguments)] // experiment knobs are individually meaningful
pub fn churn_experiment(
    scenario: &Scenario,
    base_tm: &Demand,
    steps: usize,
    jitter: f64,
    s: usize,
    trees: usize,
    seed: u64,
    eps: f64,
) -> ChurnResult {
    assert!(steps >= 2);
    let g = &scenario.graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = RaeckeRouting::build(g.clone(), trees, &mut rng);
    let sampled = sample_k(&base, &demand_pairs(base_tm), s, &mut rng);
    let sor = SemiObliviousRouting::new(g.clone(), sampled.system);

    let tms = sor_flow::demand::perturbed_sequence(base_tm, steps, jitter, &mut rng);
    let mut ratio_sum = 0.0;
    let mut churn_sum = 0.0;
    let mut prev_support: Option<HashSet<(NodeId, NodeId, Vec<u32>)>> = None;
    for tm in &tms {
        let opt = max_concurrent_flow(g, tm, eps);
        let semi = sor.congestion(tm, eps);
        ratio_sum += semi / opt.congestion_upper.max(1e-12);
        let support = support_keys(&opt.paths, tm);
        if let Some(prev) = &prev_support {
            let inter = prev.intersection(&support).count();
            let union = prev.union(&support).count();
            if union > 0 {
                churn_sum += 1.0 - inter as f64 / union as f64;
            }
        }
        prev_support = Some(support);
    }
    ChurnResult {
        semi_mean_ratio: ratio_sum / steps as f64,
        mcf_path_churn: churn_sum / (steps - 1) as f64,
        semi_path_churn: 0.0,
        steps,
    }
}

/// One step of the online simulation.
#[derive(Clone, Debug)]
pub struct OnlineStep {
    /// Step index.
    pub step: usize,
    /// Per-step optimum (MCF upper bound).
    pub opt: f64,
    /// Semi-oblivious MLU ratio after re-adapting rates to this TM.
    pub semi_ratio: f64,
    /// Static-oblivious MLU ratio (distribution fixed, no adaptation).
    pub oblivious_ratio: f64,
}

/// Simulate online operation over a drifting TM sequence: the
/// semi-oblivious controller re-optimizes rates each step on its fixed
/// installed paths; the oblivious baseline never reacts. Returns the
/// per-step ratio series (the time-series view behind E13's aggregate).
#[allow(clippy::too_many_arguments)] // experiment knobs are individually meaningful
pub fn online_simulation(
    scenario: &Scenario,
    base_tm: &Demand,
    steps: usize,
    jitter: f64,
    s: usize,
    trees: usize,
    seed: u64,
    eps: f64,
) -> Vec<OnlineStep> {
    let g = &scenario.graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = RaeckeRouting::build(g.clone(), trees, &mut rng);
    let sampled = sample_k(&base, &demand_pairs(base_tm), s, &mut rng);
    let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
    let tms = sor_flow::demand::perturbed_sequence(base_tm, steps, jitter, &mut rng);
    tms.iter()
        .enumerate()
        .map(|(i, tm)| {
            let opt = max_concurrent_flow(g, tm, eps).congestion_upper;
            let semi = sor.congestion(tm, eps);
            let obl = sor_oblivious::routing::fractional_loads(&base, tm).congestion(g);
            OnlineStep {
                step: i,
                opt,
                semi_ratio: semi / opt.max(1e-12),
                oblivious_ratio: obl / opt.max(1e-12),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::gravity_tm;

    #[test]
    fn online_series_adaptation_dominates() {
        let sc = Scenario::abilene();
        let mut rng = StdRng::seed_from_u64(4);
        let tm = gravity_tm(&sc, 3.0, &mut rng);
        let series = online_simulation(&sc, &tm, 5, 0.4, 4, 6, 9, 0.15);
        assert_eq!(series.len(), 5);
        let mean_semi: f64 = series.iter().map(|s| s.semi_ratio).sum::<f64>() / series.len() as f64;
        let mean_obl: f64 =
            series.iter().map(|s| s.oblivious_ratio).sum::<f64>() / series.len() as f64;
        assert!(
            mean_semi <= mean_obl + 1e-9,
            "re-adaptation ({mean_semi}) should beat static oblivious ({mean_obl})"
        );
        for s in &series {
            assert!(s.semi_ratio >= 1.0 - 0.2, "ratio {}", s.semi_ratio);
            assert!(s.opt > 0.0);
        }
    }

    #[test]
    fn churn_runs_and_shows_the_gap() {
        let sc = Scenario::abilene();
        let mut rng = StdRng::seed_from_u64(1);
        let tm = gravity_tm(&sc, 3.0, &mut rng);
        let res = churn_experiment(&sc, &tm, 4, 0.3, 4, 6, 2, 0.15);
        assert_eq!(res.steps, 4);
        assert_eq!(res.semi_path_churn, 0.0);
        assert!(
            res.mcf_path_churn > 0.0,
            "re-solved MCF should churn paths, got {}",
            res.mcf_path_churn
        );
        assert!(
            res.semi_mean_ratio < 2.0,
            "semi-oblivious tracked the drifting optimum poorly: {}",
            res.semi_mean_ratio
        );
        assert!(res.semi_mean_ratio >= 1.0 - 0.15);
    }
}
