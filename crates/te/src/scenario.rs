//! TE scenarios: topology + traffic endpoints + traffic-matrix generation.

use rand::Rng;
use sor_flow::{demand, Demand};
use sor_graph::{gen, Graph, NodeId};

/// A topology with designated traffic endpoints.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name for tables.
    pub name: &'static str,
    /// The network.
    pub graph: Graph,
    /// Vertices that source/sink traffic (all PoPs for WANs, leaves for
    /// fabrics).
    pub endpoints: Vec<NodeId>,
}

impl Scenario {
    /// The Abilene backbone (all 11 PoPs are endpoints).
    pub fn abilene() -> Self {
        let graph = gen::abilene();
        let endpoints = graph.nodes().collect();
        Scenario {
            name: "abilene",
            graph,
            endpoints,
        }
    }

    /// The B4-like topology (all 12 sites are endpoints).
    pub fn b4() -> Self {
        let graph = gen::b4();
        let endpoints = graph.nodes().collect();
        Scenario {
            name: "b4",
            graph,
            endpoints,
        }
    }

    /// The GEANT-like topology (all 22 nodes are endpoints).
    pub fn geant() -> Self {
        let graph = gen::geant();
        let endpoints = graph.nodes().collect();
        Scenario {
            name: "geant",
            graph,
            endpoints,
        }
    }

    /// The ATT-NA-like topology (all 25 PoPs are endpoints).
    pub fn att() -> Self {
        let graph = gen::att();
        let endpoints = graph.nodes().collect();
        Scenario {
            name: "att",
            graph,
            endpoints,
        }
    }

    /// A leaf–spine Clos fabric; only leaves are endpoints.
    pub fn clos(spines: usize, leaves: usize) -> Self {
        let graph = gen::clos(spines, leaves, 1.0);
        let endpoints = (0..leaves)
            .map(|i| gen::fattree::clos_leaf(spines, i))
            .collect();
        Scenario {
            name: "clos",
            graph,
            endpoints,
        }
    }

    /// All ordered endpoint pairs (the pair set schemes install paths
    /// for).
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut v = Vec::new();
        for &s in &self.endpoints {
            for &t in &self.endpoints {
                if s != t {
                    v.push((s, t));
                }
            }
        }
        v
    }
}

/// A gravity-model traffic matrix over the scenario's endpoints with
/// random masses in `[0.5, 1.5]`, scaled to `total` units.
pub fn gravity_tm<R: Rng>(scenario: &Scenario, total: f64, rng: &mut R) -> Demand {
    let masses: Vec<f64> = scenario
        .endpoints
        .iter()
        .map(|_| rng.gen_range(0.5..1.5))
        .collect();
    let tm = demand::gravity(&scenario.endpoints, &masses, total);
    sor_obs::debug!(
        "gravity TM for {}: {} endpoints, {} pairs, {total} units",
        scenario.name,
        scenario.endpoints.len(),
        tm.support_size()
    );
    tm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scenarios_are_connected_with_endpoints() {
        for sc in [
            Scenario::abilene(),
            Scenario::b4(),
            Scenario::geant(),
            Scenario::att(),
            Scenario::clos(3, 5),
        ] {
            assert!(
                sor_graph::is_connected(&sc.graph),
                "{} disconnected",
                sc.name
            );
            assert!(sc.endpoints.len() >= 2);
            assert_eq!(
                sc.pairs().len(),
                sc.endpoints.len() * (sc.endpoints.len() - 1)
            );
        }
    }

    #[test]
    fn gravity_tm_spans_endpoints() {
        let sc = Scenario::abilene();
        let mut rng = StdRng::seed_from_u64(1);
        let tm = gravity_tm(&sc, 5.0, &mut rng);
        assert!((tm.size() - 5.0).abs() < 1e-9);
        assert_eq!(tm.support_size(), 11 * 10);
    }

    #[test]
    fn clos_endpoints_are_leaves() {
        let sc = Scenario::clos(4, 6);
        for &e in &sc.endpoints {
            assert!(e.index() >= 4, "spine listed as endpoint");
        }
    }
}
