//! Failure robustness (experiment E9): the operational argument for
//! semi-oblivious TE — after a link failure, sending rates can be
//! re-optimized over the *surviving* pre-installed paths within seconds,
//! while a pure oblivious routing can only renormalize its fixed
//! distribution.

use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sor_core::sample::{demand_pairs, sample_k};
use sor_core::SemiObliviousRouting;
use sor_flow::{max_concurrent_flow, Demand, EdgeLoads};
use sor_graph::{bfs_path, connected_without, EdgeId, Graph, NodeId, Path};
use sor_oblivious::routing::ObliviousRouting;
use sor_oblivious::RaeckeRouting;

/// Outcome of one failure experiment.
#[derive(Clone, Debug)]
pub struct FailureResult {
    /// The failed edges (ids in the original graph).
    pub failed: Vec<EdgeId>,
    /// OPT congestion on the surviving graph (ratio denominator).
    pub opt_after: f64,
    /// Semi-oblivious MLU after re-adapting rates on surviving candidate
    /// paths.
    pub semi_mlu: f64,
    /// Oblivious MLU after merely renormalizing each pair's surviving
    /// distribution (no global re-optimization).
    pub oblivious_mlu: f64,
    /// Pairs whose candidate sets were completely destroyed and had to
    /// fall back to a surviving shortest path (counted honestly — a real
    /// deployment would install an emergency route).
    pub fallback_pairs: usize,
}

impl FailureResult {
    /// Semi-oblivious ratio vs post-failure OPT.
    pub fn semi_ratio(&self) -> f64 {
        self.semi_mlu / self.opt_after.max(1e-12)
    }

    /// Oblivious ratio vs post-failure OPT.
    pub fn oblivious_ratio(&self) -> f64 {
        self.oblivious_mlu / self.opt_after.max(1e-12)
    }
}

/// Emergency reroute for a pair whose entire candidate set a failure
/// destroyed: BFS shortest path on the survivor graph, re-traced onto
/// *original* edge ids avoiding `failed` (a real deployment would install
/// an emergency route the same way). Returns `None` when the failure
/// disconnects the pair. Shared by the failure replay here and the online
/// engine's degraded epochs (`sor-serve`).
pub fn emergency_path(
    g: &Graph,
    survivor: &Graph,
    failed: &[EdgeId],
    a: NodeId,
    b: NodeId,
) -> Option<Path> {
    let p = bfs_path(survivor, a, b)?;
    // Translate the survivor-graph path back to original edge ids by
    // re-tracing its node sequence on the original graph, avoiding
    // failed edges.
    let nodes = p.nodes().to_vec();
    let mut edges = Vec::with_capacity(nodes.len().saturating_sub(1));
    for w in nodes.windows(2) {
        let e = g
            .incident(w[0])
            .iter()
            .find(|&&(e, nb)| nb == w[1] && !failed.contains(&e))
            .map(|&(e, _)| e)
            // sor-check: allow(unwrap, panic-path) — survivor is a subgraph of g, so the edge exists
            .expect("survivor-graph edge exists in the original graph");
        edges.push(e);
    }
    // sor-check: allow(unwrap, panic-path) — nodes re-traced from a valid survivor path
    Some(Path::from_edges(g, nodes[0], edges).expect("re-traced path is valid"))
}

/// Run one failure experiment: install an `s`-sample of a Räcke routing,
/// fail `num_failures` random edges (retrying until the survivor graph is
/// connected), re-adapt, and compare against renormalized-oblivious and
/// post-failure OPT. Returns `None` if no connected failure set was found
/// in 100 attempts.
pub fn failure_experiment(
    scenario: &Scenario,
    demand: &Demand,
    s: usize,
    trees: usize,
    num_failures: usize,
    seed: u64,
    eps: f64,
) -> Option<FailureResult> {
    let _span = sor_obs::span("te/replay");
    sor_obs::counter_add!("te/failure_experiments");
    let g = &scenario.graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = RaeckeRouting::build(g.clone(), trees, &mut rng);
    let pairs = demand_pairs(demand);
    let sampled = sample_k(&base, &pairs, s, &mut rng);
    let sor = SemiObliviousRouting::new(g.clone(), sampled.system);

    // Pick a connected failure set.
    let failed: Vec<EdgeId> = 'search: {
        for _ in 0..100 {
            let mut f = Vec::new();
            while f.len() < num_failures {
                let e = EdgeId(rng.gen_range(0..EdgeId::from_usize(g.num_edges()).0));
                if !f.contains(&e) {
                    f.push(e);
                }
            }
            if connected_without(g, &f) {
                break 'search f;
            }
            sor_obs::debug!(
                "failure set of {num_failures} edges disconnects {}; retrying",
                scenario.name
            );
        }
        sor_obs::warn!(
            "no connected {num_failures}-edge failure set found for {} in 100 attempts",
            scenario.name
        );
        return None;
    };

    let survivor_graph = g.without_edges(&failed);
    let opt_after = max_concurrent_flow(&survivor_graph, demand, eps).congestion_upper;

    // Semi-oblivious: drop dead candidates, re-adapt; dead pairs fall back
    // to a surviving shortest path.
    let mut survived = sor.with_failures(&failed);
    let mut fallback_pairs = 0;
    for &(a, b) in &pairs {
        if !survived.system().covers(a, b) {
            fallback_pairs += 1;
            let mut sys = survived.system().clone();
            let orig = emergency_path(g, &survivor_graph, &failed, a, b)
                // sor-check: allow(unwrap) — invariant stated in the expect message
                .expect("failure set keeps the graph connected");
            sys.insert(a, b, orig);
            survived = SemiObliviousRouting::new(g.clone(), sys);
        }
    }
    if fallback_pairs > 0 {
        sor_obs::warn!(
            "{fallback_pairs} pair(s) lost every sampled candidate to the failure; \
             emergency shortest-path fallback installed"
        );
        sor_obs::count_usize("te/fallback_pairs", fallback_pairs);
    }
    let semi_mlu = survived.congestion(demand, eps);

    // Oblivious with per-pair renormalization over surviving paths.
    let mut loads = EdgeLoads::for_graph(g);
    for &(a, b, d) in demand.entries() {
        let dist = base.path_distribution(a, b);
        let surviving: Vec<_> = dist
            .iter()
            .filter(|(p, _)| !failed.iter().any(|&e| p.contains_edge(e)))
            .collect();
        if surviving.is_empty() {
            // same emergency fallback as the semi-oblivious side
            let orig = emergency_path(g, &survivor_graph, &failed, a, b)
                // sor-check: allow(unwrap) — invariant stated in the expect message
                .expect("failure set keeps the graph connected");
            loads.add_path(&orig, d);
            continue;
        }
        let total: f64 = surviving.iter().map(|(_, w)| w).sum();
        for (p, w) in surviving {
            loads.add_path(p, d * w / total);
        }
    }
    let oblivious_mlu = loads.congestion(g);

    Some(FailureResult {
        failed,
        opt_after,
        semi_mlu,
        oblivious_mlu,
        fallback_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::gravity_tm;

    #[test]
    fn failure_experiment_runs_and_is_sane() {
        let sc = Scenario::abilene();
        let mut rng = StdRng::seed_from_u64(1);
        let tm = gravity_tm(&sc, 3.0, &mut rng);
        let res = failure_experiment(&sc, &tm, 4, 6, 1, 11, 0.15).expect("connected failure");
        assert_eq!(res.failed.len(), 1);
        assert!(res.opt_after > 0.0);
        assert!(res.semi_mlu > 0.0 && res.semi_mlu.is_finite());
        assert!(res.oblivious_mlu > 0.0 && res.oblivious_mlu.is_finite());
        // Adaptation should not lose to static renormalization (allowing
        // solver slack).
        assert!(
            res.semi_ratio() <= res.oblivious_ratio() * 1.2 + 0.2,
            "semi {} vs oblivious {}",
            res.semi_ratio(),
            res.oblivious_ratio()
        );
    }

    #[test]
    fn more_failures_dont_break() {
        let sc = Scenario::geant();
        let mut rng = StdRng::seed_from_u64(2);
        let tm = gravity_tm(&sc, 2.0, &mut rng);
        let res = failure_experiment(&sc, &tm, 3, 5, 3, 5, 0.2).expect("connected failure");
        assert_eq!(res.failed.len(), 3);
        assert!(res.semi_ratio() >= 0.8);
    }
}
