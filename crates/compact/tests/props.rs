//! Property-based round-trip tests for the compact codec: on random
//! WAN-like graphs across sparsity levels, encoding a sampled path
//! system and decoding it back must reproduce the system *bit-exactly*
//! (same pairs, same vertex sequences, same slot order), and the size
//! accounting must stay internally consistent. A deep-hierarchy
//! adversarial case (a long path graph, the worst input for tree
//! embeddings) rides along as a plain test.
//!
//! Failing cases are recorded in `props.proptest-regressions` (one
//! deduplicated `cc <hash>` line per minimal counterexample) and re-run
//! before new cases.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sor_compact::CompactSystem;
use sor_core::sample::sample_k;
use sor_core::PathSystem;
use sor_graph::{gen, Graph, NodeId};
use sor_oblivious::{FrtTree, RaeckeRouting};

fn arb_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (2.5 * (n as f64).ln() / n as f64).min(0.9);
    gen::erdos_renyi_connected(n, p, &mut rng)
}

/// Sample a sparsity-`s` system over random pairs, exactly the shape
/// the serving engine caches.
fn sampled_system(
    g: &Graph,
    routing: &RaeckeRouting,
    num_pairs: usize,
    sparsity: usize,
    seed: u64,
) -> PathSystem {
    let n = g.num_nodes();
    let mut pair_rng = StdRng::seed_from_u64(seed ^ 0xab);
    // BTreeSet dedups: sample_k asserts its sparsity bound per *distinct*
    // pair, so a repeated draw must not double a pair's path budget.
    let pairs: Vec<(NodeId, NodeId)> = (0..num_pairs)
        .map(|_| {
            let s = pair_rng.gen_range(0..n);
            let mut t = pair_rng.gen_range(0..n - 1);
            if t >= s {
                t += 1;
            }
            (NodeId::from_usize(s), NodeId::from_usize(t))
        })
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    sample_k(routing, &pairs, sparsity, &mut rng).system
}

fn first_tree(routing: &RaeckeRouting) -> &FrtTree {
    routing
        .trees()
        .first()
        // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
        .expect("RaeckeRouting::build produces at least one tree")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode→decode is the identity on sampled systems, across graph
    /// shapes and sparsity levels 1..4.
    #[test]
    fn round_trip_bit_equality(
        seed in 0u64..200,
        n in 8usize..16,
        sparsity in 1usize..4,
        num_pairs in 2usize..6,
    ) {
        let g = arb_graph(n, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let routing = RaeckeRouting::build(g.clone(), 3, &mut rng);
        let sys = sampled_system(&g, &routing, num_pairs, sparsity, seed);
        let compact = CompactSystem::encode(&g, first_tree(&routing), &sys);
        let decoded = compact.decode(&g);
        prop_assert_eq!(&decoded, &sys, "decode diverged from source system");
        prop_assert_eq!(
            decoded.validate_detailed(&g, Some(sparsity)),
            sys.validate_detailed(&g, Some(sparsity))
        );
        // per-pair decode agrees with the full decode
        for (s, t, paths) in sys.pairs() {
            prop_assert_eq!(compact.decode_pair(&g, s, t), paths.to_vec());
        }
    }

    /// The accounting never lies: stats mirror the structure, and the
    /// explicit baseline is the true explicit size of the source.
    #[test]
    fn stats_track_structure(
        seed in 0u64..100,
        n in 8usize..14,
        sparsity in 1usize..3,
    ) {
        let g = arb_graph(n, seed ^ 0x5a);
        let mut rng = StdRng::seed_from_u64(seed);
        let routing = RaeckeRouting::build(g.clone(), 2, &mut rng);
        let sys = sampled_system(&g, &routing, 4, sparsity, seed);
        let compact = CompactSystem::encode(&g, first_tree(&routing), &sys);
        let stats = compact.stats();
        prop_assert_eq!(stats.n, g.num_nodes());
        prop_assert_eq!(stats.pairs, sys.num_pairs());
        prop_assert_eq!(stats.total_paths, sys.total_paths());
        prop_assert_eq!(stats.exceptions, compact.num_exceptions());
        let explicit: u64 = sys
            .pairs()
            .map(|(_, _, ps)| {
                2 * 32 + ps.iter().map(|p| 16 + p.hops() as u64 * 32).sum::<u64>()
            })
            .sum();
        prop_assert_eq!(stats.explicit_bits, explicit);
        prop_assert!(stats.compact_bits > 0);
    }
}

/// Adversarial deep hierarchy: on a long path graph the FRT tree is
/// forced to maximum depth and every route shares every intermediate
/// vertex — the worst case for first-writer-wins table entries. The
/// round trip must still be exact (exceptions absorb any conflicts).
#[test]
fn deep_hierarchy_path_graph_round_trips() {
    let g = gen::path_graph(24);
    let mut rng = StdRng::seed_from_u64(13);
    let routing = RaeckeRouting::build(g.clone(), 2, &mut rng);
    let tree = first_tree(&routing);
    // all-pairs in one direction: every prefix/suffix overlap occurs
    let mut sys = PathSystem::new();
    for s in 0..24u32 {
        for t in 0..24u32 {
            if s != t {
                sys.insert(NodeId(s), NodeId(t), tree.route(NodeId(s), NodeId(t)));
            }
        }
    }
    let compact = CompactSystem::encode(&g, tree, &sys);
    let decoded = compact.decode(&g);
    assert_eq!(decoded, sys, "deep-hierarchy decode diverged");
    // On a path graph all routes are forced, so the tables compress
    // massively: far fewer interval rows than explicit path entries.
    let stats = compact.stats();
    assert!(
        stats.bits_per_node() < stats.explicit_bits_per_node(),
        "compact ({:.1} b/n) must beat explicit ({:.1} b/n) on the path graph",
        stats.bits_per_node(),
        stats.explicit_bits_per_node()
    );
}
