//! `sor-compact`: o(n)-state compact routing tables.
//!
//! A [`sor_core::PathSystem`] materialized as explicit vertex lists
//! costs Θ(n·k·diameter) state per node — fine for experiments,
//! unshippable for a router. Räcke–Schmid ("Compact Oblivious Routing")
//! and Czerner–Räcke (weighted graphs) observe that routings built from
//! a hierarchical decomposition admit *tree-label* forwarding state:
//! give every vertex a DFS label from the FRT hierarchy, and a node can
//! forward toward "the subtree holding the destination" with one
//! interval-matched table entry instead of one entry per destination.
//!
//! This crate turns the sampled path systems the workspace already
//! builds into exactly that representation:
//!
//! * [`labels`] — deterministic DFS-interval labels over an
//!   [`sor_oblivious::FrtTree`] (u32-packed, `⌈log₂ n⌉` bits each),
//! * [`table`] — per-node next-hop tables mapping destination-label
//!   intervals to local out-edges, with exact bit accounting,
//! * [`codec`] — [`codec::CompactSystem`]: a *lossless, verified*
//!   re-encoding of a path system. Encoding greedily installs table
//!   entries, then decodes every pair back and demotes any path the
//!   tables cannot reproduce into an explicit exception list — so
//!   decoded routes bit-match the source system unconditionally, while
//!   the common case shares o(n)-bit tables across destinations,
//! * [`harness`] — the round-trip correctness harness: decoded system
//!   equals the explicit one (same vertex sequences), same
//!   `validate_detailed` verdict, bit-identical congestion under
//!   `route_fractional`.
//!
//! Why verify-and-except instead of trusting the tree? Because sampled
//! paths are *loop-erased* concatenations of FRT up/down paths
//! ([`sor_oblivious::FrtTree::route`]): the suffix of a path after an
//! intermediate node is not in general the path the tree would route
//! from that node, so a pure (node, destination-label) → out-edge
//! function cannot always reproduce the sample. The verify pass makes
//! the format correct by construction; the exception count is part of
//! the accounting and stays near zero in practice.

#![forbid(unsafe_code)]

pub mod codec;
pub mod harness;
pub mod labels;
pub mod table;

pub use codec::{CompactStats, CompactSystem};
pub use harness::{verify_round_trip, RoundTripReport};
pub use labels::LabelAssignment;
pub use table::{IntervalEntry, NextHopTable};
