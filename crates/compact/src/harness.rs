//! Round-trip correctness harness: proves a [`CompactSystem`] is a
//! faithful stand-in for the explicit [`PathSystem`] it encodes.
//!
//! Three checks, matching the guarantees the serving layer relies on:
//!
//! 1. **Structure** — the decoded system equals the source under
//!    `PathSystem::PartialEq` (same pairs, same vertex sequences, same
//!    slot order).
//! 2. **Verdict** — `validate_detailed` returns the identical result
//!    on both systems (same `Ok`/`Err` including the message).
//! 3. **Congestion** — `route_fractional` over the same demand produces
//!    bit-identical congestion on both systems. The MWU solver is
//!    deterministic in its inputs, so structural equality implies this;
//!    checking it end-to-end guards the whole pipeline, not just the
//!    codec.

use crate::codec::{CompactStats, CompactSystem};
use sor_core::{PathSystem, SemiObliviousRouting};
use sor_flow::Demand;
use sor_graph::Graph;
use sor_oblivious::FrtTree;

/// Outcome of one round-trip verification.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundTripReport {
    /// Decoded system equals the source system exactly.
    pub systems_equal: bool,
    /// `validate_detailed` verdicts agree (messages included).
    pub verdicts_equal: bool,
    /// Congestion of the explicit system under `route_fractional`.
    pub congestion_explicit: f64,
    /// Congestion of the decoded system under `route_fractional`.
    pub congestion_compact: f64,
    /// The two congestions are bit-identical (`f64::to_bits`).
    pub congestion_bits_equal: bool,
    /// Size accounting of the compact form.
    pub stats: CompactStats,
}

impl RoundTripReport {
    /// All three checks passed.
    pub fn ok(&self) -> bool {
        self.systems_equal && self.verdicts_equal && self.congestion_bits_equal
    }
}

/// Encode `system` against `tree`, decode it back, and certify the
/// round trip: structural equality, identical validation verdict, and
/// bit-identical `route_fractional` congestion on `demand`.
///
/// `sparsity_bound` is forwarded to `validate_detailed` on both sides;
/// `eps` is the MWU accuracy used for the congestion comparison.
pub fn verify_round_trip(
    g: &Graph,
    tree: &FrtTree,
    system: &PathSystem,
    demand: &Demand,
    sparsity_bound: Option<usize>,
    eps: f64,
) -> RoundTripReport {
    let compact = CompactSystem::encode(g, tree, system);
    let decoded = compact.decode(g);

    let systems_equal = decoded == *system;
    let verdicts_equal =
        decoded.validate_detailed(g, sparsity_bound) == system.validate_detailed(g, sparsity_bound);

    let explicit_sor = SemiObliviousRouting::new(g.clone(), system.clone());
    let decoded_sor = SemiObliviousRouting::new(g.clone(), decoded);
    let congestion_explicit = explicit_sor.congestion(demand, eps);
    let congestion_compact = decoded_sor.congestion(demand, eps);

    RoundTripReport {
        systems_equal,
        verdicts_equal,
        congestion_explicit,
        congestion_compact,
        congestion_bits_equal: congestion_explicit.to_bits() == congestion_compact.to_bits(),
        stats: compact.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_core::sample::{demand_pairs, sample_k};
    use sor_graph::gen;
    use sor_oblivious::RaeckeRouting;

    #[test]
    fn sampled_system_round_trips_with_equal_congestion() {
        let g = gen::random_regular(16, 4, &mut StdRng::seed_from_u64(2));
        let mut rng = StdRng::seed_from_u64(2);
        let routing = RaeckeRouting::build(g.clone(), 4, &mut rng);
        let demand = sor_flow::demand::random_permutation(&g, &mut StdRng::seed_from_u64(3));
        let sampled = sample_k(&routing, &demand_pairs(&demand), 3, &mut rng);
        let tree = routing
            .trees()
            .first()
            // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
            .expect("RaeckeRouting::build produces at least one tree");
        let report = verify_round_trip(&g, tree, &sampled.system, &demand, Some(3), 0.2);
        assert!(report.systems_equal, "decode diverged from source");
        assert!(report.verdicts_equal, "validation verdicts diverged");
        assert!(
            report.congestion_bits_equal,
            "congestion not bit-identical: {} vs {}",
            report.congestion_explicit, report.congestion_compact
        );
        assert!(report.ok());
        assert!(report.stats.compact_bits > 0);
    }

    #[test]
    fn compact_beats_explicit_on_wan() {
        // The acceptance-criteria shape: on Abilene, compact tables
        // must measure strictly fewer bits per node than the explicit
        // encoding at equal (bit-identical) congestion.
        let g = gen::abilene();
        let mut rng = StdRng::seed_from_u64(6);
        let routing = RaeckeRouting::build(g.clone(), 4, &mut rng);
        let demand = sor_flow::demand::random_permutation(&g, &mut StdRng::seed_from_u64(7));
        let sampled = sample_k(&routing, &demand_pairs(&demand), 3, &mut rng);
        let tree = routing
            .trees()
            .first()
            // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
            .expect("RaeckeRouting::build produces at least one tree");
        let report = verify_round_trip(&g, tree, &sampled.system, &demand, Some(3), 0.2);
        assert!(report.ok());
        assert!(
            report.stats.bits_per_node() < report.stats.explicit_bits_per_node(),
            "compact ({:.1} b/n) must beat explicit ({:.1} b/n)",
            report.stats.bits_per_node(),
            report.stats.explicit_bits_per_node()
        );
    }
}
