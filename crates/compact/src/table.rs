//! Per-node next-hop tables: destination-label intervals → out-edges.
//!
//! A table holds sorted, disjoint label intervals; a lookup binary
//! searches for the interval containing the destination label and
//! returns the *local* out-edge index (a position into
//! `Graph::incident(u)`, which needs only `⌈log₂ Δ⌉` bits rather than a
//! global edge id). Runs of labels that forward the same way — typical
//! when the labels come from a DFS over the routing hierarchy — cost
//! one entry regardless of how many destinations they cover.
//!
//! Interval construction merges *any* two label entries with the same
//! out-edge, even across gaps. Labels inside a gap were never installed
//! by the encoder, so either they are never looked up (the pair is not
//! in the system) or the codec's verify pass notices the decoded route
//! diverging and demotes that pair to an explicit exception. The merge
//! is therefore free compression, not a correctness gamble.

use std::collections::BTreeMap;

/// One table row: destination labels in `lo..=hi` leave via the
/// `out`-th incident edge of the owning vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalEntry {
    /// Smallest destination label covered (inclusive).
    pub lo: u32,
    /// Largest destination label covered (inclusive).
    pub hi: u32,
    /// Local out-edge index into the owning vertex's incident list.
    pub out: u32,
}

/// A bit-packed next-hop table for one (path-slot, vertex) pair.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NextHopTable {
    entries: Vec<IntervalEntry>,
}

impl NextHopTable {
    /// Compress a full label → out-edge map into interval form. Adjacent
    /// map entries (in label order) sharing the same out-edge collapse
    /// into one interval; see the module docs for why gap-spanning
    /// merges are sound.
    pub fn from_map(map: &BTreeMap<u32, u32>) -> Self {
        let mut entries: Vec<IntervalEntry> = Vec::new();
        for (&label, &out) in map {
            match entries.last_mut() {
                Some(last) if last.out == out => last.hi = label,
                _ => entries.push(IntervalEntry {
                    lo: label,
                    hi: label,
                    out,
                }),
            }
        }
        NextHopTable { entries }
    }

    /// The out-edge index for `label`, if some interval covers it.
    pub fn lookup(&self, label: u32) -> Option<u32> {
        let i = self.entries.partition_point(|e| e.hi < label);
        self.entries
            .get(i)
            .filter(|e| e.lo <= label && label <= e.hi)
            .map(|e| e.out)
    }

    /// Number of interval rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The interval rows, sorted by label.
    pub fn entries(&self) -> &[IntervalEntry] {
        &self.entries
    }

    /// Exact serialized size: a 16-bit row count plus, per row, two
    /// labels and one local out-edge index.
    pub fn bits(&self, label_bits: u32, edge_bits: u32) -> u64 {
        16 + self.entries.len() as u64 * u64::from(2 * label_bits + edge_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_of(pairs: &[(u32, u32)]) -> BTreeMap<u32, u32> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn merges_runs_and_gaps_with_same_out() {
        let t = NextHopTable::from_map(&map_of(&[(0, 7), (1, 7), (2, 7), (9, 7)]));
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.entries()[0],
            IntervalEntry {
                lo: 0,
                hi: 9,
                out: 7
            }
        );
        // gap labels resolve to the merged out — verify pass territory
        assert_eq!(t.lookup(5), Some(7));
    }

    #[test]
    fn splits_on_out_change() {
        let t = NextHopTable::from_map(&map_of(&[(0, 1), (1, 1), (2, 3), (3, 1)]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(0), Some(1));
        assert_eq!(t.lookup(1), Some(1));
        assert_eq!(t.lookup(2), Some(3));
        assert_eq!(t.lookup(3), Some(1));
        assert_eq!(t.lookup(4), None);
    }

    #[test]
    fn lookup_outside_any_interval_misses() {
        let t = NextHopTable::from_map(&map_of(&[(4, 0), (5, 0), (9, 2)]));
        assert_eq!(t.lookup(3), None);
        assert_eq!(t.lookup(4), Some(0));
        assert_eq!(t.lookup(7), None);
        assert_eq!(t.lookup(9), Some(2));
        assert_eq!(t.lookup(10), None);
    }

    #[test]
    fn empty_table() {
        let t = NextHopTable::from_map(&BTreeMap::new());
        assert!(t.is_empty());
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.bits(4, 2), 16);
    }

    #[test]
    fn bit_accounting() {
        let t = NextHopTable::from_map(&map_of(&[(0, 1), (2, 3)]));
        // 16-bit header + 2 rows × (2·4 + 2) bits
        assert_eq!(t.bits(4, 2), 16 + 2 * 10);
    }
}
