//! DFS-interval vertex labels derived from an FRT decomposition tree.
//!
//! The compact tables key forwarding decisions on *destination labels*
//! rather than destination identities. Labels come from a preorder DFS
//! over the hierarchy: vertices that share a cluster deep in the tree
//! receive consecutive labels, so a node whose sampled paths treat a
//! whole subtree the same way can cover it with one label interval
//! instead of one entry per destination. The assignment is a pure
//! function of the tree (children visited in build order), so every
//! replica of a snapshot derives the identical labeling.

use sor_graph::NodeId;
use sor_oblivious::FrtTree;

/// A bijection between graph vertices and `0..n` DFS labels, plus the
/// bit width needed to store one label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelAssignment {
    /// `label_of[v.index()]` is the DFS label of vertex `v`.
    label_of: Vec<u32>,
    /// `node_of[label]` inverts [`Self::label`].
    node_of: Vec<NodeId>,
    /// Bits needed per label: `⌈log₂ n⌉`, at least 1.
    label_bits: u32,
}

impl LabelAssignment {
    /// Assign labels by preorder DFS over `tree` (children in build
    /// order). Leaves of an FRT tree are singleton clusters, so each
    /// leaf visit emits exactly one vertex; the root covers all of them.
    pub fn from_tree(tree: &FrtTree) -> Self {
        let n = tree.nodes()[0].vertices.len();
        let mut label_of = vec![u32::MAX; n];
        let mut node_of = Vec::with_capacity(n);
        // Iterative preorder: push children reversed so the first-built
        // child is visited first.
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = &tree.nodes()[i];
            if node.children.is_empty() {
                for &v in &node.vertices {
                    let label = u32::try_from(node_of.len())
                        // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
                        .expect("node count fits u32 (NodeId is u32)");
                    label_of[v.index()] = label;
                    node_of.push(v);
                }
            } else {
                stack.extend(node.children.iter().rev());
            }
        }
        debug_assert!(label_of.iter().all(|&l| l != u32::MAX));
        LabelAssignment {
            label_of,
            node_of,
            label_bits: bits_for(n),
        }
    }

    /// The DFS label of vertex `v`.
    pub fn label(&self, v: NodeId) -> u32 {
        self.label_of[v.index()]
    }

    /// The vertex carrying `label`.
    pub fn node(&self, label: u32) -> NodeId {
        self.node_of[label as usize]
    }

    /// Number of labeled vertices.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Whether the assignment is empty (it never is for a built tree).
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Bits per stored label: `⌈log₂ n⌉`, at least 1.
    pub fn label_bits(&self) -> u32 {
        self.label_bits
    }

    /// Total bits to ship the label map itself (one label per vertex).
    pub fn map_bits(&self) -> u64 {
        self.node_of.len() as u64 * u64::from(self.label_bits)
    }
}

/// `⌈log₂ count⌉` clamped below by 1 (a 1-vertex graph still needs a
/// nonzero field width).
pub(crate) fn bits_for(count: usize) -> u32 {
    let mut bits = 0u32;
    while (1usize << bits) < count {
        bits += 1;
    }
    bits.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::{gen, Graph};

    fn tree_for(g: &Graph, seed: u64) -> FrtTree {
        FrtTree::build(g, &g.unit_lengths(), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn labels_are_a_bijection() {
        let g = gen::grid(4, 4);
        let labels = LabelAssignment::from_tree(&tree_for(&g, 3));
        assert_eq!(labels.len(), 16);
        for v in g.nodes() {
            assert_eq!(labels.node(labels.label(v)), v);
        }
        let mut seen: Vec<u32> = g.nodes().map(|v| labels.label(v)).collect();
        seen.sort_unstable();
        let want: Vec<u32> = (0..16).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn sibling_leaves_get_consecutive_labels() {
        // Vertices under the same deepest internal node must be
        // label-adjacent — that is the whole point of DFS labels.
        let g = gen::grid(3, 5);
        let tree = tree_for(&g, 9);
        let labels = LabelAssignment::from_tree(&tree);
        for node in tree.nodes() {
            let mut ls: Vec<u32> = node.vertices.iter().map(|&v| labels.label(v)).collect();
            ls.sort_unstable();
            for w in ls.windows(2) {
                assert_eq!(w[1], w[0] + 1, "cluster labels not contiguous");
            }
        }
    }

    #[test]
    fn bit_widths() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(17), 5);
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::new(1);
        let labels = LabelAssignment::from_tree(&tree_for(&g, 0));
        assert_eq!(labels.len(), 1);
        assert_eq!(labels.label_bits(), 1);
        assert_eq!(labels.map_bits(), 1);
    }
}
