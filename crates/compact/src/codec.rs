//! The compact codec: a verified lossless re-encoding of a
//! [`PathSystem`] into label-interval next-hop tables.
//!
//! Encoding installs, for every sampled path, a (vertex,
//! destination-label) → out-edge fact into a per-slot table (slot `k` =
//! the `k`-th candidate path of a pair, so the `s` candidates of a
//! sparsity-`s` system never collide with each other). Installation is
//! first-writer-wins: when two pairs disagree about how a shared vertex
//! forwards toward the same destination, the earlier pair keeps the
//! entry. A decode-verify pass then replays every pair through the
//! finished tables and demotes any path the tables fail to reproduce —
//! disagreements, loop-erasure artifacts, gap-merge collisions — to an
//! explicit per-pair exception. The result decodes *bit-identically* to
//! the source system by construction, and the exception count is an
//! honest part of the size accounting rather than a correctness caveat.

use crate::labels::{bits_for, LabelAssignment};
use crate::table::NextHopTable;
use sor_core::PathSystem;
use sor_graph::{EdgeId, Graph, NodeId, Path};
use sor_oblivious::FrtTree;
use std::collections::BTreeMap;

/// A path system re-encoded as DFS labels + per-node next-hop tables +
/// verified exceptions. Decoding reproduces the source system exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct CompactSystem {
    labels: LabelAssignment,
    /// `slots[k][v.index()]` forwards slot-`k` paths out of vertex `v`.
    slots: Vec<Vec<NextHopTable>>,
    /// `(s, t)` → number of candidate paths (slot count) for the pair.
    roster: BTreeMap<(u32, u32), u8>,
    /// `(slot, s, t)` → explicit edge list for paths the tables cannot
    /// reproduce. Populated by the encode-time verify pass.
    exceptions: BTreeMap<(u8, u32, u32), Vec<EdgeId>>,
    /// Bits per local out-edge index: `⌈log₂ Δ⌉`, at least 1.
    edge_bits: u32,
    /// Size of the source system under the explicit encoding, for
    /// honest side-by-side accounting (computed once at encode time).
    explicit_bits: u64,
}

/// Exact size accounting for one [`CompactSystem`] next to the explicit
/// encoding of the same path system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactStats {
    /// Number of graph vertices.
    pub n: usize,
    /// Covered ordered pairs.
    pub pairs: usize,
    /// Total candidate paths across all pairs.
    pub total_paths: usize,
    /// Interval rows summed over every non-empty table.
    pub table_entries: usize,
    /// Paths stored as explicit exceptions (verify-pass demotions).
    pub exceptions: usize,
    /// Bits per destination label.
    pub label_bits: u32,
    /// Bits per local out-edge index.
    pub edge_bits: u32,
    /// Total bits of the compact form (labels + tables + roster +
    /// exceptions).
    pub compact_bits: u64,
    /// Total bits of the explicit form (endpoints + per-path edge
    /// lists at 32 bits per edge id).
    pub explicit_bits: u64,
}

impl CompactStats {
    /// Compact bits divided by vertex count — the headline o(n) number.
    pub fn bits_per_node(&self) -> f64 {
        self.compact_bits as f64 / self.n as f64
    }

    /// Explicit bits divided by vertex count.
    pub fn explicit_bits_per_node(&self) -> f64 {
        self.explicit_bits as f64 / self.n as f64
    }

    /// Compression ratio `compact / explicit` (< 1 means compact wins).
    pub fn ratio(&self) -> f64 {
        self.compact_bits as f64 / self.explicit_bits as f64
    }
}

impl CompactSystem {
    /// Re-encode `system` against the hierarchy `tree` (labels) and the
    /// graph `g` (out-edge indices). Every path of `system` is either
    /// captured by the tables or demoted to an exception; decoding is
    /// exact either way.
    pub fn encode(g: &Graph, tree: &FrtTree, system: &PathSystem) -> Self {
        let labels = LabelAssignment::from_tree(tree);
        let n = g.num_nodes();
        let sparsity = system.sparsity();

        // Pass 1: first-writer-wins label→out maps, one per (slot, vertex).
        let mut maps: Vec<Vec<BTreeMap<u32, u32>>> = vec![vec![BTreeMap::new(); n]; sparsity];
        let mut roster: BTreeMap<(u32, u32), u8> = BTreeMap::new();
        let mut explicit_bits: u64 = 0;
        for (s, t, paths) in system.pairs() {
            let count = u8::try_from(paths.len())
                // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
                .expect("sparsity ≤ 255 (sampled systems are s-sparse for small s)");
            roster.insert((s.0, t.0), count);
            explicit_bits += 2 * 32;
            let dest = labels.label(t);
            for (slot, p) in paths.iter().enumerate() {
                explicit_bits += 16 + p.hops() as u64 * 32;
                for (i, &e) in p.edges().iter().enumerate() {
                    let u = p.nodes()[i];
                    let next = p.nodes()[i + 1];
                    let out = local_out(g, u, e, next)
                        // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
                        .expect("path edge is incident to its own vertex");
                    maps[slot][u.index()].entry(dest).or_insert(out);
                }
            }
        }
        let slots: Vec<Vec<NextHopTable>> = maps
            .iter()
            .map(|per_v| per_v.iter().map(NextHopTable::from_map).collect())
            .collect();

        // Pass 2: verify. Any path the tables fail to replay becomes an
        // explicit exception, making decode exact unconditionally.
        let max_degree = g.nodes().map(|v| g.incident(v).len()).max().unwrap_or(1);
        let mut out = CompactSystem {
            labels,
            slots,
            roster,
            exceptions: BTreeMap::new(),
            edge_bits: bits_for(max_degree),
            explicit_bits,
        };
        for (s, t, paths) in system.pairs() {
            for (slot, p) in paths.iter().enumerate() {
                let slot_id = u8::try_from(slot)
                    // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
                    .expect("slot < sparsity ≤ 255");
                let replayed = out.walk(g, slot, s, t);
                if replayed.as_deref() != Some(p.edges()) {
                    let mut exc = Vec::with_capacity(p.edges().len());
                    exc.extend_from_slice(p.edges());
                    out.exceptions.insert((slot_id, s.0, t.0), exc);
                }
            }
        }
        out
    }

    /// Replay the slot-`slot` route `s → t` through the tables. `None`
    /// on a table miss, an out-of-range out-edge, or a walk that fails
    /// to reach `t` within `n` steps.
    fn walk(&self, g: &Graph, slot: usize, s: NodeId, t: NodeId) -> Option<Vec<EdgeId>> {
        let tables = self.slots.get(slot)?;
        let dest = self.labels.label(t);
        let mut cur = s;
        // pre-sized to the walk's own step cap: a replayed simple path
        // never exceeds n edges
        let mut edges = Vec::with_capacity(g.num_nodes());
        while cur != t {
            if edges.len() >= g.num_nodes() {
                return None;
            }
            let out = tables.get(cur.index())?.lookup(dest)?;
            let &(e, nb) = g.incident(cur).get(out as usize)?;
            edges.push(e);
            cur = nb;
        }
        Some(edges)
    }

    /// Decode the candidate paths of one pair (empty if the pair is not
    /// covered). Paths come back in the source system's slot order.
    pub fn decode_pair(&self, g: &Graph, s: NodeId, t: NodeId) -> Vec<Path> {
        let Some(&count) = self.roster.get(&(s.0, t.0)) else {
            return Vec::new();
        };
        (0..count)
            .map(|slot| {
                let edges = match self.exceptions.get(&(slot, s.0, t.0)) {
                    Some(exc) => exc.clone(),
                    None => self
                        .walk(g, usize::from(slot), s, t)
                        // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
                        .expect("non-exception pairs replay exactly (verified at encode)"),
                };
                Path::from_edges(g, s, edges)
                    // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
                    .expect("replayed edges form the original simple path")
            })
            .collect()
    }

    /// Decode the full system. Bit-identical to the encode input: same
    /// pairs, same paths, same slot order (certified by the harness).
    pub fn decode(&self, g: &Graph) -> PathSystem {
        let mut out = PathSystem::new();
        for &(s, t) in self.roster.keys() {
            for p in self.decode_pair(g, NodeId(s), NodeId(t)) {
                out.insert(NodeId(s), NodeId(t), p);
            }
        }
        out
    }

    /// The label assignment the tables key on.
    pub fn labels(&self) -> &LabelAssignment {
        &self.labels
    }

    /// Number of verify-pass exceptions (paths stored explicitly).
    pub fn num_exceptions(&self) -> usize {
        self.exceptions.len()
    }

    /// Interval rows summed over every table.
    pub fn table_entries(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|per_v| per_v.iter().map(NextHopTable::len))
            .sum()
    }

    /// Compact bits divided by vertex count.
    pub fn bits_per_node(&self) -> f64 {
        self.stats().bits_per_node()
    }

    /// Full size accounting next to the explicit encoding.
    pub fn stats(&self) -> CompactStats {
        let label_bits = self.labels.label_bits();
        // Label map: one label per vertex.
        let mut compact_bits = self.labels.map_bits();
        // Tables: a 16-bit header + rows, only for non-empty tables.
        for per_v in &self.slots {
            for t in per_v {
                if !t.is_empty() {
                    compact_bits += t.bits(label_bits, self.edge_bits);
                }
            }
        }
        // Roster: endpoints as labels + an 8-bit slot count per pair.
        compact_bits += self.roster.len() as u64 * (2 * u64::from(label_bits) + 8);
        // Exceptions: slot byte + endpoints + 16-bit length + edge ids.
        let mut total_paths = 0usize;
        for &count in self.roster.values() {
            total_paths += usize::from(count);
        }
        for edges in self.exceptions.values() {
            compact_bits += 8 + 2 * u64::from(label_bits) + 16 + edges.len() as u64 * 32;
        }
        CompactStats {
            n: self.labels.len(),
            pairs: self.roster.len(),
            total_paths,
            table_entries: self.table_entries(),
            exceptions: self.exceptions.len(),
            label_bits,
            edge_bits: self.edge_bits,
            compact_bits,
            explicit_bits: self.explicit_bits,
        }
    }
}

/// Position of edge `e` (toward `next`) in `g.incident(u)`.
fn local_out(g: &Graph, u: NodeId, e: EdgeId, next: NodeId) -> Option<u32> {
    g.incident(u)
        .iter()
        .position(|&(ie, nb)| ie == e && nb == next)
        .and_then(|pos| u32::try_from(pos).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::gen;

    /// Sample a small system by routing a few pairs through the tree
    /// itself — the same shape the samplers produce.
    fn tree_system(_g: &Graph, tree: &FrtTree, pairs: &[(u32, u32)]) -> PathSystem {
        let mut sys = PathSystem::new();
        for &(s, t) in pairs {
            let (s, t) = (NodeId(s), NodeId(t));
            sys.insert(s, t, tree.route(s, t));
        }
        sys
    }

    #[test]
    fn round_trip_is_exact_on_grid() {
        let g = gen::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let tree = FrtTree::build(&g, &g.unit_lengths(), &mut rng);
        let pairs: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i * 7 + 3) % 16)).collect();
        let sys = tree_system(&g, &tree, &pairs);
        let compact = CompactSystem::encode(&g, &tree, &sys);
        let decoded = compact.decode(&g);
        assert_eq!(decoded, sys, "decode must bit-match the source system");
        assert_eq!(
            decoded.validate_detailed(&g, Some(1)),
            sys.validate_detailed(&g, Some(1))
        );
    }

    #[test]
    fn multi_slot_pairs_round_trip() {
        let g = gen::cycle_graph(8);
        let mut rng = StdRng::seed_from_u64(7);
        let t1 = FrtTree::build(&g, &g.unit_lengths(), &mut rng);
        let t2 = FrtTree::build(&g, &g.unit_lengths(), &mut rng);
        let mut sys = PathSystem::new();
        for (s, t) in [(0u32, 4u32), (1, 5), (2, 7)] {
            let (s, t) = (NodeId(s), NodeId(t));
            sys.insert(s, t, t1.route(s, t));
            sys.insert(s, t, t2.route(s, t));
        }
        let compact = CompactSystem::encode(&g, &t1, &sys);
        assert_eq!(compact.decode(&g), sys);
        for (s, t, paths) in sys.pairs() {
            assert_eq!(compact.decode_pair(&g, s, t), paths.to_vec());
        }
    }

    #[test]
    fn conflicting_paths_become_exceptions_not_corruption() {
        // Two pairs sharing a vertex but diverging toward the same
        // destination-side label force first-writer-wins conflicts; the
        // verify pass must keep decode exact regardless.
        let g = gen::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let tree = FrtTree::build(&g, &g.unit_lengths(), &mut rng);
        let mut sys = PathSystem::new();
        for s in 0..9u32 {
            for t in 0..9u32 {
                if s != t {
                    sys.insert(NodeId(s), NodeId(t), tree.route(NodeId(s), NodeId(t)));
                }
            }
        }
        let compact = CompactSystem::encode(&g, &tree, &sys);
        assert_eq!(compact.decode(&g), sys);
    }

    #[test]
    fn uncovered_pair_decodes_empty() {
        let g = gen::cycle_graph(6);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = FrtTree::build(&g, &g.unit_lengths(), &mut rng);
        let sys = tree_system(&g, &tree, &[(0, 3)]);
        let compact = CompactSystem::encode(&g, &tree, &sys);
        assert!(compact.decode_pair(&g, NodeId(1), NodeId(4)).is_empty());
    }

    #[test]
    fn stats_are_consistent() {
        let g = gen::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let tree = FrtTree::build(&g, &g.unit_lengths(), &mut rng);
        let pairs: Vec<(u32, u32)> = (0..16u32)
            .map(|i| (i, 15 - i))
            .filter(|&(s, t)| s != t)
            .collect();
        let sys = tree_system(&g, &tree, &pairs);
        let compact = CompactSystem::encode(&g, &tree, &sys);
        let stats = compact.stats();
        assert_eq!(stats.n, 16);
        assert_eq!(stats.pairs, sys.num_pairs());
        assert_eq!(stats.total_paths, sys.total_paths());
        assert_eq!(stats.table_entries, compact.table_entries());
        assert_eq!(stats.exceptions, compact.num_exceptions());
        assert!(stats.compact_bits > 0);
        assert!(stats.explicit_bits > 0);
        assert!((stats.bits_per_node() - stats.compact_bits as f64 / 16.0).abs() < 1e-12);
        assert!(stats.ratio() > 0.0);
    }
}
