//! # sor-hop
//!
//! Hop-constrained oblivious routing — the substrate Section 7 consumes as
//! a black box (\[GHZ21\], Theorem 7.1: for every hop bound `h` there is an
//! oblivious routing whose paths have `h·polylog` hops while its congestion
//! is within polylog of the best `h`-hop-bounded routing).
//!
//! ## Substitution note (documented in DESIGN.md)
//!
//! The genuine \[GHZ21\] construction (hop-constrained expander
//! decompositions) is a large standalone project. This crate implements a
//! simulation with the same *interface guarantees* the paper uses:
//!
//! * **hard hop stretch** — every path in the `(s, t)` distribution has at
//!   most `stretch · max(h, hopdist(s, t))` hops, enforced by construction;
//! * **congestion spreading** — candidate paths come from a Räcke-style
//!   mixture of FRT trees built on the *hop metric* with multiplicative
//!   congestion feedback, so load spreads like the congestion-only
//!   routing; tree routes that violate the hop cap fall back to a
//!   congestion-penalized near-hop-shortest path (which always satisfies
//!   the cap).
//!
//! The congestion approximation is *measured* (experiment E6), not proven.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sor_graph::{gen, NodeId};
//! use sor_hop::{dist_dilation, HopRouting};
//! use sor_oblivious::routing::ObliviousRouting;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let r = HopRouting::build(gen::grid(4, 4), 2, 4, &mut rng);
//! let dist = r.path_distribution(NodeId(0), NodeId(15));
//! // hard guarantee: dilation ≤ stretch · max(h, hopdist)
//! assert!(dist_dilation(&dist) <= r.hop_cap(NodeId(0), NodeId(15)));
//! ```

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use rand::Rng;
use sor_graph::traversal::all_pairs_hops;
use sor_graph::{dijkstra, Graph, NodeId, Path};
use sor_oblivious::frt::FrtTree;
use sor_oblivious::routing::{ObliviousRouting, PathDist};
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum hop length over the support of a path distribution.
pub fn dist_dilation(dist: &PathDist) -> usize {
    dist.iter().map(|(p, _)| p.hops()).max().unwrap_or(0)
}

/// A hop-constrained oblivious routing with hard hop-stretch guarantee.
pub struct HopRouting {
    g: Graph,
    trees: Vec<FrtTree>,
    /// Fallback near-hop-shortest lengths (hop metric + bounded congestion
    /// penalty), fixed at construction.
    fallback_lengths: Vec<f64>,
    /// Target hop bound `h`.
    h: usize,
    /// Hop-stretch factor: every returned path has
    /// ≤ `stretch · max(h, hopdist(s,t))` hops.
    stretch: usize,
    hop_dists: Vec<Vec<u32>>,
    cache: Mutex<HashMap<(NodeId, NodeId), Arc<PathDist>>>,
}

impl HopRouting {
    /// Build a hop-constrained routing for hop bound `h` from `num_trees`
    /// trees with hop-stretch 4.
    pub fn build<R: Rng + ?Sized>(g: Graph, h: usize, num_trees: usize, rng: &mut R) -> Self {
        Self::with_stretch(g, h, num_trees, 4, rng)
    }

    /// Build with an explicit hop-stretch factor (≥ 2; smaller stretch
    /// leaves less room for congestion spreading).
    pub fn with_stretch<R: Rng + ?Sized>(
        g: Graph,
        h: usize,
        num_trees: usize,
        stretch: usize,
        rng: &mut R,
    ) -> Self {
        assert!(h >= 1 && num_trees >= 1 && stretch >= 2);
        let m = g.num_edges();
        let hop_dists = all_pairs_hops(&g);
        // Räcke loop on the hop metric: lengths stay within [1, 1.5] per
        // edge so every shortest path is within 1.5× of hop-shortest,
        // while the penalty still steers trees away from loaded edges.
        const MU: f64 = 0.5;
        let mut load = vec![0.0f64; m];
        let mut trees = Vec::with_capacity(num_trees);
        let mut last_lengths = vec![1.0; m];
        for _ in 0..num_trees {
            let max_load = load.iter().copied().fold(0.0, f64::max).max(1.0);
            let lengths: Vec<f64> = load.iter().map(|&l| 1.0 + MU * l / max_load).collect();
            let tree = FrtTree::build(&g, &lengths, rng);
            let rload = tree.relative_loads(&g);
            let rmax = rload.iter().copied().fold(0.0, f64::max).max(1e-300);
            for (acc, r) in load.iter_mut().zip(&rload) {
                *acc += r / rmax;
            }
            last_lengths = lengths;
            trees.push(tree);
        }
        HopRouting {
            g,
            trees,
            fallback_lengths: last_lengths,
            h,
            stretch,
            hop_dists,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The routing's target hop bound.
    pub fn hop_bound(&self) -> usize {
        self.h
    }

    /// The hard per-pair hop cap: `stretch · max(h, hopdist(s, t))`.
    pub fn hop_cap(&self, s: NodeId, t: NodeId) -> usize {
        let hd = self.hop_dists[s.index()][t.index()] as usize;
        self.stretch * self.h.max(hd)
    }

    /// Near-hop-shortest fallback path (lengths within [1, 1.5] per hop,
    /// so hops ≤ 1.5 · hopdist ≤ cap).
    fn fallback(&self, s: NodeId, t: NodeId) -> Path {
        dijkstra(&self.g, s, &self.fallback_lengths)
            .path_to(&self.g, t)
            // sor-check: allow(unwrap) — invariant stated in the expect message
            .expect("connected graph")
    }
}

impl ObliviousRouting for HopRouting {
    fn graph(&self) -> &Graph {
        &self.g
    }

    fn path_distribution(&self, s: NodeId, t: NodeId) -> Arc<PathDist> {
        assert!(s != t);
        if let Some(d) = self.cache.lock().get(&(s, t)) {
            return Arc::clone(d);
        }
        let cap = self.hop_cap(s, t);
        let w = 1.0 / self.trees.len() as f64;
        let mut merged: HashMap<Path, f64> = HashMap::new();
        for tree in &self.trees {
            let p = tree.route(s, t);
            let p = if p.hops() <= cap {
                p
            } else {
                self.fallback(s, t)
            };
            *merged.entry(p).or_insert(0.0) += w;
        }
        let mut dist: PathDist = merged.into_iter().collect();
        dist.sort_by(|a, b| {
            a.0.nodes()
                .iter()
                .map(|v| v.0)
                .cmp(b.0.nodes().iter().map(|v| v.0))
        });
        let dist = Arc::new(dist);
        self.cache.lock().insert((s, t), Arc::clone(&dist));
        dist
    }

    fn name(&self) -> &'static str {
        "hop-raecke"
    }
}

/// A family of hop-constrained routings at geometric hop scales
/// `h = 1, 2, 4, ..., >= diam` — the object Theorem 7.1 provides for every
/// `h` at once, with its hop-stretch constant *measured*.
pub struct HopFamily {
    scales: Vec<HopRouting>,
}

impl HopFamily {
    /// Build routings for every geometric hop scale of `g`.
    pub fn build<R: Rng + ?Sized>(g: &Graph, num_trees: usize, rng: &mut R) -> Self {
        let diam = sor_graph::diameter(g) as usize;
        let mut scales = Vec::new();
        let mut h = 1usize;
        loop {
            scales.push(HopRouting::build(g.clone(), h, num_trees, rng));
            if h >= diam {
                break;
            }
            h *= 2;
        }
        HopFamily { scales }
    }

    /// The routings, increasing in hop bound.
    pub fn scales(&self) -> &[HopRouting] {
        &self.scales
    }

    /// The routing for the smallest scale with hop bound >= `h` (the last
    /// scale when `h` exceeds the diameter).
    pub fn at_least(&self, h: usize) -> &HopRouting {
        self.scales
            .iter()
            .find(|r| r.hop_bound() >= h)
            // sor-check: allow(unwrap) — invariant stated in the expect message
            .unwrap_or_else(|| self.scales.last().expect("nonempty"))
    }

    /// Measured hop stretch of scale `idx` over the given pairs:
    /// `max dilation(s,t) / max(h, hopdist(s,t))` — the paper's hop-stretch
    /// beta; by construction at most the configured stretch factor.
    pub fn measured_stretch(&self, idx: usize, pairs: &[(NodeId, NodeId)]) -> f64 {
        let r = &self.scales[idx];
        let mut worst: f64 = 0.0;
        for &(s, t) in pairs {
            let dist = r.path_distribution(s, t);
            let dil = dist_dilation(&dist) as f64;
            // hop_cap = stretch * max(h, hopdist); default stretch is 4
            let denom = r.hop_cap(s, t) as f64 / 4.0;
            worst = worst.max(dil / denom.max(1.0));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_flow::Demand;
    use sor_graph::gen;
    use sor_oblivious::routing::oblivious_congestion;

    #[test]
    fn family_covers_scales_and_stretch_bounded() {
        let g = gen::grid(4, 4); // diameter 6
        let mut rng = StdRng::seed_from_u64(9);
        let fam = HopFamily::build(&g, 3, &mut rng);
        // h = 1, 2, 4, 8
        assert_eq!(fam.scales().len(), 4);
        assert_eq!(fam.at_least(3).hop_bound(), 4);
        assert_eq!(fam.at_least(100).hop_bound(), 8);
        let pairs: Vec<(NodeId, NodeId)> = vec![
            (NodeId(0), NodeId(15)),
            (NodeId(3), NodeId(12)),
            (NodeId(0), NodeId(1)),
        ];
        for idx in 0..fam.scales().len() {
            let stretch = fam.measured_stretch(idx, &pairs);
            assert!(
                stretch <= 4.0 + 1e-9,
                "stretch {stretch} exceeds configured 4"
            );
        }
    }

    #[test]
    fn hop_cap_enforced_everywhere() {
        let g = gen::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let r = HopRouting::build(g, 2, 6, &mut rng);
        for s in r.graph().nodes() {
            for t in r.graph().nodes() {
                if s == t {
                    continue;
                }
                let cap = r.hop_cap(s, t);
                let dist = r.path_distribution(s, t);
                assert!(
                    dist_dilation(&dist) <= cap,
                    "pair {s}→{t}: dilation {} > cap {cap}",
                    dist_dilation(&dist)
                );
            }
        }
    }

    #[test]
    fn fallback_is_near_shortest() {
        let g = gen::cycle_graph(10);
        let mut rng = StdRng::seed_from_u64(2);
        let r = HopRouting::build(g, 1, 3, &mut rng);
        let p = r.fallback(NodeId(0), NodeId(3));
        assert!(p.hops() <= 4); // 1.5 × 3 rounded down by integrality
    }

    #[test]
    fn distribution_valid() {
        let g = gen::hypercube(4);
        let mut rng = StdRng::seed_from_u64(3);
        let r = HopRouting::build(g, 4, 5, &mut rng);
        let dist = r.path_distribution(NodeId(0), NodeId(15));
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (p, _) in dist.iter() {
            assert!(p.validate(r.graph()));
        }
    }

    #[test]
    fn spreads_congestion_somewhat() {
        // On a clos fabric, leaf-to-leaf demands have many 2-hop routes;
        // the hop routing should use more than one of them.
        let g = gen::clos(4, 6, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let r = HopRouting::build(g.clone(), 2, 8, &mut rng);
        let mut demand = Demand::new();
        for i in 0..6usize {
            for j in 0..6usize {
                if i != j {
                    demand.add(
                        gen::fattree::clos_leaf(4, i),
                        gen::fattree::clos_leaf(4, j),
                        0.25,
                    );
                }
            }
        }
        let c = oblivious_congestion(&r, &demand);
        // Perfect spreading over 4 spines would give ≈ 0.94; the point is
        // only that we beat the single-spine catastrophe (≈ 3.75).
        assert!(c < 3.0, "hop routing congestion {c} did not spread");
    }

    use sor_graph::NodeId;
}
