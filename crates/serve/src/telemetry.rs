//! The engine's live telemetry plane: windows, percentiles, timeline,
//! SLO watchdog, and the scrape endpoint — wired together.
//!
//! One [`ServeTelemetry`] instance is shared (`Arc`) between the engine
//! (which calls [`ServeTelemetry::record_epoch`] once per published
//! epoch) and the scrape thread (which renders `/metrics`, `/timeline`,
//! `/health` on demand). Recording is cheap — four log-histogram
//! observations, one window tick over the registry snapshot, one ring
//! push, one watchdog pass — and strictly read-only over the epoch's
//! outputs: attaching telemetry cannot change a published route or rate
//! (`serve_determinism.rs` asserts bit-equality either way).
//!
//! The *window tick is the epoch counter*, not wall time: windows are
//! "per epoch" rates, so seeded runs produce identical window contents
//! (walls are the one exception and never feed anything deterministic).

use crate::engine::EpochSnapshot;
use parking_lot::Mutex;
use sor_obs::{
    EpochRecord, EpochTimeline, LogHistogram, PromGauges, SloBreach, SloConfig, SloInputs,
    SloWatchdog, TelemetryHandler, TelemetryServer, WindowRegistry,
};
use std::net::ToSocketAddrs;
use std::sync::Arc;

/// Wall clocks the engine hands to [`ServeTelemetry::record_epoch`]
/// (nanoseconds; zero when a phase did not run).
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochWalls {
    /// Whole `run_epoch` call.
    pub epoch_ns: u64,
    /// The rate re-optimization (MWU / integral solve).
    pub reopt_ns: u64,
    /// The path-system cache lookup (including a miss's sampling).
    pub cache_lookup_ns: u64,
}

/// How many recent epochs the windowed cache hit rate averages over.
const HIT_RATE_WINDOW: usize = 10;

/// The live telemetry plane (see module docs). Construct with an
/// [`SloConfig`], share via `Arc`, attach to an engine with
/// [`crate::Engine::attach_telemetry`].
pub struct ServeTelemetry {
    windows: WindowRegistry,
    timeline: EpochTimeline,
    watchdog: SloWatchdog,
    epoch_wall: LogHistogram,
    reopt_wall: LogHistogram,
    cache_lookup: LogHistogram,
    queue_wait: LogHistogram,
    prev_rejected: Mutex<u64>,
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        Self::new(SloConfig::disabled())
    }
}

impl ServeTelemetry {
    /// Telemetry plane with the given SLO thresholds (use
    /// [`SloConfig::disabled`] for pure observation).
    pub fn new(slo: SloConfig) -> Self {
        ServeTelemetry {
            windows: WindowRegistry::new(),
            timeline: EpochTimeline::new(),
            watchdog: SloWatchdog::new(slo),
            epoch_wall: LogHistogram::new(),
            reopt_wall: LogHistogram::new(),
            cache_lookup: LogHistogram::new(),
            queue_wait: LogHistogram::new(),
            prev_rejected: Mutex::new(0),
        }
    }

    /// Record one queued request's wait (engine ingest → admission).
    pub fn observe_queue_wait_ns(&self, ns: u64) {
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — wall clocks are approximate by nature
        self.queue_wait.observe(ns as f64);
    }

    /// Ingest one published epoch: observe walls, tick the window
    /// registry (the deterministic per-epoch tick), evaluate the SLO
    /// watchdog, and append the timeline record. Called by the engine;
    /// `rejected_total` is the engine's lifetime rejection counter (the
    /// per-epoch delta is computed here). Returns the epoch's SLO
    /// breaches so the caller can react (e.g. dump the flight recorder).
    pub fn record_epoch(
        &self,
        snap: &EpochSnapshot,
        failed_edges: usize,
        rejected_total: u64,
        walls: EpochWalls,
    ) -> Vec<SloBreach> {
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — wall clocks are approximate by nature
        {
            self.epoch_wall.observe(walls.epoch_ns as f64);
            if walls.reopt_ns > 0 {
                self.reopt_wall.observe(walls.reopt_ns as f64);
            }
            if walls.cache_lookup_ns > 0 {
                self.cache_lookup.observe(walls.cache_lookup_ns as f64);
            }
        }
        let rejected = {
            let mut prev = self.prev_rejected.lock();
            let delta = rejected_total.saturating_sub(*prev);
            *prev = rejected_total;
            delta
        };
        self.windows.tick(&sor_obs::snapshot());
        let mut rec = EpochRecord {
            epoch: snap.epoch,
            admitted: snap.admitted,
            rejected,
            cache_hit: snap.cache_hit,
            cache_hits: snap.cache.hits,
            cache_misses: snap.cache.misses,
            cache_evictions: snap.cache.evictions,
            cache_invalidations: snap.cache.invalidations,
            congestion: snap.congestion,
            fresh_congestion: snap.fresh_congestion,
            fallback_pairs: snap.fallback_pairs,
            unserved_pairs: snap.unserved_pairs,
            queue_depth: snap.queue_depth,
            failed_edges,
            epoch_wall_ns: walls.epoch_ns,
            slo_breaches: Vec::new(),
        };
        let inputs = SloInputs {
            p99_epoch_wall_ms: self.epoch_wall.quantile(0.99).map(|ns| ns / 1e6),
            cache_hit_rate: self.windowed_hit_rate(&rec),
        };
        let breaches = self.watchdog.evaluate(&rec, inputs);
        rec.slo_breaches = breaches.iter().map(|b| b.rule.to_string()).collect();
        self.timeline.push(rec);
        breaches
    }

    /// Cache hit rate over the current epoch plus the last
    /// `HIT_RATE_WINDOW - 1` timeline records; `None` until any lookup
    /// happened (empty epochs perform none).
    fn windowed_hit_rate(&self, current: &EpochRecord) -> Option<f64> {
        let records = self.timeline.records();
        let tail = records.len().saturating_sub(HIT_RATE_WINDOW - 1);
        let (mut hits, mut lookups) = (current.cache_hits, current.cache_hits);
        lookups += current.cache_misses;
        for r in records.iter().skip(tail) {
            hits += r.cache_hits;
            lookups += r.cache_hits + r.cache_misses;
        }
        if lookups == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — lookup counts are far below 2^52
        Some(hits as f64 / lookups as f64)
    }

    /// The epoch timeline (records, JSON, dashboard).
    pub fn timeline(&self) -> &EpochTimeline {
        &self.timeline
    }

    /// The SLO watchdog (config, health summary).
    pub fn watchdog(&self) -> &SloWatchdog {
        &self.watchdog
    }

    /// The sliding-window registry (per-epoch rates).
    pub fn windows(&self) -> &WindowRegistry {
        &self.windows
    }

    /// Render the Prometheus text exposition: the full registry snapshot
    /// plus gauges for window rates, streaming tail percentiles, and the
    /// SLO health counters.
    pub fn render_prometheus(&self) -> String {
        let mut gauges = PromGauges::new();
        for w in self.windows.snapshot() {
            gauges.push(&format!("{}_rate", w.name), "window=\"1\"", w.rate1);
            gauges.push(&format!("{}_rate", w.name), "window=\"10\"", w.rate10);
            gauges.push(&format!("{}_rate", w.name), "window=\"60\"", w.rate60);
            gauges.push(&format!("{}_rate", w.name), "window=\"ewma\"", w.ewma);
        }
        for (hist, base) in [
            (&self.epoch_wall, "serve/epoch_wall_ns"),
            (&self.reopt_wall, "serve/reopt_wall_ns"),
            (&self.cache_lookup, "serve/cache_lookup_ns"),
            (&self.queue_wait, "serve/queue_wait_ns"),
        ] {
            if let Some((p50, p90, p99, p999)) = hist.tail_summary() {
                for (q, v) in [("0.5", p50), ("0.9", p90), ("0.99", p99), ("0.999", p999)] {
                    gauges.push(base, &format!("quantile=\"{q}\""), v);
                }
            }
        }
        let health = self.watchdog.summary();
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — breach counts are far below 2^52
        {
            gauges.push("slo/epochs_evaluated", "", health.epochs_evaluated as f64);
            gauges.push("slo/breaches_total", "", health.total_breaches as f64);
            for (rule, count) in sor_obs::SLO_RULES.iter().zip(health.breaches_by_rule) {
                gauges.push("slo/breaches", &format!("rule=\"{rule}\""), count as f64);
            }
        }
        sor_obs::render_prometheus(&sor_obs::snapshot(), &gauges)
    }

    /// Start the scrape endpoint on `addr` (`127.0.0.1:0` binds an
    /// ephemeral port; read it back from
    /// [`TelemetryServer::local_addr`]).
    pub fn serve_http<A: ToSocketAddrs>(
        self: &Arc<Self>,
        addr: A,
    ) -> std::io::Result<TelemetryServer> {
        TelemetryServer::start(addr, Arc::clone(self) as Arc<dyn TelemetryHandler>)
    }
}

impl TelemetryHandler for ServeTelemetry {
    fn metrics(&self) -> String {
        self.render_prometheus()
    }

    fn timeline_json(&self) -> String {
        self.timeline.to_json()
    }

    fn timeline_json_last(&self, last: usize) -> String {
        self.timeline.to_json_last(last)
    }

    fn health(&self) -> String {
        self.watchdog.summary().render_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheDeltas;

    fn snap(epoch: u64, hit: bool) -> EpochSnapshot {
        let mut s = EpochSnapshot {
            epoch,
            admitted: 4,
            cache_hit: hit,
            congestion: 2.0,
            lower_bound: 1.0,
            fallback_pairs: 0,
            unserved_pairs: 0,
            queue_depth: 0,
            sparsity: 2,
            fresh_congestion: Some(1.0),
            cache: CacheDeltas::default(),
            routes: Vec::new(),
            compact: None,
        };
        if hit {
            s.cache.hits = 1;
        } else {
            s.cache.misses = 1;
        }
        s
    }

    #[test]
    fn record_epoch_builds_timeline_and_hit_rate() {
        let t = ServeTelemetry::new(SloConfig::disabled());
        t.record_epoch(&snap(0, false), 0, 0, EpochWalls::default());
        for e in 1..5 {
            t.record_epoch(
                &snap(e, true),
                0,
                e, // rejected total grows by 1 per epoch
                EpochWalls {
                    epoch_ns: 1_000_000,
                    reopt_ns: 400_000,
                    cache_lookup_ns: 10_000,
                },
            );
        }
        assert_eq!(t.timeline().len(), 5);
        let records = t.timeline().records();
        assert_eq!(records[0].rejected, 0);
        assert!(
            records[1..].iter().all(|r| r.rejected == 1),
            "deltas, not totals"
        );
        // 1 miss + 4 hits
        let rate = t.windowed_hit_rate(&records[4]).expect("lookups happened");
        assert!(rate > 0.5, "mostly hits: {rate}");
        assert_eq!(t.windows().ticks(), 5, "one deterministic tick per epoch");
    }

    #[test]
    fn slo_breach_lands_in_timeline_record() {
        let t = ServeTelemetry::new(SloConfig {
            max_congestion_ratio: Some(1.5),
            ..SloConfig::disabled()
        });
        // congestion 2.0 vs fresh 1.0 → ratio 2.0 > 1.5
        t.record_epoch(&snap(0, false), 0, 0, EpochWalls::default());
        let records = t.timeline().records();
        assert_eq!(records[0].slo_breaches, vec!["max_congestion_ratio"]);
        let health = t.watchdog().summary();
        assert_eq!(health.total_breaches, 1);
        assert!(t.health().contains("degraded"));
    }

    #[test]
    fn exposition_includes_percentiles_and_slo_gauges() {
        let t = ServeTelemetry::new(SloConfig::serving_defaults());
        t.observe_queue_wait_ns(5_000);
        t.record_epoch(
            &snap(0, false),
            0,
            0,
            EpochWalls {
                epoch_ns: 2_000_000,
                reopt_ns: 900_000,
                cache_lookup_ns: 50_000,
            },
        );
        let text = t.metrics();
        assert!(text.contains("sor_serve_epoch_wall_ns{quantile=\"0.99\"}"));
        assert!(text.contains("sor_serve_queue_wait_ns{quantile=\"0.5\"}"));
        assert!(text.contains("sor_slo_epochs_evaluated 1"));
        assert!(text.contains("sor_slo_breaches{rule=\"max_congestion_ratio\"}"));
        let json = t.timeline_json();
        assert!(json.contains("\"format\":\"sor-timeline/1\""));
    }
}
