//! The online engine: epoch lifecycle over cached path systems.
//!
//! Lifecycle per epoch: **ingest** (requests queue up, backpressure
//! rejects past a bound) → **admit** (pop up to a batch into the epoch's
//! demand) → **solve** (re-optimize sending rates restricted to a cached
//! sparse path system, sampling one only on a cache miss) → **publish**
//! (an [`EpochSnapshot`] with per-pair rate-weighted routes).
//!
//! The expensive phase — building the Räcke routing and sampling path
//! systems — happens once at startup and on cache misses; every warm
//! epoch is just an MWU rate re-optimization ([`SemiObliviousRouting::
//! route_fractional`]), which is the semi-oblivious model's operational
//! promise. Edge failures invalidate only affected cache entries and the
//! epoch routes on the degraded system, pairs that lost every candidate
//! falling back to a surviving shortest path exactly like `sor-te`'s
//! failure replay.
//!
//! Everything is deterministic for a fixed seed: the cache is keyed and
//! evicted deterministically, the engine RNG is a seeded `StdRng`, and
//! the fresh-sample comparison derives its RNG from (seed, epoch).

use crate::cache::{
    fnv1a_u64, pairs_fingerprint, CacheDeltas, CacheKey, CacheStats, PathSystemCache, FNV_OFFSET,
};
use crate::telemetry::{EpochWalls, ServeTelemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use sor_compact::{CompactStats, CompactSystem};
use sor_core::sample::{demand_pairs, sample_k};
use sor_core::{PathSystem, SemiObliviousRouting};
use sor_flow::Demand;
use sor_graph::{EdgeId, Graph, NodeId};
use sor_oblivious::RaeckeRouting;
use sor_obs::{EdgeLoad, Journal, JournalEvent, SloBreach};
use sor_te::emergency_path;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// One routing request: `amount` units of flow from `src` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Source vertex.
    pub src: NodeId,
    /// Destination vertex.
    pub dst: NodeId,
    /// Flow units requested (finite, positive).
    pub amount: f64,
}

impl Request {
    /// A unit request.
    pub fn unit(src: NodeId, dst: NodeId) -> Self {
        Request {
            src,
            dst,
            amount: 1.0,
        }
    }
}

/// How an epoch's path system is materialized for publication. Both
/// formats publish bit-identical routes — compact mode re-encodes the
/// system through `sor-compact`'s verified lossless tables and decodes
/// the published edge lists from them, recording the size accounting on
/// the snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Explicit per-pair edge lists (the historical format).
    #[default]
    Explicit,
    /// o(n)-state label-interval next-hop tables ([`CompactSystem`]).
    Compact,
}

impl SnapshotFormat {
    /// Parse a CLI spelling (`explicit` / `compact`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "explicit" => Ok(SnapshotFormat::Explicit),
            "compact" => Ok(SnapshotFormat::Compact),
            other => Err(format!(
                "unknown snapshot format {other:?} (expected explicit|compact)"
            )),
        }
    }
}

/// Engine tuning knobs. Every field participates in the determinism
/// contract: same config + same ingest sequence ⇒ bit-identical
/// snapshots.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Paths sampled per pair (the `s` of an `s`-sparse system).
    pub sparsity: usize,
    /// FRT trees in the Räcke mixture built at startup.
    pub trees: usize,
    /// MWU solver accuracy.
    pub eps: f64,
    /// Max requests admitted into one epoch.
    pub epoch_batch: usize,
    /// Queue depth beyond which `ingest` rejects (backpressure).
    pub queue_bound: usize,
    /// Total path systems the cache may hold.
    pub cache_capacity: usize,
    /// Solve each epoch integrally (randomized rounding + local search)
    /// when the admitted demand is integral; otherwise fractionally.
    pub integral: bool,
    /// Also run the resample-per-epoch baseline (fresh Räcke build +
    /// sample + solve) and record its congestion — the cost the cache
    /// amortizes away.
    pub compare_fresh: bool,
    /// Seed for the engine RNG and all derived per-epoch RNGs.
    pub seed: u64,
    /// How published snapshots materialize their path systems (explicit
    /// edge lists or compact next-hop tables). Published routes are
    /// bit-identical either way; only the snapshot's size accounting and
    /// the cache's encoding tag differ.
    pub snapshot_format: SnapshotFormat,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sparsity: 3,
            trees: 6,
            eps: 0.2,
            epoch_batch: 64,
            queue_bound: 256,
            cache_capacity: 32,
            integral: false,
            compare_fresh: false,
            seed: 0,
            snapshot_format: SnapshotFormat::Explicit,
        }
    }
}

/// A published per-pair route assignment: candidate paths (as edge-id
/// sequences) with the rates the epoch's re-optimization put on them.
/// Zero-rate candidates are omitted.
#[derive(Clone, Debug, PartialEq)]
pub struct PublishedRoute {
    /// Source vertex.
    pub s: NodeId,
    /// Destination vertex.
    pub t: NodeId,
    /// The pair's admitted demand.
    pub demand: f64,
    /// `(path edges, rate)` with rate > 0; rates sum to `demand`.
    pub paths: Vec<(Vec<EdgeId>, f64)>,
}

/// What one epoch published. `PartialEq` + float fields make bit-level
/// determinism checks (`same seed ⇒ identical snapshots`) a plain
/// `assert_eq!`.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Requests admitted into this epoch.
    pub admitted: usize,
    /// Whether the path system came from the cache.
    pub cache_hit: bool,
    /// Congestion of the published routing.
    pub congestion: f64,
    /// Solver's LP lower bound (0 when the epoch was empty or integral).
    pub lower_bound: f64,
    /// Pairs that lost every sampled candidate to failures and were
    /// routed on an emergency shortest path.
    pub fallback_pairs: usize,
    /// Pairs disconnected outright by the failures (dropped from the
    /// epoch's demand).
    pub unserved_pairs: usize,
    /// Queue depth after admission (what backpressure acts on).
    pub queue_depth: usize,
    /// Sparsity of the system the epoch solved on.
    pub sparsity: usize,
    /// Congestion of the resample-per-epoch baseline, when
    /// [`EngineConfig::compare_fresh`] is set.
    pub fresh_congestion: Option<f64>,
    /// Cache counter movement attributable to this epoch (including any
    /// `fail_edges` invalidations since the previous epoch) — per-epoch
    /// deltas, where [`Engine::cache_stats`] gives lifetime totals.
    pub cache: CacheDeltas,
    /// The rate assignment, one entry per served pair.
    pub routes: Vec<PublishedRoute>,
    /// Size accounting of the compact encoding, present only when the
    /// engine ran with [`SnapshotFormat::Compact`]. Routes themselves
    /// are identical between formats (the codec is verified lossless).
    pub compact: Option<CompactStats>,
}

impl EpochSnapshot {
    fn empty(epoch: u64, queue_depth: usize) -> Self {
        EpochSnapshot {
            epoch,
            admitted: 0,
            cache_hit: false,
            congestion: 0.0,
            lower_bound: 0.0,
            fallback_pairs: 0,
            unserved_pairs: 0,
            queue_depth,
            sparsity: 0,
            fresh_congestion: None,
            cache: CacheDeltas::default(),
            routes: Vec::new(),
            compact: None,
        }
    }
}

/// Per-epoch sub-phase wall clocks, populated only while telemetry is
/// attached (wall time never reaches published output).
#[derive(Clone, Copy, Default)]
struct EpochTimings {
    cache_lookup_ns: u64,
    reopt_ns: u64,
}

/// Congested edges reported per `top_edges` journal event.
const TOP_EDGES_K: usize = 8;

/// Breach-triggered flight-recorder dumps: when an epoch trips any SLO
/// rule and a journal is attached, the engine snapshots the ring's last
/// `context_epochs` epochs to `{prefix}-epoch{NNNNNN}.json` (the
/// `sor-journal/1` format `sor forensics` ingests).
#[derive(Clone, Debug)]
pub struct BreachDumpConfig {
    /// Artifact path prefix (`{prefix}-epoch000042.json`).
    pub prefix: String,
    /// Epochs of journal context per dump (0 = everything still in the
    /// ring).
    pub context_epochs: u64,
    /// Stop writing after this many dumps (a breach storm must not turn
    /// the flight recorder into a disk-filling loop).
    pub max_dumps: usize,
}

impl Default for BreachDumpConfig {
    fn default() -> Self {
        BreachDumpConfig {
            prefix: "sor-breach".to_string(),
            context_epochs: 16,
            max_dumps: 16,
        }
    }
}

/// The long-running engine (see module docs for the lifecycle).
pub struct Engine {
    g: Graph,
    cfg: EngineConfig,
    routing: RaeckeRouting,
    cache: PathSystemCache,
    queue: VecDeque<Request>,
    failed: Vec<EdgeId>,
    rng: StdRng,
    epoch: u64,
    rejected: u64,
    last: Option<SemiObliviousRouting>,
    last_stats: CacheStats,
    telemetry: Option<Arc<ServeTelemetry>>,
    /// Enqueue instants mirroring `queue`, kept only while telemetry is
    /// attached (queue-wait percentiles).
    queue_times: VecDeque<Instant>,
    timings: EpochTimings,
    journal: Option<Arc<Journal>>,
    dump_cfg: Option<BreachDumpConfig>,
    breach_dumps: Vec<String>,
    /// Rejection total at the last journaled epoch (reject events carry
    /// per-epoch deltas).
    journal_prev_rejected: u64,
    /// Last published path-set fingerprint per pair — path-churn events
    /// difference against this. BTreeMap: churn events come out in
    /// deterministic pair order.
    pair_fps: BTreeMap<(u32, u32), u64>,
}

impl Engine {
    /// Build the engine: one Räcke routing construction (the expensive
    /// oblivious phase), an empty cache, an empty queue.
    pub fn new(g: Graph, cfg: EngineConfig) -> Self {
        let _span = sor_obs::span("serve/build");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let routing = RaeckeRouting::build(g.clone(), cfg.trees, &mut rng);
        Engine {
            cache: PathSystemCache::new(cfg.cache_capacity),
            queue: VecDeque::new(),
            failed: Vec::new(),
            rng,
            epoch: 0,
            rejected: 0,
            last: None,
            last_stats: CacheStats::default(),
            telemetry: None,
            queue_times: VecDeque::new(),
            timings: EpochTimings::default(),
            journal: None,
            dump_cfg: None,
            breach_dumps: Vec::new(),
            journal_prev_rejected: 0,
            pair_fps: BTreeMap::new(),
            g,
            cfg,
            routing,
        }
    }

    /// Attach the live telemetry plane: every subsequent epoch records
    /// walls, ticks the window registry, appends to the timeline, and
    /// runs the SLO watchdog. Telemetry is strictly read-only over the
    /// epoch's outputs — published routes/rates stay bit-identical with
    /// or without it (the determinism test pins this).
    pub fn attach_telemetry(&mut self, telemetry: Arc<ServeTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry plane, if any.
    pub fn telemetry(&self) -> Option<&Arc<ServeTelemetry>> {
        self.telemetry.as_ref()
    }

    /// Attach the flight recorder: every subsequent lifecycle step emits
    /// a causal event into the ring. Like telemetry, the journal is
    /// strictly read-only over the epoch's outputs — published snapshots
    /// stay bit-identical with or without it (the determinism test pins
    /// this), and a detached engine never touches the ring at all.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.journal = Some(journal);
    }

    /// The attached flight recorder, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Arm breach-triggered dumps (requires an attached journal to have
    /// any effect): epochs that trip an SLO rule snapshot the ring to
    /// disk. See [`BreachDumpConfig`].
    pub fn set_breach_dump(&mut self, cfg: BreachDumpConfig) {
        self.dump_cfg = Some(cfg);
    }

    /// Paths of the breach dumps written so far, in breach order.
    pub fn breach_dump_paths(&self) -> &[String] {
        &self.breach_dumps
    }

    /// Offer a request. Returns `false` (and counts a rejection) when the
    /// queue is at the backpressure bound. Panics on malformed requests
    /// (self-loop, non-positive amount) — the same contract as `Demand`.
    pub fn ingest(&mut self, req: Request) -> bool {
        assert!(req.src != req.dst, "request between a vertex and itself");
        assert!(
            req.amount.is_finite() && req.amount > 0.0,
            "request amount must be finite and positive"
        );
        if self.queue.len() >= self.cfg.queue_bound {
            self.rejected += 1;
            sor_obs::counter_add!("serve/requests_rejected");
            return false;
        }
        if self.telemetry.is_some() {
            self.queue_times.push_back(Instant::now());
        }
        self.queue.push_back(req);
        true
    }

    /// Take edges down: extends the failure set and invalidates exactly
    /// the cache entries whose systems route over them. Returns how many
    /// entries were invalidated.
    pub fn fail_edges(&mut self, edges: &[EdgeId]) -> usize {
        for &e in edges {
            if !self.failed.contains(&e) {
                self.failed.push(e);
            }
        }
        sor_obs::count_usize("serve/edge_failures", edges.len());
        let invalidated = self.cache.invalidate_edges(edges);
        if let Some(journal) = &self.journal {
            // Tagged with the *upcoming* epoch index: the failure takes
            // effect on (and the invalidation misses land in) that epoch.
            journal.record(JournalEvent::EdgeFail {
                epoch: self.epoch,
                edges: edges.iter().map(|e| e.0).collect(),
            });
            if invalidated > 0 {
                journal.record(JournalEvent::CacheInvalidate {
                    epoch: self.epoch,
                    count: invalidated as u64,
                });
            }
        }
        invalidated
    }

    /// Bring every failed edge back up. Cached entries were sampled on
    /// the pristine graph and never contain emergency fallback paths, so
    /// no invalidation is needed.
    pub fn restore_all(&mut self) {
        let restored = self.failed.len();
        self.failed.clear();
        if restored > 0 {
            if let Some(journal) = &self.journal {
                journal.record(JournalEvent::EdgeRestore {
                    epoch: self.epoch,
                    restored,
                });
            }
        }
    }

    /// Run one epoch: admit a batch, solve it on a cached (or freshly
    /// sampled) path system, publish the snapshot.
    pub fn run_epoch(&mut self) -> EpochSnapshot {
        let epoch_start = (self.telemetry.is_some() || self.journal.is_some()).then(Instant::now);
        self.timings = EpochTimings::default();
        let mut snap = {
            let _span = sor_obs::span("serve/epoch");
            self.run_epoch_inner()
        };
        if self.cfg.compare_fresh && snap.admitted > 0 {
            // Sibling span, *outside* serve/epoch: the wall-time ratio of
            // the two spans is the cache's amortization factor.
            snap.fresh_congestion = Some(self.fresh_baseline(&snap));
        }
        // Per-epoch cache counter deltas are part of the published
        // snapshot regardless of telemetry: the movement is exactly as
        // deterministic as the lifetime counters it differences.
        let stats = self.cache.stats();
        snap.cache = stats.delta_since(&self.last_stats);
        self.last_stats = stats;
        let epoch_wall_ns = epoch_start.map_or(0, elapsed_ns);
        if let Some(journal) = &self.journal {
            if snap.cache.evictions > 0 {
                journal.record(JournalEvent::CacheEvict {
                    epoch: snap.epoch,
                    count: snap.cache.evictions,
                });
            }
            journal.record(JournalEvent::EpochEnd {
                epoch: snap.epoch,
                admitted: snap.admitted,
                cache_hit: snap.cache_hit,
                congestion: snap.congestion,
                fallback_pairs: snap.fallback_pairs,
                unserved_pairs: snap.unserved_pairs,
                failed_edges: self.failed.len(),
                epoch_wall_ns,
            });
        }
        if let Some(telemetry) = &self.telemetry {
            let walls = EpochWalls {
                epoch_ns: epoch_wall_ns,
                reopt_ns: self.timings.reopt_ns,
                cache_lookup_ns: self.timings.cache_lookup_ns,
            };
            let breaches = telemetry.record_epoch(&snap, self.failed.len(), self.rejected, walls);
            if !breaches.is_empty() {
                self.dump_on_breach(snap.epoch, &breaches);
            }
        }
        snap
    }

    /// Breach reaction: snapshot the flight recorder's recent epochs to a
    /// breach-stamped artifact (no-op without both a journal and an armed
    /// [`BreachDumpConfig`]; capped at `max_dumps`).
    fn dump_on_breach(&mut self, epoch: u64, breaches: &[SloBreach]) {
        let (Some(journal), Some(cfg)) = (&self.journal, &self.dump_cfg) else {
            return;
        };
        if self.breach_dumps.len() >= cfg.max_dumps {
            return;
        }
        let rules = breaches
            .iter()
            .map(|b| b.rule)
            .collect::<Vec<_>>()
            .join(",");
        let epoch_str = epoch.to_string();
        let doc = journal.dump_json_last(
            cfg.context_epochs,
            &[
                ("reason", "slo-breach"),
                ("breach_epoch", epoch_str.as_str()),
                ("rules", rules.as_str()),
            ],
        );
        let path = format!("{}-epoch{epoch:06}.json", cfg.prefix);
        match std::fs::write(&path, doc) {
            Ok(()) => {
                sor_obs::warn!("epoch {epoch}: SLO breach ({rules}); journal dumped to {path}");
                self.breach_dumps.push(path);
            }
            Err(e) => {
                sor_obs::warn!(
                    "epoch {epoch}: SLO breach ({rules}); journal dump to {path} failed: {e}"
                );
            }
        }
    }

    fn run_epoch_inner(&mut self) -> EpochSnapshot {
        let epoch = self.epoch;
        self.epoch += 1;
        sor_obs::counter_add!("serve/epochs");

        if let Some(journal) = &self.journal {
            journal.record(JournalEvent::EpochBegin {
                epoch,
                queue_depth: self.queue.len(),
            });
            let rejected_delta = self.rejected.saturating_sub(self.journal_prev_rejected);
            if rejected_delta > 0 {
                journal.record(JournalEvent::Reject {
                    epoch,
                    count: rejected_delta,
                });
            }
            self.journal_prev_rejected = self.rejected;
        }

        let take = self.cfg.epoch_batch.min(self.queue.len());
        let admitted: Vec<Request> = self.queue.drain(..take).collect();
        if let Some(telemetry) = &self.telemetry {
            // queue-wait percentiles for the admitted batch (enqueue
            // instants are only mirrored while telemetry is attached)
            for _ in 0..take.min(self.queue_times.len()) {
                if let Some(t0) = self.queue_times.pop_front() {
                    telemetry.observe_queue_wait_ns(elapsed_ns(t0));
                }
            }
        }
        sor_obs::count_usize("serve/requests_admitted", admitted.len());
        #[allow(clippy::cast_precision_loss)]
        // sor-check: allow(lossy-cast) — queue depths are far below 2^52
        let depth = self.queue.len() as f64;
        sor_obs::observe_into!("serve/queue_depth", &sor_obs::POW2_BUCKETS, depth);
        if admitted.is_empty() {
            return EpochSnapshot::empty(epoch, self.queue.len());
        }

        let demand = Demand::from_triples(admitted.iter().map(|r| (r.src, r.dst, r.amount)));
        let pairs = demand_pairs(&demand);
        if let Some(journal) = &self.journal {
            journal.record(JournalEvent::Admit {
                epoch,
                count: admitted.len(),
                demand_fp: pairs_fingerprint(&pairs),
            });
        }
        let key = CacheKey::new(&self.g, &pairs, self.cfg.sparsity);
        let lookup_start = self.telemetry.as_ref().map(|_| Instant::now());
        let Engine {
            cache,
            routing,
            rng,
            cfg,
            ..
        } = self;
        let (sampled, cache_hit) = cache.get_or_insert_with(key, cfg.snapshot_format, || {
            let _span = sor_obs::span("serve/sample");
            sample_k(routing, &pairs, cfg.sparsity, rng).system
        });
        if let Some(t0) = lookup_start {
            self.timings.cache_lookup_ns = elapsed_ns(t0);
        }
        if let Some(journal) = &self.journal {
            journal.record(if cache_hit {
                JournalEvent::CacheHit { epoch }
            } else {
                JournalEvent::CacheMiss { epoch }
            });
        }

        let (system, fallback_pairs, unserved) =
            resolve_failures(&self.g, &sampled, &self.failed, &pairs);
        if fallback_pairs > 0 {
            sor_obs::warn!(
                "epoch {epoch}: {fallback_pairs} pair(s) lost every cached candidate; \
                 emergency shortest-path fallback installed"
            );
            sor_obs::count_usize("serve/fallback_pairs", fallback_pairs);
            if let Some(journal) = &self.journal {
                journal.record(JournalEvent::Fallback {
                    epoch,
                    pairs: fallback_pairs,
                });
            }
        }
        let demand = if unserved.is_empty() {
            demand
        } else {
            sor_obs::warn!(
                "epoch {epoch}: {} pair(s) disconnected by failures; dropped",
                unserved.len()
            );
            sor_obs::count_usize("serve/unserved_pairs", unserved.len());
            if let Some(journal) = &self.journal {
                journal.record(JournalEvent::Unserved {
                    epoch,
                    pairs: unserved.len(),
                });
            }
            Demand::from_triples(
                demand
                    .entries()
                    .iter()
                    .filter(|&&(s, t, _)| !unserved.contains(&(s, t)))
                    .copied(),
            )
        };
        if demand.support_size() == 0 {
            let mut snap = EpochSnapshot::empty(epoch, self.queue.len());
            snap.admitted = admitted.len();
            snap.cache_hit = cache_hit;
            snap.unserved_pairs = unserved.len();
            return snap;
        }

        let sparsity = system.sparsity();
        let sor = SemiObliviousRouting::new(self.g.clone(), system);
        let reopt_start = self.telemetry.as_ref().map(|_| Instant::now());
        let integral_solve = self.cfg.integral && demand.is_integral();
        let (weights, congestion, lower_bound) = if integral_solve {
            let sol = sor.route_integral(&demand, self.cfg.eps, &mut self.rng);
            let weights: Vec<Vec<f64>> = sol
                .counts
                .iter()
                .map(|c| c.iter().map(|&n| f64::from(n)).collect())
                .collect();
            (weights, sol.congestion, 0.0)
        } else {
            let sol = sor.route_fractional(&demand, self.cfg.eps);
            (sol.weights, sol.congestion, sol.lower_bound)
        };
        if let Some(t0) = reopt_start {
            self.timings.reopt_ns = elapsed_ns(t0);
        }

        // Compact mode: re-encode the epoch's (failure-resolved) system
        // through the verified lossless codec and publish the *decoded*
        // routes — identical bits by the codec's round-trip guarantee,
        // with the size accounting recorded on the snapshot.
        let compact = (self.cfg.snapshot_format == SnapshotFormat::Compact).then(|| {
            let _span = sor_obs::span("serve/compact_encode");
            let tree = self
                .routing
                .trees()
                .first()
                // sor-check: allow(unwrap, panic-path) — invariant stated in the expect message
                .expect("RaeckeRouting::build produces at least one tree");
            CompactSystem::encode(&self.g, tree, sor.system())
        });

        // Publish: per-commodity route extraction (rayon; the vendored
        // stand-in runs it sequentially, deterministically).
        let routes: Vec<PublishedRoute> = match &compact {
            Some(cs) => demand
                .entries()
                .iter()
                .zip(weights.iter())
                .map(|(&(s, t, d), w)| PublishedRoute {
                    s,
                    t,
                    demand: d,
                    paths: cs
                        .decode_pair(&self.g, s, t)
                        .iter()
                        .zip(w.iter())
                        .filter(|&(_, &rate)| rate > 0.0)
                        .map(|(p, &rate)| (p.edges().to_vec(), rate))
                        .collect(),
                })
                .collect(),
            None => demand
                .entries()
                .par_iter()
                .zip(weights.par_iter())
                .map(|(&(s, t, d), w)| PublishedRoute {
                    s,
                    t,
                    demand: d,
                    paths: sor
                        .system()
                        .paths(s, t)
                        .par_iter()
                        .zip(w.par_iter())
                        .filter(|&(_, &rate)| rate > 0.0)
                        .map(|(p, &rate)| (p.edges().to_vec(), rate))
                        .collect(),
                })
                .collect(),
        };

        if self.journal.is_some() {
            self.journal_solve_events(
                epoch,
                &demand,
                &routes,
                congestion,
                lower_bound,
                integral_solve,
            );
        }

        let snap = EpochSnapshot {
            epoch,
            admitted: admitted.len(),
            cache_hit,
            congestion,
            lower_bound,
            fallback_pairs,
            unserved_pairs: unserved.len(),
            queue_depth: self.queue.len(),
            sparsity,
            fresh_congestion: None,
            cache: CacheDeltas::default(),
            routes,
            compact: compact.as_ref().map(CompactSystem::stats),
        };
        self.last = Some(sor);
        snap
    }

    /// Journal the solve's outcome: the re-opt summary, the top-k most
    /// utilized edges of the published assignment, and per-pair path
    /// churn vs. the previous publication. Only called while a journal is
    /// attached, so the load/fingerprint passes cost a detached engine
    /// nothing.
    fn journal_solve_events(
        &mut self,
        epoch: u64,
        demand: &Demand,
        routes: &[PublishedRoute],
        congestion: f64,
        lower_bound: f64,
        integral: bool,
    ) {
        let Some(journal) = &self.journal else {
            return;
        };
        journal.record(JournalEvent::Reopt {
            epoch,
            pairs: demand.support_size(),
            congestion,
            lower_bound,
            integral,
        });
        // Per-edge loads of the published assignment: rates sum to the
        // admitted demands, so this is exactly the utilization the epoch
        // ships.
        let mut loads = vec![0.0f64; self.g.num_edges()];
        for r in routes {
            for (edges, rate) in &r.paths {
                for e in edges {
                    if let Some(slot) = loads.get_mut(e.0 as usize) {
                        *slot += *rate;
                    }
                }
            }
        }
        let mut top: Vec<EdgeLoad> = loads
            .iter()
            .enumerate()
            .filter(|&(_, &load)| load > 0.0)
            .map(|(i, &load)| {
                let e = EdgeId::from_usize(i);
                EdgeLoad {
                    edge: e.0,
                    load,
                    utilization: load / self.g.cap(e),
                }
            })
            .collect();
        top.sort_by(|a, b| {
            b.utilization
                .total_cmp(&a.utilization)
                .then(a.edge.cmp(&b.edge))
        });
        top.truncate(TOP_EDGES_K);
        journal.record(JournalEvent::TopEdges { epoch, edges: top });
        // Path churn: fingerprint each pair's published path set and diff
        // it against the pair's previous publication.
        for r in routes {
            let mut fp = FNV_OFFSET;
            for (edges, _) in &r.paths {
                fp = fnv1a_u64(fp, edges.len() as u64);
                for e in edges {
                    fp = fnv1a_u64(fp, u64::from(e.0));
                }
            }
            let pair = (r.s.0, r.t.0);
            let churn = match self.pair_fps.insert(pair, fp) {
                None => Some(true),
                Some(prev) if prev != fp => Some(false),
                Some(_) => None,
            };
            if let Some(new_pair) = churn {
                journal.record(JournalEvent::PathChurn {
                    epoch,
                    src: pair.0,
                    dst: pair.1,
                    new_pair,
                });
            }
        }
    }

    /// The resample-per-epoch baseline: rebuild the oblivious routing and
    /// resample the epoch's system from scratch, then solve the same
    /// demand — everything the cache lets warm epochs skip.
    fn fresh_baseline(&self, snap: &EpochSnapshot) -> f64 {
        let _span = sor_obs::span("serve/fresh_sample");
        let demand = Demand::from_triples(snap.routes.iter().map(|r| (r.s, r.t, r.demand)));
        let pairs = demand_pairs(&demand);
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ snap.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let base = RaeckeRouting::build(self.g.clone(), self.cfg.trees, &mut rng);
        let sampled = sample_k(&base, &pairs, self.cfg.sparsity, &mut rng).system;
        let (system, _, unserved) = resolve_failures(&self.g, &sampled, &self.failed, &pairs);
        debug_assert!(unserved.is_empty(), "served pairs stay connected");
        let sor = SemiObliviousRouting::new(self.g.clone(), system);
        sor.congestion(&demand, self.cfg.eps)
    }

    /// The graph the engine routes on.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The path-system cache (stats, targeted tests).
    pub fn cache(&self) -> &PathSystemCache {
        &self.cache
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests rejected by backpressure so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected
    }

    /// Epochs run so far.
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// Currently failed edges.
    pub fn failed_edges(&self) -> &[EdgeId] {
        &self.failed
    }

    /// The system the last non-empty epoch solved on (degraded + fallback
    /// paths included) — the containment-invariant tests check published
    /// routes against exactly this.
    pub fn last_system(&self) -> Option<&PathSystem> {
        self.last.as_ref().map(SemiObliviousRouting::system)
    }
}

/// Saturating nanoseconds since `t0` (u64 holds ~584 years).
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Apply the failure set to a sampled system: drop crossing paths, give
/// pairs that lost everything an emergency shortest path on the survivor
/// graph (re-traced onto original edge ids, the `sor-te` failure-replay
/// idiom), and report pairs the failures disconnected outright.
fn resolve_failures(
    g: &Graph,
    sampled: &PathSystem,
    failed: &[EdgeId],
    pairs: &[(NodeId, NodeId)],
) -> (PathSystem, usize, Vec<(NodeId, NodeId)>) {
    if failed.is_empty() {
        return (sampled.clone(), 0, Vec::new());
    }
    let mut system = sampled.without_edges(failed);
    let survivor = g.without_edges(failed);
    let mut fallback_pairs = 0;
    let mut unserved = Vec::new();
    for &(a, b) in pairs {
        if system.covers(a, b) {
            continue;
        }
        // `sor-te`'s emergency reroute: BFS on the survivor graph,
        // re-traced onto original edge ids.
        let Some(orig) = emergency_path(g, &survivor, failed, a, b) else {
            unserved.push((a, b));
            continue;
        };
        fallback_pairs += 1;
        system.insert(a, b, orig);
    }
    (system, fallback_pairs, unserved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_graph::gen;

    fn small_engine(compare_fresh: bool) -> Engine {
        let g = gen::hypercube(3);
        Engine::new(
            g,
            EngineConfig {
                sparsity: 2,
                trees: 3,
                epoch_batch: 8,
                queue_bound: 16,
                cache_capacity: 4,
                compare_fresh,
                seed: 11,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn warm_epoch_hits_cache() {
        let mut eng = small_engine(false);
        for _ in 0..2 {
            for i in 0..4u32 {
                assert!(eng.ingest(Request::unit(NodeId(i), NodeId(7 - i))));
            }
        }
        let first = eng.run_epoch();
        assert_eq!(first.admitted, 8);
        assert!(!first.cache_hit);
        assert!(first.congestion > 0.0);
        // same pair set again → hit, and the solve agrees bit-for-bit
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        let second = eng.run_epoch();
        assert!(second.cache_hit);
        assert_eq!(first.congestion.to_bits(), second.congestion.to_bits());
        assert_eq!(first.routes, second.routes);
        let st = eng.cache_stats();
        assert_eq!((st.hits, st.misses), (1, 1));
    }

    #[test]
    fn backpressure_rejects_at_bound() {
        let mut eng = small_engine(false);
        let mut accepted = 0;
        for i in 0..40u32 {
            if eng.ingest(Request::unit(NodeId(i % 7), NodeId(7))) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 16, "queue bound caps acceptance");
        assert_eq!(eng.rejected_total(), 24);
        assert_eq!(eng.queue_depth(), 16);
        let snap = eng.run_epoch();
        assert_eq!(snap.admitted, 8, "epoch batch caps admission");
        assert_eq!(snap.queue_depth, 8);
    }

    #[test]
    fn snapshots_carry_per_epoch_cache_deltas() {
        let mut eng = small_engine(false);
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        let first = eng.run_epoch();
        assert_eq!((first.cache.hits, first.cache.misses), (0, 1));
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        let second = eng.run_epoch();
        assert_eq!((second.cache.hits, second.cache.misses), (1, 0));
        // per-epoch deltas sum to the lifetime totals
        let st = eng.cache_stats();
        assert_eq!(st.hits, first.cache.hits + second.cache.hits);
        assert_eq!(st.misses, first.cache.misses + second.cache.misses);
        // an empty epoch moves nothing
        let idle = eng.run_epoch();
        assert_eq!(idle.cache, CacheDeltas::default());
    }

    #[test]
    fn empty_epoch_is_empty() {
        let mut eng = small_engine(false);
        let snap = eng.run_epoch();
        assert_eq!(snap.admitted, 0);
        assert_eq!(snap.congestion, 0.0);
        assert!(snap.routes.is_empty());
        assert_eq!(eng.epochs_run(), 1);
    }

    #[test]
    fn failures_invalidate_and_fall_back() {
        let g = gen::cycle_graph(6);
        let mut eng = Engine::new(
            g,
            EngineConfig {
                sparsity: 4,
                trees: 3,
                epoch_batch: 4,
                seed: 5,
                ..EngineConfig::default()
            },
        );
        eng.ingest(Request::unit(NodeId(0), NodeId(3)));
        let warm = eng.run_epoch();
        assert!(!warm.cache_hit);
        // fail one cycle edge: the cached system (both directions around
        // the cycle, sparsity up to 2) used it, so the entry dies
        let invalidated = eng.fail_edges(&[EdgeId(0)]);
        assert_eq!(invalidated, 1);
        assert_eq!(eng.failed_edges(), &[EdgeId(0)]);
        eng.ingest(Request::unit(NodeId(0), NodeId(3)));
        let degraded = eng.run_epoch();
        assert!(!degraded.cache_hit, "invalidated entry cannot hit");
        // the inter-epoch invalidation lands in this epoch's deltas
        assert_eq!(degraded.cache.invalidations, 1);
        assert_eq!(degraded.cache.misses, 1);
        assert!(degraded.congestion > 0.0);
        // every published route avoids the failed edge
        for r in &degraded.routes {
            for (edges, _) in &r.paths {
                assert!(!edges.contains(&EdgeId(0)));
            }
        }
        eng.restore_all();
        assert!(eng.failed_edges().is_empty());
    }

    #[test]
    fn journal_captures_the_epoch_lifecycle() {
        let mut eng = small_engine(false);
        let journal = Arc::new(Journal::new());
        eng.attach_journal(Arc::clone(&journal));
        for _ in 0..2 {
            for i in 0..4u32 {
                eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
            }
        }
        eng.run_epoch();
        let tags: Vec<&'static str> = journal.events().iter().map(|(_, e)| e.type_tag()).collect();
        for expected in [
            "epoch_begin",
            "admit",
            "cache_miss",
            "reopt",
            "top_edges",
            "path_churn",
            "epoch_end",
        ] {
            assert!(tags.contains(&expected), "missing {expected} in {tags:?}");
        }
        // 4 pairs, all published for the first time
        assert_eq!(tags.iter().filter(|t| **t == "path_churn").count(), 4);
        let before = journal.len();
        // identical demand again: warm hit, identical publication → no churn
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        eng.run_epoch();
        let tags2: Vec<&'static str> = journal
            .events()
            .iter()
            .skip(before)
            .map(|(_, e)| e.type_tag())
            .collect();
        assert!(tags2.contains(&"cache_hit"), "warm epoch hits: {tags2:?}");
        assert!(!tags2.contains(&"cache_miss"));
        assert!(
            !tags2.contains(&"path_churn"),
            "identical publication churns nothing: {tags2:?}"
        );
    }

    #[test]
    fn journal_records_failures_and_restores() {
        let g = gen::cycle_graph(6);
        let mut eng = Engine::new(
            g,
            EngineConfig {
                sparsity: 4,
                trees: 3,
                epoch_batch: 4,
                seed: 5,
                ..EngineConfig::default()
            },
        );
        let journal = Arc::new(Journal::new());
        eng.attach_journal(Arc::clone(&journal));
        eng.ingest(Request::unit(NodeId(0), NodeId(3)));
        eng.run_epoch();
        eng.fail_edges(&[EdgeId(0)]);
        eng.ingest(Request::unit(NodeId(0), NodeId(3)));
        eng.run_epoch();
        eng.restore_all();
        let events = journal.events();
        let fail = events
            .iter()
            .find_map(|(_, e)| match e {
                JournalEvent::EdgeFail { epoch, edges } => Some((*epoch, edges.clone())),
                _ => None,
            })
            .expect("edge_fail recorded");
        assert_eq!(fail, (1, vec![0]), "failure tagged with the next epoch");
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, JournalEvent::CacheInvalidate { epoch: 1, count: 1 })),
            "invalidation journaled"
        );
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, JournalEvent::EdgeRestore { restored: 1, .. })),
            "restore journaled"
        );
        // the degraded epoch's summary carries the live failure count
        assert!(events.iter().any(|(_, e)| matches!(
            e,
            JournalEvent::EpochEnd {
                epoch: 1,
                failed_edges: 1,
                ..
            }
        )));
    }

    #[test]
    fn compare_fresh_records_baseline() {
        let mut eng = small_engine(true);
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        let snap = eng.run_epoch();
        let fresh = snap.fresh_congestion.expect("compare_fresh on");
        assert!(fresh.is_finite() && fresh > 0.0);
        // same optimizer, same instance family: within a loose factor
        assert!(snap.congestion <= fresh * 3.0 + 1e-9);
        assert!(fresh <= snap.congestion * 3.0 + 1e-9);
    }

    #[test]
    fn integral_mode_publishes_integral_rates() {
        let g = gen::hypercube(3);
        let mut eng = Engine::new(
            g,
            EngineConfig {
                sparsity: 2,
                trees: 3,
                integral: true,
                seed: 3,
                ..EngineConfig::default()
            },
        );
        for i in 0..4u32 {
            eng.ingest(Request::unit(NodeId(i), NodeId(7 - i)));
        }
        let snap = eng.run_epoch();
        assert!(snap.congestion >= 1.0 - 1e-9, "unit demands, integral MLU");
        for r in &snap.routes {
            let total: f64 = r.paths.iter().map(|&(_, w)| w).sum();
            assert!((total - r.demand).abs() < 1e-9);
            for &(_, w) in &r.paths {
                assert!((w - w.round()).abs() < 1e-9, "integral rate");
            }
        }
    }
}
