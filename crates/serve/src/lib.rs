//! `sor-serve`: the online semi-oblivious routing engine.
//!
//! The paper's model is two-phase: sample a sparse path system from an
//! oblivious routing *once*, then re-optimize sending rates whenever the
//! demand is revealed. Batch experiments pay the sampling phase on every
//! run; a long-running service shouldn't. This crate turns the model into
//! an engine: requests stream in, get batched into epochs, and each epoch
//! is answered by rate re-optimization restricted to a *cached* sparse
//! path system — sampling happens only on cache misses.
//!
//! * [`cache`] — sharded, capacity-bounded LRU cache of sampled path
//!   systems, keyed by (graph fingerprint, pair-set fingerprint,
//!   sparsity), with selective failure invalidation.
//! * [`engine`] — the epoch lifecycle: ingest → admit (backpressure) →
//!   solve (cached system, failures degrade + fall back) → publish.
//!   Snapshots publish in one of two formats behind
//!   [`engine::SnapshotFormat`]: explicit per-pair edge lists, or
//!   `sor-compact`'s o(n)-state next-hop tables — the published routes
//!   are bit-identical either way (the codec is verified lossless), and
//!   compact snapshots carry their size accounting.
//! * [`workload`] — deterministic closed-loop arrival processes and
//!   failure schedules for the CLI, benches, and tests.
//! * [`telemetry`] — the live plane: per-epoch window rates, streaming
//!   tail percentiles, the epoch timeline, SLO watchdogs, and the
//!   Prometheus-style scrape endpoint (`sor serve --telemetry-addr`).
//!
//! On top of telemetry sits the flight recorder: an attached
//! `sor_obs::Journal` receives a causal event for every lifecycle step
//! (admissions, cache movement, failures, fallbacks, re-opt summaries,
//! top-k edge loads, path churn), and an armed
//! [`engine::BreachDumpConfig`] snapshots the ring to disk whenever an
//! epoch trips an SLO rule — the artifact `sor forensics` ingests.
//!
//! Everything is bit-deterministic for a fixed seed, with or without
//! `sor-obs` capture, telemetry, *or* the journal attached — the engine
//! sits under the repo's perf gate.

#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod telemetry;
pub mod workload;

pub use cache::{
    graph_fingerprint, pairs_fingerprint, CacheDeltas, CacheKey, CacheStats, PathSystemCache,
};
pub use engine::{
    BreachDumpConfig, Engine, EngineConfig, EpochSnapshot, PublishedRoute, Request, SnapshotFormat,
};
pub use telemetry::{EpochWalls, ServeTelemetry};
pub use workload::{
    matching_patterns, run_workload, run_workload_with_observers, run_workload_with_patterns,
    run_workload_with_telemetry, scenario_patterns, ServeObservers, WorkloadConfig, WorkloadReport,
};
