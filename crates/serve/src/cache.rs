//! Sharded, capacity-bounded cache of sampled path systems.
//!
//! The semi-oblivious model's whole point is that the expensive phase —
//! building an oblivious routing and sampling a sparse path system from
//! it — happens *once*, while rate re-optimization happens per demand.
//! The online engine amortizes the expensive phase across epochs by
//! keeping sampled systems here, keyed by what they were sampled *for*:
//! the graph (fingerprint), the ordered pair set (fingerprint), and the
//! per-pair sparsity `s`.
//!
//! Entries are `Arc<PathSystem>`: LRU eviction and failure invalidation
//! remove an entry from the cache's index, but a solver holding the Arc
//! keeps routing on it safely — an in-flight system is never dropped out
//! from under its user.
//!
//! Shards are `parking_lot::Mutex`es over `BTreeMap`s (deterministic
//! iteration, so eviction order is reproducible). The build closure of
//! [`PathSystemCache::get_or_insert_with`] runs *while the shard lock is
//! held*: concurrent requests for the same key produce exactly one miss
//! and N−1 hits, which keeps the hit/miss counters exact — a property
//! the concurrency tests pin down.

use crate::engine::SnapshotFormat;
use sor_core::PathSystem;
use sor_graph::{EdgeId, Graph, NodeId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

pub(crate) fn fnv1a_u64(hash: u64, v: u64) -> u64 {
    fnv1a(hash, &v.to_le_bytes())
}

/// Deterministic fingerprint of a graph's structure: vertex/edge counts
/// plus every edge's endpoints and capacity bits. Two graphs with the same
/// fingerprint are (with overwhelming probability) the same routing
/// instance, so their sampled path systems are interchangeable.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = fnv1a_u64(FNV_OFFSET, g.num_nodes() as u64);
    h = fnv1a_u64(h, g.num_edges() as u64);
    for e in g.edges() {
        h = fnv1a_u64(h, u64::from(e.u.0));
        h = fnv1a_u64(h, u64::from(e.v.0));
        h = fnv1a_u64(h, e.cap.to_bits());
    }
    h
}

/// Deterministic fingerprint of an ordered pair set (order-sensitive:
/// demand entries are kept sorted upstream, so equal pair sets hash
/// equal).
pub fn pairs_fingerprint(pairs: &[(NodeId, NodeId)]) -> u64 {
    let mut h = fnv1a_u64(FNV_OFFSET, pairs.len() as u64);
    for &(s, t) in pairs {
        h = fnv1a_u64(h, u64::from(s.0));
        h = fnv1a_u64(h, u64::from(t.0));
    }
    h
}

/// Cache key: which instance a path system was sampled for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// [`graph_fingerprint`] of the routing instance's graph.
    pub graph_fp: u64,
    /// [`pairs_fingerprint`] of the ordered pair set the sample covers.
    pub pairs_fp: u64,
    /// Per-pair sample count `s` the system was drawn with.
    pub sparsity: usize,
}

impl CacheKey {
    /// Key for a (graph, pair set, sparsity) instance.
    pub fn new(g: &Graph, pairs: &[(NodeId, NodeId)], sparsity: usize) -> Self {
        CacheKey {
            graph_fp: graph_fingerprint(g),
            pairs_fp: pairs_fingerprint(pairs),
            sparsity,
        }
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut h = fnv1a_u64(FNV_OFFSET, self.graph_fp);
        h = fnv1a_u64(h, self.pairs_fp);
        h = fnv1a_u64(h, self.sparsity as u64);
        // sor-check: allow(lossy-cast) — value is reduced mod `shards` first
        #[allow(clippy::cast_possible_truncation)]
        {
            (h % shards.max(1) as u64) as usize
        }
    }
}

struct Entry {
    system: Arc<PathSystem>,
    /// Snapshot format the entry was inserted under — diagnostic truth
    /// for "what encoding is this epoch actually serving from".
    encoding: SnapshotFormat,
    last_used: u64,
}

type Shard = parking_lot::Mutex<BTreeMap<CacheKey, Entry>>;

/// Point-in-time counter snapshot of a [`PathSystemCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the build closure.
    pub misses: u64,
    /// Entries removed by LRU capacity pressure.
    pub evictions: u64,
    /// Entries removed because a failed edge appeared in their paths.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Per-epoch movement of the cache counters: the difference between two
/// [`CacheStats`] snapshots. The engine stamps one of these into every
/// [`EpochSnapshot`](crate::EpochSnapshot) so the timeline and the
/// cumulative `--metrics-out` counters describe the same events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheDeltas {
    /// Hits since the previous epoch's snapshot.
    pub hits: u64,
    /// Misses since the previous epoch's snapshot.
    pub misses: u64,
    /// LRU evictions since the previous epoch's snapshot.
    pub evictions: u64,
    /// Failure invalidations since the previous epoch's snapshot
    /// (includes `fail_edges` calls between the two epochs).
    pub invalidations: u64,
}

impl CacheStats {
    /// Counter movement from `prev` to `self` (saturating: a counter
    /// reset between snapshots reads as zero movement, not a wrap).
    pub fn delta_since(&self, prev: &CacheStats) -> CacheDeltas {
        CacheDeltas {
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            evictions: self.evictions.saturating_sub(prev.evictions),
            invalidations: self.invalidations.saturating_sub(prev.invalidations),
        }
    }
}

/// Sharded LRU cache of sampled path systems (see module docs).
pub struct PathSystemCache {
    shards: Vec<Shard>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PathSystemCache {
    /// Default shard count. Small: keys are few (pattern pool sized), and
    /// the win is lock splitting, not hash-table scale.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Cache holding at most `capacity` entries total, spread over
    /// [`PathSystemCache::DEFAULT_SHARDS`] shards (per-shard capacity is
    /// the ceiling split, so tiny capacities still admit one entry per
    /// shard).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(
            capacity.div_ceil(Self::DEFAULT_SHARDS),
            Self::DEFAULT_SHARDS,
        )
    }

    /// Cache with an explicit shard layout: `shards` shards of
    /// `per_shard_capacity` entries each. Tests use a single shard to make
    /// eviction order fully scripted.
    pub fn with_shards(per_shard_capacity: usize, shards: usize) -> Self {
        assert!(per_shard_capacity >= 1, "cache needs capacity >= 1");
        assert!(shards >= 1, "cache needs at least one shard");
        PathSystemCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up `key`, building and inserting the system on a miss.
    /// Returns the shared system and whether this was a hit. The build
    /// closure runs under the shard lock, so concurrent lookups of one
    /// key cost exactly one build; if the insert pushes the shard over
    /// capacity, the least-recently-used entry is evicted (outstanding
    /// `Arc`s to it stay valid).
    /// `encoding` tags the entry with the snapshot format it serves
    /// (recorded on insert, readable via [`PathSystemCache::encoding`]).
    pub fn get_or_insert_with(
        &self,
        key: CacheKey,
        encoding: SnapshotFormat,
        build: impl FnOnce() -> PathSystem,
    ) -> (Arc<PathSystem>, bool) {
        // sor-check: allow(panic-path) — shard_of is modulo len, always in bounds
        let shard = &self.shards[key.shard_of(self.shards.len())];
        let mut map = shard.lock();
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(entry) = map.get_mut(&key) {
            entry.last_used = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            sor_obs::counter_add!("serve/cache_hits");
            return (Arc::clone(&entry.system), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        sor_obs::counter_add!("serve/cache_misses");
        // sor-check: allow(held-lock) — single-flight by design: the shard stays locked through the build so concurrent misses on one key cost one solve
        let system = Arc::new(build());
        map.insert(
            key,
            Entry {
                system: Arc::clone(&system),
                encoding,
                last_used: now,
            },
        );
        if map.len() > self.per_shard_capacity {
            // Deterministic LRU: ticks are unique, so the minimum is
            // unambiguous; BTreeMap iteration breaks (impossible) ties
            // by key order.
            if let Some(&victim) = map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, _)| k)
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                sor_obs::counter_add!("serve/cache_evictions");
            }
        }
        (system, false)
    }

    /// Peek without affecting LRU order or counters (tests, diagnostics).
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<PathSystem>> {
        // sor-check: allow(panic-path) — shard_of is modulo len, always in bounds
        let shard = &self.shards[key.shard_of(self.shards.len())];
        shard.lock().get(key).map(|e| Arc::clone(&e.system))
    }

    /// The snapshot format a resident entry was inserted under (peek
    /// semantics: no LRU or counter movement; `None` if absent).
    pub fn encoding(&self, key: &CacheKey) -> Option<SnapshotFormat> {
        // sor-check: allow(panic-path) — shard_of is modulo len, always in bounds
        let shard = &self.shards[key.shard_of(self.shards.len())];
        shard.lock().get(key).map(|e| e.encoding)
    }

    /// Drop every entry whose system routes over any of `failed` —
    /// the edge-down coherence step. Untouched entries (systems disjoint
    /// from the failure) survive, which is the point: a failure on one
    /// side of the network must not cold-start the whole cache. Returns
    /// the number of invalidated entries.
    pub fn invalidate_edges(&self, failed: &[EdgeId]) -> usize {
        if failed.is_empty() {
            return 0;
        }
        let mut removed = 0usize;
        for shard in &self.shards {
            let mut map = shard.lock();
            map.retain(|_, entry| {
                let uses = entry.system.pairs().any(|(_, _, paths)| {
                    paths
                        .iter()
                        .any(|p| failed.iter().any(|&e| p.contains_edge(e)))
                });
                if uses {
                    removed += 1;
                }
                !uses
            });
        }
        self.invalidations
            .fetch_add(removed as u64, Ordering::Relaxed);
        sor_obs::count_usize("serve/cache_invalidations", removed);
        removed
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_graph::{bfs_path, gen};

    fn system_for(g: &Graph, s: u32, t: u32) -> PathSystem {
        let mut sys = PathSystem::new();
        let p = bfs_path(g, NodeId(s), NodeId(t)).expect("connected");
        sys.insert(NodeId(s), NodeId(t), p);
        sys
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let g = gen::cycle_graph(6);
        let cache = PathSystemCache::new(4);
        let key = CacheKey::new(&g, &[(NodeId(0), NodeId(3))], 2);
        let (a, hit) =
            cache.get_or_insert_with(key, SnapshotFormat::Explicit, || system_for(&g, 0, 3));
        assert!(!hit);
        let (b, hit) =
            cache.get_or_insert_with(key, SnapshotFormat::Explicit, || panic!("must not rebuild"));
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_but_arc_survives() {
        let g = gen::cycle_graph(8);
        // one shard, capacity 2 → fully scripted eviction order
        let cache = PathSystemCache::with_shards(2, 1);
        let k = |t: u32| CacheKey::new(&g, &[(NodeId(0), NodeId(t))], 1);
        let (first, _) =
            cache.get_or_insert_with(k(2), SnapshotFormat::Explicit, || system_for(&g, 0, 2));
        cache.get_or_insert_with(k(3), SnapshotFormat::Explicit, || system_for(&g, 0, 3));
        // touch k(2) so k(3) is the LRU victim
        cache.get_or_insert_with(k(2), SnapshotFormat::Explicit, || panic!("hit expected"));
        cache.get_or_insert_with(k(4), SnapshotFormat::Explicit, || system_for(&g, 0, 4));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(&k(3)).is_none(), "LRU entry evicted");
        assert!(cache.peek(&k(2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        // the in-flight Arc from before the evictions still reads fine
        assert!(first.covers(NodeId(0), NodeId(2)));
    }

    #[test]
    fn invalidation_is_selective() {
        let g = gen::cycle_graph(6);
        let cache = PathSystemCache::new(8);
        let k1 = CacheKey::new(&g, &[(NodeId(0), NodeId(1))], 1);
        let k2 = CacheKey::new(&g, &[(NodeId(3), NodeId(4))], 1);
        cache.get_or_insert_with(k1, SnapshotFormat::Explicit, || system_for(&g, 0, 1));
        cache.get_or_insert_with(k2, SnapshotFormat::Explicit, || system_for(&g, 3, 4));
        // edge 0 is {0,1}: only k1's single-hop path crosses it
        let removed = cache.invalidate_edges(&[EdgeId(0)]);
        assert_eq!(removed, 1);
        assert!(cache.peek(&k1).is_none());
        assert!(cache.peek(&k2).is_some());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.invalidate_edges(&[]), 0);
    }

    #[test]
    fn stats_deltas_track_movement() {
        let g = gen::cycle_graph(6);
        let cache = PathSystemCache::new(4);
        let before = cache.stats();
        let key = CacheKey::new(&g, &[(NodeId(0), NodeId(3))], 2);
        cache.get_or_insert_with(key, SnapshotFormat::Explicit, || system_for(&g, 0, 3));
        cache.get_or_insert_with(key, SnapshotFormat::Explicit, || panic!("hit expected"));
        let mid = cache.stats();
        let d = mid.delta_since(&before);
        assert_eq!(
            (d.hits, d.misses, d.evictions, d.invalidations),
            (1, 1, 0, 0)
        );
        // no movement ⇒ all-zero deltas; reversed order saturates to zero
        assert_eq!(mid.delta_since(&mid), CacheDeltas::default());
        assert_eq!(before.delta_since(&mid), CacheDeltas::default());
    }

    #[test]
    fn entries_record_their_encoding() {
        let g = gen::cycle_graph(6);
        let cache = PathSystemCache::new(4);
        let k1 = CacheKey::new(&g, &[(NodeId(0), NodeId(2))], 1);
        let k2 = CacheKey::new(&g, &[(NodeId(1), NodeId(4))], 1);
        cache.get_or_insert_with(k1, SnapshotFormat::Explicit, || system_for(&g, 0, 2));
        cache.get_or_insert_with(k2, SnapshotFormat::Compact, || system_for(&g, 1, 4));
        assert_eq!(cache.encoding(&k1), Some(SnapshotFormat::Explicit));
        assert_eq!(cache.encoding(&k2), Some(SnapshotFormat::Compact));
        let missing = CacheKey::new(&g, &[(NodeId(2), NodeId(5))], 1);
        assert_eq!(cache.encoding(&missing), None);
        // peek semantics: reading the tag moved no counters
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (0, 2));
    }

    #[test]
    fn fingerprints_separate_instances() {
        let g1 = gen::cycle_graph(6);
        let g2 = gen::cycle_graph(7);
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        assert_eq!(
            graph_fingerprint(&g1),
            graph_fingerprint(&gen::cycle_graph(6))
        );
        let p1 = [(NodeId(0), NodeId(3))];
        let p2 = [(NodeId(0), NodeId(4))];
        assert_ne!(pairs_fingerprint(&p1), pairs_fingerprint(&p2));
        assert_ne!(
            CacheKey::new(&g1, &p1, 2),
            CacheKey::new(&g1, &p1, 3),
            "sparsity is part of the key"
        );
    }
}
