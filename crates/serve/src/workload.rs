//! Closed-loop seeded workloads: a deterministic arrival process over a
//! pool of recurring demand patterns, with an optional failure schedule.
//!
//! The pattern pool is the reason the cache earns its keep: real traffic
//! engineering sees the same top-of-rack pair sets over and over, so the
//! arrival process here re-picks from a small pool of pair sets — every
//! re-pick after the first is a warm epoch. The failure schedule takes a
//! (connectivity-preserving) random edge down mid-run and restores it a
//! few epochs later, exercising the invalidate → degrade → fall back →
//! recover path end to end.

use crate::cache::CacheStats;
use crate::engine::{BreachDumpConfig, Engine, EngineConfig, EpochSnapshot, Request};
use crate::telemetry::ServeTelemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sor_core::sample::demand_pairs;
use sor_flow::demand::random_matching;
use sor_graph::{connected_without, EdgeId, Graph, NodeId};
use sor_obs::Journal;
use sor_te::Scenario;
use std::sync::Arc;

/// Arrival-process and schedule knobs (engine knobs live in
/// [`EngineConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Epochs to run.
    pub epochs: u64,
    /// Requests enqueued per epoch tick.
    pub rate: usize,
    /// Recurring patterns in the pool.
    pub patterns: usize,
    /// Pairs per pattern.
    pub pairs_per_pattern: usize,
    /// Fail one random (connectivity-preserving) edge at this epoch.
    pub fail_at: Option<u64>,
    /// Restore failed edges this many epochs after `fail_at`.
    pub restore_after: u64,
    /// Seed for the arrival process and failure choice (the engine has
    /// its own seed in [`EngineConfig`]).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            epochs: 8,
            rate: 8,
            patterns: 3,
            pairs_per_pattern: 4,
            fail_at: None,
            restore_after: 2,
            seed: 0,
        }
    }
}

/// Observation planes a closed-loop run can attach to its engine. All of
/// them are strictly read-only over the published snapshots — attaching
/// any combination leaves the [`WorkloadReport`] bit-identical.
#[derive(Clone, Default)]
pub struct ServeObservers {
    /// Live telemetry plane (windows, timeline, SLO watchdog).
    pub telemetry: Option<Arc<ServeTelemetry>>,
    /// Flight recorder (causal event journal).
    pub journal: Option<Arc<Journal>>,
    /// Breach-triggered journal dumps; only fires when a `journal` is
    /// attached and the `telemetry` plane has SLO rules armed.
    pub breach_dump: Option<BreachDumpConfig>,
}

impl ServeObservers {
    /// Telemetry only — the pre-flight-recorder observation setup.
    pub fn telemetry(t: Arc<ServeTelemetry>) -> Self {
        ServeObservers {
            telemetry: Some(t),
            ..ServeObservers::default()
        }
    }
}

/// What a closed-loop run produced.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Every epoch's published snapshot, in order.
    pub snapshots: Vec<EpochSnapshot>,
    /// Final cache counters.
    pub cache: CacheStats,
    /// Requests admitted across all epochs.
    pub admitted: usize,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// `(epoch, edge)` failure events the schedule injected.
    pub failures: Vec<(u64, EdgeId)>,
    /// Breach-dump artifacts the engine wrote, in breach order (empty
    /// unless [`ServeObservers::breach_dump`] was armed).
    pub breach_dumps: Vec<String>,
}

impl WorkloadReport {
    /// Mean congestion over non-empty epochs.
    pub fn mean_congestion(&self) -> f64 {
        let solved: Vec<f64> = self
            .snapshots
            .iter()
            .filter(|s| s.admitted > 0)
            .map(|s| s.congestion)
            .collect();
        if solved.is_empty() {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let n = solved.len() as f64;
            solved.iter().sum::<f64>() / n
        }
    }

    /// Mean of per-epoch `cached congestion / fresh-sample congestion`
    /// (1.0 ⇒ the cache costs nothing in quality), when the engine ran
    /// the comparison.
    pub fn mean_fresh_ratio(&self) -> Option<f64> {
        let ratios: Vec<f64> = self
            .snapshots
            .iter()
            .filter_map(|s| {
                s.fresh_congestion
                    .map(|fresh| s.congestion / fresh.max(1e-12))
            })
            .collect();
        if ratios.is_empty() {
            None
        } else {
            #[allow(clippy::cast_precision_loss)]
            let n = ratios.len() as f64;
            Some(ratios.iter().sum::<f64>() / n)
        }
    }

    /// Mean bits-per-node of the compact tables across epochs that
    /// published them, paired with the mean bits-per-node the explicit
    /// encoding would have cost. `None` unless the run used
    /// [`SnapshotFormat::Compact`](crate::engine::SnapshotFormat).
    pub fn mean_compact_bits_per_node(&self) -> Option<(f64, f64)> {
        let stats: Vec<_> = self.snapshots.iter().filter_map(|s| s.compact).collect();
        if stats.is_empty() {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = stats.len() as f64;
        Some((
            stats
                .iter()
                .map(sor_compact::CompactStats::bits_per_node)
                .sum::<f64>()
                / n,
            stats
                .iter()
                .map(sor_compact::CompactStats::explicit_bits_per_node)
                .sum::<f64>()
                / n,
        ))
    }
}

/// A pattern pool of seeded random matchings (disjoint pairs — the
/// permutation-style demands the paper's experiments use).
pub fn matching_patterns<R: Rng>(
    g: &Graph,
    patterns: usize,
    pairs_per_pattern: usize,
    rng: &mut R,
) -> Vec<Vec<(NodeId, NodeId)>> {
    (0..patterns)
        .map(|_| demand_pairs(&random_matching(g, pairs_per_pattern, rng)))
        .collect()
}

/// A pattern pool drawn from a TE scenario's pair mesh (WAN workloads:
/// repeated subsets of the full traffic matrix's support).
pub fn scenario_patterns<R: Rng>(
    scenario: &Scenario,
    patterns: usize,
    pairs_per_pattern: usize,
    rng: &mut R,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let mesh = scenario.pairs();
    assert!(!mesh.is_empty(), "scenario has no pairs");
    (0..patterns)
        .map(|_| {
            let want = pairs_per_pattern.min(mesh.len());
            let mut pat: Vec<(NodeId, NodeId)> = Vec::with_capacity(want);
            while pat.len() < want {
                // sor-check: allow(panic-path) — gen_range upper bound is mesh.len()
                let p = mesh[rng.gen_range(0..mesh.len())];
                if !pat.contains(&p) {
                    pat.push(p);
                }
            }
            pat
        })
        .collect()
}

/// Run the closed loop with a [`matching_patterns`] pool.
pub fn run_workload(g: &Graph, ecfg: EngineConfig, wcfg: &WorkloadConfig) -> WorkloadReport {
    run_workload_with_telemetry(g, ecfg, wcfg, None)
}

/// [`run_workload`] with a live telemetry plane attached to the engine.
/// Telemetry never changes the report (bit-identical snapshots either
/// way); it only populates windows/timeline/SLO state as epochs run.
pub fn run_workload_with_telemetry(
    g: &Graph,
    ecfg: EngineConfig,
    wcfg: &WorkloadConfig,
    telemetry: Option<Arc<ServeTelemetry>>,
) -> WorkloadReport {
    run_workload_with_observers(
        g,
        ecfg,
        wcfg,
        ServeObservers {
            telemetry,
            ..ServeObservers::default()
        },
    )
}

/// [`run_workload`] with any combination of observation planes attached
/// (telemetry, flight recorder, breach-triggered dumps). The report stays
/// bit-identical regardless of what is attached.
pub fn run_workload_with_observers(
    g: &Graph,
    ecfg: EngineConfig,
    wcfg: &WorkloadConfig,
    observers: ServeObservers,
) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(wcfg.seed ^ 0x5e57_ab1e);
    let patterns = matching_patterns(g, wcfg.patterns, wcfg.pairs_per_pattern, &mut rng);
    run_workload_inner(g, ecfg, wcfg, &patterns, observers)
}

/// Run the closed loop over an explicit pattern pool: each epoch picks a
/// pattern, enqueues `rate` unit requests cycling over its pairs, and
/// runs the engine; the failure schedule fires as configured.
pub fn run_workload_with_patterns(
    g: &Graph,
    ecfg: EngineConfig,
    wcfg: &WorkloadConfig,
    patterns: &[Vec<(NodeId, NodeId)>],
) -> WorkloadReport {
    run_workload_inner(g, ecfg, wcfg, patterns, ServeObservers::default())
}

fn run_workload_inner(
    g: &Graph,
    ecfg: EngineConfig,
    wcfg: &WorkloadConfig,
    patterns: &[Vec<(NodeId, NodeId)>],
    observers: ServeObservers,
) -> WorkloadReport {
    assert!(!patterns.is_empty(), "workload needs at least one pattern");
    assert!(patterns.iter().all(|p| !p.is_empty()), "empty pattern");
    let _span = sor_obs::span("serve/workload");
    // Offset keeps arrival draws disjoint from pattern-pool draws when
    // the caller reuses one seed for both.
    let mut rng = StdRng::seed_from_u64(wcfg.seed.wrapping_add(0xa11_1f0));
    let mut engine = Engine::new(g.clone(), ecfg);
    if let Some(t) = observers.telemetry {
        engine.attach_telemetry(t);
    }
    if let Some(j) = observers.journal {
        engine.attach_journal(j);
    }
    if let Some(d) = observers.breach_dump {
        engine.set_breach_dump(d);
    }
    let mut snapshots = Vec::new();
    let mut failures = Vec::new();
    let mut admitted = 0usize;
    for epoch in 0..wcfg.epochs {
        if let Some(f) = wcfg.fail_at {
            if epoch == f {
                if let Some(victim) = pick_failable_edge(g, engine.failed_edges(), &mut rng) {
                    engine.fail_edges(&[victim]);
                    failures.push((epoch, victim));
                } else {
                    sor_obs::warn!("no connectivity-preserving edge to fail at epoch {epoch}");
                }
            }
            if epoch == f.saturating_add(wcfg.restore_after) {
                engine.restore_all();
            }
        }
        // sor-check: allow(panic-path) — gen_range bound is patterns.len()
        let pat = &patterns[rng.gen_range(0..patterns.len())];
        for j in 0..wcfg.rate {
            // sor-check: allow(panic-path) — index is modulo pat.len(), non-empty asserted above
            let (s, t) = pat[j % pat.len()];
            engine.ingest(Request::unit(s, t));
        }
        let snap = engine.run_epoch();
        admitted += snap.admitted;
        snapshots.push(snap);
    }
    WorkloadReport {
        snapshots,
        cache: engine.cache_stats(),
        admitted,
        rejected: engine.rejected_total(),
        failures,
        breach_dumps: engine.breach_dump_paths().to_vec(),
    }
}

/// A random edge whose removal (on top of `already_failed`) keeps the
/// graph connected; `None` after 64 unlucky draws.
fn pick_failable_edge<R: Rng>(g: &Graph, already_failed: &[EdgeId], rng: &mut R) -> Option<EdgeId> {
    for _ in 0..64 {
        let cand = EdgeId(rng.gen_range(0..EdgeId::from_usize(g.num_edges()).0));
        if already_failed.contains(&cand) {
            continue;
        }
        let mut all = already_failed.to_vec();
        all.push(cand);
        if connected_without(g, &all) {
            return Some(cand);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_graph::gen;

    fn ecfg(seed: u64) -> EngineConfig {
        EngineConfig {
            sparsity: 2,
            trees: 3,
            epoch_batch: 16,
            queue_bound: 64,
            cache_capacity: 8,
            seed,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn recurring_patterns_warm_the_cache() {
        let g = gen::hypercube(3);
        let wcfg = WorkloadConfig {
            epochs: 10,
            rate: 6,
            patterns: 2,
            pairs_per_pattern: 3,
            seed: 21,
            ..WorkloadConfig::default()
        };
        let report = run_workload(&g, ecfg(21), &wcfg);
        assert_eq!(report.snapshots.len(), 10);
        assert!(report.admitted > 0);
        // 2 patterns, 10 epochs: at most 2 misses, the rest hits
        assert!(report.cache.misses <= 2);
        assert_eq!(report.cache.hits + report.cache.misses, 10);
        assert!(report.mean_congestion() > 0.0);
    }

    #[test]
    fn failure_schedule_fires_and_recovers() {
        let g = gen::cycle_graph(8);
        let wcfg = WorkloadConfig {
            epochs: 8,
            rate: 4,
            patterns: 1,
            pairs_per_pattern: 2,
            fail_at: Some(3),
            restore_after: 2,
            seed: 9,
        };
        let report = run_workload(&g, ecfg(9), &wcfg);
        assert_eq!(report.failures.len(), 1);
        let (fe, _) = report.failures[0];
        assert_eq!(fe, 3);
        // every epoch still served its demand
        for s in &report.snapshots {
            assert!(s.admitted > 0);
            assert!(s.congestion > 0.0);
            assert_eq!(s.unserved_pairs, 0, "cycle minus one edge stays connected");
        }
    }

    #[test]
    fn scenario_pattern_pool_is_well_formed() {
        let sc = Scenario::abilene();
        let mut rng = StdRng::seed_from_u64(4);
        let pats = scenario_patterns(&sc, 3, 5, &mut rng);
        assert_eq!(pats.len(), 3);
        for p in &pats {
            assert_eq!(p.len(), 5);
            for &(s, t) in p {
                assert!(s != t);
            }
        }
    }
}
