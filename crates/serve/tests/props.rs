//! Property-based tests for the serving engine's core containment
//! invariant: epochs answered from the cache never route outside the
//! sampled path system.
//!
//! Failing cases are recorded in `props.proptest-regressions` (one
//! deduplicated `cc <hash>` line per minimal counterexample) and re-run
//! before new cases.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sor_graph::{gen, EdgeId, Graph, NodeId};
use sor_serve::{Engine, EngineConfig, Request};
use std::collections::BTreeSet;

fn arb_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (2.5 * (n as f64).ln() / n as f64).min(0.9);
    gen::erdos_renyi_connected(n, p, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Semi-oblivious containment, online edition: whatever demand an
    /// epoch admits, every published route is one of the sampled
    /// system's paths for its pair — the engine re-optimizes *rates*,
    /// never *paths*. Checked across cold (miss) and warm (hit) epochs.
    #[test]
    fn published_routes_stay_inside_sampled_system(
        seed in 0u64..200,
        n in 8usize..14,
        sparsity in 1usize..4,
        num_pairs in 2usize..5,
    ) {
        let g = arb_graph(n, seed);
        let mut engine = Engine::new(g, EngineConfig {
            sparsity,
            trees: 3,
            seed,
            ..EngineConfig::default()
        });
        let mut pair_rng = StdRng::seed_from_u64(seed ^ 0xab);
        let pairs: Vec<(NodeId, NodeId)> = (0..num_pairs)
            .map(|_| {
                let s = pair_rng.gen_range(0..n);
                let mut t = pair_rng.gen_range(0..n - 1);
                if t >= s {
                    t += 1;
                }
                (NodeId::from_usize(s), NodeId::from_usize(t))
            })
            .collect();

        // Two epochs over the same pairs: the first misses and samples,
        // the second hits the cache. The invariant must hold for both.
        for round in 0..2u32 {
            for &(s, t) in &pairs {
                engine.ingest(Request::unit(s, t));
            }
            let snap = engine.run_epoch();
            prop_assert_eq!(snap.cache_hit, round == 1);
            let system = engine.last_system().expect("epoch solved a system");
            let system_edges: BTreeSet<EdgeId> = system
                .pairs()
                .flat_map(|(_, _, paths)| {
                    paths.iter().flat_map(|p| p.edges().iter().copied())
                })
                .collect();
            for route in &snap.routes {
                let candidates: Vec<&[EdgeId]> = system
                    .paths(route.s, route.t)
                    .iter()
                    .map(|p| p.edges())
                    .collect();
                prop_assert!(!candidates.is_empty(), "pair must be covered");
                for (edges, rate) in &route.paths {
                    prop_assert!(*rate > 0.0);
                    prop_assert!(
                        candidates.contains(&edges.as_slice()),
                        "published path is not one of the sampled candidates"
                    );
                    for e in edges {
                        prop_assert!(
                            system_edges.contains(e),
                            "published route uses edge {e:?} outside the sampled system"
                        );
                    }
                }
            }
        }
    }
}
