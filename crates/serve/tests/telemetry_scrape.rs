//! End-to-end exercise of the live telemetry plane: run a seeded
//! workload with telemetry attached, scrape the HTTP endpoint with a
//! plain `std::net::TcpStream` client, and check the exposition,
//! timeline, and health documents. Also drives the SLO watchdog over a
//! seeded failure workload and asserts the structured breach events.
//!
//! CI runs this test binary as its scrape smoke — keep it dependent on
//! nothing but the workspace and the loopback interface.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_graph::gen;
use sor_obs::SloConfig;
use sor_serve::{run_workload_with_telemetry, EngineConfig, ServeTelemetry, WorkloadConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Tests share the process-global metrics registry and log sink.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_instrumented(slo: SloConfig, fail_at: Option<u64>) -> Arc<ServeTelemetry> {
    let g = gen::random_regular(16, 4, &mut StdRng::seed_from_u64(11));
    let ecfg = EngineConfig {
        sparsity: 3,
        trees: 4,
        epoch_batch: 16,
        queue_bound: 32,
        cache_capacity: 8,
        compare_fresh: true,
        seed: 11,
        ..EngineConfig::default()
    };
    let wcfg = WorkloadConfig {
        epochs: 6,
        rate: 8,
        patterns: 2,
        pairs_per_pattern: 4,
        fail_at,
        restore_after: 2,
        seed: 11,
    };
    let telemetry = Arc::new(ServeTelemetry::new(slo));
    let report = run_workload_with_telemetry(&g, ecfg, &wcfg, Some(Arc::clone(&telemetry)));
    assert!(report.admitted > 0, "workload admitted nothing");
    telemetry
}

/// Minimal HTTP/1.0 GET over a std TCP client; returns (status line,
/// full header block, body) so callers can assert on headers like
/// `Content-Type` as well as the document.
fn get_full(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: sor\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, head.to_owned(), body.to_owned())
}

/// [`get_full`] without the header block.
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let (status, _, body) = get_full(addr, path);
    (status, body)
}

/// Every non-comment exposition line must be `name[{labels}] value` with
/// a parseable value.
fn assert_well_formed_exposition(body: &str) {
    let mut metric_lines = 0usize;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
        assert!(!name.is_empty(), "empty metric name in {line:?}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "unparseable sample value in {line:?}"
        );
        if let Some(open) = name.find('{') {
            assert!(name.ends_with('}'), "unbalanced labels in {line:?}");
            assert!(open > 0, "label-only metric name in {line:?}");
        }
        metric_lines += 1;
    }
    assert!(metric_lines > 0, "exposition has no samples");
}

#[test]
fn scrape_endpoint_serves_metrics_timeline_and_health() {
    let _guard = serial();
    sor_obs::reset();
    sor_obs::set_enabled(true);
    let telemetry = run_instrumented(SloConfig::disabled(), None);
    sor_obs::set_enabled(false);

    let mut server = telemetry
        .serve_http("127.0.0.1:0")
        .expect("bind loopback scrape endpoint");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "bad /metrics status: {status}");
    assert_well_formed_exposition(&body);
    assert!(
        body.lines().any(|l| l.starts_with("sor_serve_")),
        "no sor_serve_ metric in exposition:\n{body}"
    );
    assert!(
        body.contains("le=\"+Inf\""),
        "histogram exposition lacks the +Inf overflow bucket"
    );
    assert!(body.contains("# TYPE"), "exposition lacks TYPE metadata");
    assert!(
        body.contains("quantile=\"0.99\""),
        "exposition lacks streaming tail quantiles"
    );

    let (status, head, body) = get_full(addr, "/timeline");
    assert!(status.contains("200"), "bad /timeline status: {status}");
    assert!(
        head.contains("Content-Type: application/json\r\n"),
        "/timeline must declare a JSON content type: {head}"
    );
    assert!(body.contains("\"sor-timeline/1\""), "timeline format tag");
    assert!(body.contains("\"epochs\""), "timeline epochs array");
    let parsed = sor_obs::parse_json(&body).expect("timeline body parses as JSON");
    let epochs = parsed
        .get("epochs")
        .and_then(|v| v.as_arr())
        .expect("epochs");
    assert_eq!(epochs.len(), 6, "one timeline record per epoch");

    let (status, head, body) = get_full(addr, "/health");
    assert!(status.contains("200"), "bad /health status: {status}");
    assert!(
        head.contains("Content-Type: application/json\r\n"),
        "/health must declare a JSON content type: {head}"
    );
    assert!(
        body.contains("\"sor-health/1\""),
        "health format tag: {body}"
    );
    assert!(body.contains("health:"), "health summary body: {body}");
    let parsed = sor_obs::parse_json(&body).expect("health body parses as JSON");
    assert_eq!(
        parsed
            .get("healthy")
            .and_then(|v| v.as_str().map(str::to_owned)),
        None,
        "healthy must be a JSON bool, not a string"
    );
    assert!(parsed
        .get("epochs_evaluated")
        .and_then(|v| v.as_u64())
        .is_some());

    let (status, body) = get(addr, "/timeline?last=2");
    assert!(status.contains("200"), "bad truncated status: {status}");
    let parsed = sor_obs::parse_json(&body).expect("truncated timeline parses as JSON");
    let epochs = parsed
        .get("epochs")
        .and_then(|v| v.as_arr())
        .expect("epochs");
    assert_eq!(epochs.len(), 2, "last=2 keeps exactly the 2 newest epochs");
    let newest: Vec<u64> = epochs
        .iter()
        .filter_map(|e| e.get("epoch").and_then(|v| v.as_u64()))
        .collect();
    assert_eq!(
        newest,
        vec![4, 5],
        "truncation keeps the tail, not the head"
    );

    // a `last` larger than the ring is the full timeline
    let (status, body) = get(addr, "/timeline?last=100");
    assert!(status.contains("200"), "bad over-sized status: {status}");
    assert!(body.matches("\"epoch\":").count() >= 6);

    // malformed queries are client errors, not missing routes
    for bad in [
        "/timeline?",
        "/timeline?last=",
        "/timeline?last=x",
        "/metrics?x=1",
    ] {
        let (status, _) = get(addr, bad);
        assert!(status.contains("400"), "{bad} must 400, got: {status}");
    }

    let (status, _) = get(addr, "/nope");
    assert!(status.contains("404"), "unknown path must 404: {status}");

    server.shutdown();
}

#[test]
fn slo_breaches_on_failure_workload_emit_structured_events() {
    let _guard = serial();
    sor_obs::reset();
    sor_obs::set_enabled(true);
    sor_obs::set_sink(sor_obs::Sink::Memory);
    let _ = sor_obs::take_captured();

    // thresholds no real run can satisfy: any positive epoch wall
    // breaches p99, any hit rate below 200% breaches the minimum
    let slo = SloConfig {
        max_congestion_ratio: Some(1e9),
        max_p99_epoch_wall_ms: Some(0.0),
        min_cache_hit_rate: Some(2.0),
        max_fallback_fraction: Some(1.0),
    };
    let telemetry = run_instrumented(slo, Some(2));
    let captured = sor_obs::take_captured();
    sor_obs::set_sink(sor_obs::Sink::Stderr);
    sor_obs::set_enabled(false);

    let breach_lines: Vec<&String> = captured
        .iter()
        .filter(|l| l.contains("SLO breach epoch="))
        .collect();
    assert!(
        !breach_lines.is_empty(),
        "no structured breach events captured: {captured:?}"
    );
    for line in &breach_lines {
        assert!(line.starts_with("warn "), "breach must log at warn: {line}");
        assert!(line.contains(" rule="), "breach line lacks rule: {line}");
        assert!(line.contains(" value="), "breach line lacks value: {line}");
        assert!(
            line.contains(" threshold="),
            "breach line lacks threshold: {line}"
        );
    }
    assert!(
        breach_lines
            .iter()
            .any(|l| l.contains("rule=max_p99_epoch_wall_ms")),
        "expected a p99 wall breach among {breach_lines:?}"
    );
    assert!(
        breach_lines
            .iter()
            .any(|l| l.contains("rule=min_cache_hit_rate")),
        "expected a hit-rate breach among {breach_lines:?}"
    );

    let summary = telemetry.watchdog().summary();
    assert_eq!(summary.epochs_evaluated, 6);
    assert!(!summary.healthy(), "breached run must report degraded");
    assert!(summary.total_breaches >= breach_lines.len() as u64);
    assert!(summary.render().contains("degraded"));

    // breaches also land on the matching timeline records
    let records = telemetry.timeline().records();
    assert!(
        records.iter().any(|r| !r.slo_breaches.is_empty()),
        "no timeline record carries its breaches"
    );
}
