//! Concurrency hammer for the sharded path-system cache.
//!
//! The cache's contract: `get_or_insert_with` takes one shard lock, so
//! concurrent lookups of one key cost exactly one build and the
//! hit/miss counters sum exactly; eviction removes an entry from the
//! map but never invalidates an `Arc` a caller already holds.
//!
//! The vendored `rayon` is a sequential stand-in, so real concurrency
//! comes from `std::thread::scope` (mirroring
//! `crates/obs/tests/concurrency.rs`). The cache itself is per-instance
//! state — no process-global registry — so the tests here need no
//! serialization lock; `sor-obs` capture stays disabled (its default)
//! so the obs-side counters are out of the picture.

use sor_core::PathSystem;
use sor_graph::{bfs_path, gen, EdgeId, NodeId};
use sor_serve::{CacheKey, PathSystemCache, SnapshotFormat};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const ITERS: usize = 500;

/// A distinct single-pair key: fingerprints are opaque u64s, so tests
/// may fabricate them directly.
fn key(i: u64) -> CacheKey {
    CacheKey {
        graph_fp: i,
        pairs_fp: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        sparsity: 1,
    }
}

fn tiny_system(tag: u64) -> PathSystem {
    let g = gen::cycle_graph(6);
    let mut sys = PathSystem::new();
    let s = NodeId::from_usize(usize::try_from(tag).unwrap_or(0) % 6);
    let t = NodeId::from_usize((usize::try_from(tag).unwrap_or(0) + 3) % 6);
    sys.insert(s, t, bfs_path(&g, s, t).expect("cycle is connected"));
    sys
}

#[test]
fn hammering_one_key_builds_once_and_counts_exactly() {
    let cache = PathSystemCache::with_shards(4, 4);
    let builds = AtomicU64::new(0);
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..ITERS {
                    let (sys, _) =
                        cache.get_or_insert_with(key(1), SnapshotFormat::Explicit, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            tiny_system(1)
                        });
                    assert_eq!(sys.num_pairs(), 1);
                }
            });
        }
    });
    // One thread lost the race and built; every other access hit.
    assert_eq!(builds.load(Ordering::Relaxed), 1);
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, (THREADS * ITERS) as u64 - 1);
    assert_eq!(stats.evictions, 0);
    assert_eq!(cache.len(), 1);
}

#[test]
fn disjoint_keys_from_many_threads_sum_exactly() {
    // Each thread works its own key range; totals decompose per thread.
    let cache = PathSystemCache::with_shards(ITERS, 8);
    thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            s.spawn(move || {
                let base = (t * ITERS) as u64;
                for i in 0..ITERS as u64 {
                    // miss, then hit, the same key
                    let (_, hit) =
                        cache.get_or_insert_with(key(base + i), SnapshotFormat::Explicit, || {
                            tiny_system(i)
                        });
                    assert!(!hit);
                    let (_, hit) =
                        cache.get_or_insert_with(key(base + i), SnapshotFormat::Explicit, || {
                            tiny_system(i)
                        });
                    assert!(hit);
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.misses, (THREADS * ITERS) as u64);
    assert_eq!(stats.hits, (THREADS * ITERS) as u64);
    // capacity was ITERS per shard × 8 shards ≥ THREADS*ITERS inserts,
    // but keys spread unevenly; evictions may occur — entries+evictions
    // must still account for every insert.
    assert_eq!(
        stats.evictions + stats.entries as u64,
        (THREADS * ITERS) as u64
    );
}

#[test]
fn eviction_never_drops_an_in_flight_arc() {
    // Capacity one entry per shard: nearly every insert evicts. Threads
    // hold the returned Arc and keep using it after it has certainly
    // been evicted — the data must stay alive and intact.
    let cache = PathSystemCache::with_shards(1, 1);
    thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            s.spawn(move || {
                let mut held: Vec<Arc<PathSystem>> = Vec::new();
                for i in 0..ITERS as u64 {
                    let tag = (t as u64) << 32 | i;
                    let (sys, _) =
                        cache.get_or_insert_with(key(tag), SnapshotFormat::Explicit, || {
                            tiny_system(i)
                        });
                    held.push(sys);
                    // Everything held so far is still a valid system.
                    for h in &held {
                        assert_eq!(h.num_pairs(), 1);
                        assert_eq!(h.sparsity(), 1);
                    }
                    if held.len() > 8 {
                        held.clear();
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    // Single shard of capacity 1: at most one resident entry...
    assert!(cache.len() <= 1);
    // ...and every insert beyond the survivor was evicted.
    assert_eq!(stats.evictions, stats.misses - cache.len() as u64);
}

#[test]
fn concurrent_invalidation_and_lookup_stay_coherent() {
    // Writers keep inserting systems that cross edge 0 of the cycle;
    // an invalidator keeps knocking them out. Every removal must be
    // counted, and at the end one sweep leaves the cache empty of any
    // entry crossing the failed edge.
    let cache = PathSystemCache::with_shards(64, 8);
    let g = gen::cycle_graph(4);
    thread::scope(|s| {
        for t in 0..4usize {
            let cache = &cache;
            let g = &g;
            s.spawn(move || {
                for i in 0..ITERS as u64 {
                    let tag = ((t as u64) << 32) | i;
                    cache.get_or_insert_with(key(tag), SnapshotFormat::Explicit, || {
                        let mut sys = PathSystem::new();
                        // the direct edge (0,1) is edge 0 in the cycle
                        sys.insert(
                            NodeId(0),
                            NodeId(1),
                            bfs_path(g, NodeId(0), NodeId(1)).expect("connected"),
                        );
                        sys
                    });
                }
            });
        }
        let cache = &cache;
        s.spawn(move || {
            for _ in 0..50 {
                cache.invalidate_edges(&[EdgeId(0)]);
                thread::yield_now();
            }
        });
    });
    let before = cache.len();
    let removed = cache.invalidate_edges(&[EdgeId(0)]);
    assert_eq!(removed, before, "every resident entry crossed edge 0");
    assert!(cache.is_empty());
    let stats = cache.stats();
    assert_eq!(stats.misses, 4 * ITERS as u64);
    assert_eq!(
        stats.invalidations,
        stats.misses - stats.evictions,
        "inserts = invalidated + evicted + resident(0)"
    );
}
