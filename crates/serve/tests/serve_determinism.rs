//! The serving engine must be bit-deterministic for a fixed seed, and
//! observability capture must never change what it publishes.
//!
//! Mirrors `tests/obs_determinism.rs` at the umbrella level: the full
//! closed-loop workload (arrival process, epoch solves, failure
//! schedule, recovery) runs twice with metric/span capture off and once
//! with it on, and every published snapshot — routes, rates, congestion
//! bits, cache/fallback accounting — must be identical across all three.
//!
//! The tests share the process-global metrics registry, so they
//! serialize on a local mutex.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_graph::gen;
use sor_obs::{Journal, JournalEvent, SloConfig};
use sor_serve::{
    run_workload, run_workload_with_observers, EngineConfig, EpochSnapshot, ServeObservers,
    ServeTelemetry, SnapshotFormat, WorkloadConfig, WorkloadReport,
};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_once() -> WorkloadReport {
    run_once_with(None)
}

fn run_once_with(telemetry: Option<Arc<ServeTelemetry>>) -> WorkloadReport {
    run_once_observed(ServeObservers {
        telemetry,
        ..ServeObservers::default()
    })
}

fn run_once_observed(observers: ServeObservers) -> WorkloadReport {
    run_once_formatted(SnapshotFormat::Explicit, observers)
}

fn run_once_formatted(format: SnapshotFormat, observers: ServeObservers) -> WorkloadReport {
    let g = gen::random_regular(20, 4, &mut StdRng::seed_from_u64(3));
    let ecfg = EngineConfig {
        sparsity: 3,
        trees: 5,
        epoch_batch: 24,
        queue_bound: 48,
        cache_capacity: 8,
        compare_fresh: true,
        seed: 7,
        snapshot_format: format,
        ..EngineConfig::default()
    };
    let wcfg = WorkloadConfig {
        epochs: 6,
        rate: 10,
        patterns: 2,
        pairs_per_pattern: 5,
        fail_at: Some(3),
        restore_after: 2,
        seed: 7,
    };
    if observers.telemetry.is_none()
        && observers.journal.is_none()
        && observers.breach_dump.is_none()
    {
        run_workload(&g, ecfg, &wcfg)
    } else {
        run_workload_with_observers(&g, ecfg, &wcfg, observers)
    }
}

/// Everything a run decides, with floats pinned to their bit patterns
/// so "deterministic" means *bit*-deterministic, not approximately so.
#[derive(PartialEq, Debug)]
struct RunBits {
    epochs: Vec<EpochSnapshot>,
    congestion_bits: Vec<u64>,
    fresh_bits: Vec<Option<u64>>,
    rate_bits: Vec<Vec<u64>>,
    admitted: usize,
    rejected: u64,
    failures: Vec<(u64, u32)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

fn bits(report: &WorkloadReport) -> RunBits {
    RunBits {
        congestion_bits: report
            .snapshots
            .iter()
            .map(|s| s.congestion.to_bits())
            .collect(),
        fresh_bits: report
            .snapshots
            .iter()
            .map(|s| s.fresh_congestion.map(f64::to_bits))
            .collect(),
        rate_bits: report
            .snapshots
            .iter()
            .map(|s| {
                s.routes
                    .iter()
                    .flat_map(|r| r.paths.iter().map(|&(_, w)| w.to_bits()))
                    .collect()
            })
            .collect(),
        epochs: report.snapshots.clone(),
        admitted: report.admitted,
        rejected: report.rejected,
        failures: report.failures.iter().map(|&(ep, e)| (ep, e.0)).collect(),
        hits: report.cache.hits,
        misses: report.cache.misses,
        evictions: report.cache.evictions,
        invalidations: report.cache.invalidations,
    }
}

#[test]
fn same_seed_same_snapshots() {
    let _guard = serial();
    sor_obs::set_enabled(false);
    sor_obs::reset();
    let a = run_once();
    let b = run_once();
    assert_eq!(bits(&a), bits(&b), "two runs with the same seed diverged");
}

#[test]
fn capture_does_not_change_published_routes() {
    let _guard = serial();
    sor_obs::set_enabled(false);
    sor_obs::reset();
    let plain = run_once();
    sor_obs::set_enabled(true);
    sor_obs::reset();
    let instrumented = run_once();
    sor_obs::set_enabled(false);
    assert_eq!(
        bits(&plain),
        bits(&instrumented),
        "enabling metric/span capture changed the serving output"
    );
}

#[test]
fn instrumented_run_records_serve_metrics() {
    let _guard = serial();
    sor_obs::set_enabled(true);
    sor_obs::reset();
    let report = run_once();
    let snap = sor_obs::snapshot();
    sor_obs::set_enabled(false);

    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    assert_eq!(counter("serve/cache_hits"), report.cache.hits);
    assert_eq!(counter("serve/cache_misses"), report.cache.misses);
    assert_eq!(counter("serve/requests_admitted"), report.admitted as u64);
    let depth = snap
        .histograms
        .iter()
        .find(|h| h.name == "serve/queue_depth")
        .expect("queue-depth histogram recorded");
    assert_eq!(depth.count, report.snapshots.len() as u64);
    assert!(
        snap.spans
            .iter()
            .any(|s| s.path.last().is_some_and(|p| p == "serve/epoch")),
        "no serve/epoch span recorded"
    );
}

#[test]
fn telemetry_plane_does_not_change_published_routes() {
    let _guard = serial();
    sor_obs::set_enabled(false);
    sor_obs::reset();
    let plain = run_once();

    // full plane attached: armed SLO watchdog, windows, timeline, wall
    // histograms — everything wall-clock-dependent stays off the
    // published path, so the snapshots are still bit-identical
    sor_obs::set_enabled(true);
    sor_obs::reset();
    let telemetry = Arc::new(ServeTelemetry::new(SloConfig::serving_defaults()));
    let instrumented = run_once_with(Some(Arc::clone(&telemetry)));
    sor_obs::set_enabled(false);

    assert_eq!(
        bits(&plain),
        bits(&instrumented),
        "attaching the live telemetry plane changed the serving output"
    );
    // and the plane actually observed the run: one tick and one timeline
    // record per epoch
    assert_eq!(telemetry.windows().ticks(), plain.snapshots.len() as u64);
    assert_eq!(telemetry.timeline().len(), plain.snapshots.len());
    let summary = telemetry.watchdog().summary();
    assert_eq!(summary.epochs_evaluated, plain.snapshots.len() as u64);
}

#[test]
fn compact_snapshots_publish_identical_routes() {
    let _guard = serial();
    sor_obs::set_enabled(false);
    sor_obs::reset();
    let explicit = run_once();
    let compact = run_once_formatted(SnapshotFormat::Compact, ServeObservers::default());

    // the codec is verified lossless, so the *published* plane — vertex
    // sequences, rates, congestion — must be bit-identical across formats;
    // only the size-accounting sidecar may differ
    let mut explicit_bits = bits(&explicit);
    let mut compact_bits = bits(&compact);
    for snap in explicit_bits
        .epochs
        .iter_mut()
        .chain(compact_bits.epochs.iter_mut())
    {
        snap.compact = None;
    }
    assert_eq!(
        explicit_bits, compact_bits,
        "compact snapshot format changed the published routes"
    );

    // and every solving epoch's snapshot carries its table accounting,
    // with compact strictly smaller than the explicit encoding it replaces
    for snap in &compact.snapshots {
        if snap.admitted == 0 {
            continue;
        }
        let stats = snap
            .compact
            .expect("compact-format snapshot carries size accounting");
        assert!(stats.pairs > 0);
        assert!(
            stats.compact_bits < stats.explicit_bits,
            "epoch {}: compact {} bits >= explicit {} bits",
            snap.epoch,
            stats.compact_bits,
            stats.explicit_bits
        );
    }
    for snap in &explicit.snapshots {
        assert!(snap.compact.is_none(), "explicit snapshots carry no stats");
    }
}

#[test]
fn flight_recorder_does_not_change_published_routes() {
    let _guard = serial();
    sor_obs::set_enabled(false);
    sor_obs::reset();
    let plain = run_once();

    let journal = Arc::new(Journal::new());
    let recorded = run_once_observed(ServeObservers {
        journal: Some(Arc::clone(&journal)),
        ..ServeObservers::default()
    });
    assert_eq!(
        bits(&plain),
        bits(&recorded),
        "attaching the flight recorder changed the serving output"
    );

    // and the recorder actually saw the whole run: one begin/end bracket
    // per epoch plus the schedule's failure and restore
    let events = journal.events();
    let count = |tag: &str| events.iter().filter(|(_, e)| e.type_tag() == tag).count();
    assert_eq!(count("epoch_begin"), plain.snapshots.len());
    assert_eq!(count("epoch_end"), plain.snapshots.len());
    assert_eq!(count("edge_fail"), plain.failures.len());
    assert_eq!(count("edge_restore"), 1);
    assert!(count("reopt") > 0 && count("top_edges") > 0);
    // the journaled epoch summaries carry the published congestion bits
    for snap in &plain.snapshots {
        if snap.admitted == 0 {
            continue;
        }
        assert!(
            events.iter().any(|(_, e)| matches!(
                e,
                JournalEvent::EpochEnd {
                    epoch,
                    congestion,
                    ..
                } if *epoch == snap.epoch && congestion.to_bits() == snap.congestion.to_bits()
            )),
            "epoch {} summary missing or drifted",
            snap.epoch
        );
    }
    // round-trip: the dump parses and preserves every event
    let dump = journal.dump_json(&[("source", "serve_determinism")]);
    let parsed = sor_obs::parse_journal(&dump).expect("journal dump parses");
    assert_eq!(parsed.events.len(), events.len());
}
