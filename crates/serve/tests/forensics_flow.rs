//! End-to-end flight-recorder forensics: a seeded workload with an
//! injected failure runs with the journal attached and an impossible SLO
//! armed, the engine writes breach-triggered dumps automatically, and
//! the forensics analyzer attributes the congestion movement to the
//! injected failure — the exact offline loop `sor forensics` runs on a
//! production artifact.

use sor_graph::gen;
use sor_obs::{
    fold_epochs, Cause, CauseAttribution, EdgeShift, EpochStats, EpochTransition, ForensicsReport,
    Journal, JournalDump, JournalEvent, SloConfig, CAUSES, DEFAULT_JOURNAL_CAPACITY,
    JOURNAL_SHARDS,
};
use sor_serve::{
    run_workload_with_observers, BreachDumpConfig, EngineConfig, ServeObservers, ServeTelemetry,
    WorkloadConfig,
};
use std::sync::Arc;

#[test]
fn breach_dump_and_forensics_attribute_injected_failure() {
    let dir = std::env::temp_dir().join(format!("sor-forensics-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let prefix = dir.join("breach").to_string_lossy().into_owned();

    // A cycle: every edge is connectivity-preserving, and failing one
    // reroutes real traffic (the sampled systems ride the cycle), so the
    // failure epochs move congestion for a reason forensics can name.
    let g = gen::cycle_graph(8);
    let ecfg = EngineConfig {
        sparsity: 3,
        trees: 4,
        epoch_batch: 8,
        queue_bound: 32,
        cache_capacity: 8,
        seed: 11,
        ..EngineConfig::default()
    };
    // One recurring pattern: steady epochs re-solve an identical demand
    // on an identical cached system, so every steady transition has an
    // exactly-zero congestion delta — whatever moves, the failure moved.
    // Seed 2 draws a victim edge that carries published load, so the
    // failure epochs shift real traffic instead of breaking a dead link.
    let wcfg = WorkloadConfig {
        epochs: 8,
        rate: 4,
        patterns: 1,
        pairs_per_pattern: 2,
        fail_at: Some(3),
        restore_after: 2,
        seed: 2,
    };
    // A hit rate no run can reach: the watchdog breaches deterministically
    // once lookups happen, so the dump trigger fires without wall-clock
    // dependence.
    let slo = SloConfig {
        min_cache_hit_rate: Some(2.0),
        ..SloConfig::disabled()
    };
    let journal = Arc::new(Journal::new());
    let report = run_workload_with_observers(
        &g,
        ecfg,
        &wcfg,
        ServeObservers {
            telemetry: Some(Arc::new(ServeTelemetry::new(slo))),
            journal: Some(Arc::clone(&journal)),
            breach_dump: Some(BreachDumpConfig {
                prefix,
                context_epochs: 16,
                max_dumps: 4,
            }),
        },
    );
    assert_eq!(report.failures.len(), 1, "schedule injected one failure");
    assert!(
        !report.breach_dumps.is_empty(),
        "SLO breach must write a journal dump"
    );
    assert!(
        report.breach_dumps.len() <= 4,
        "dump cap respected: {:?}",
        report.breach_dumps
    );

    // Every artifact is a parseable sor-journal/1 document carrying the
    // breach metadata.
    let mut saw_failure_event = false;
    for path in &report.breach_dumps {
        let text = std::fs::read_to_string(path).expect("breach dump exists on disk");
        assert!(text.starts_with("{\"format\":\"sor-journal/1\""));
        let dump: JournalDump = sor_obs::parse_journal(&text).expect("breach dump parses");
        assert!(
            dump.meta
                .iter()
                .any(|(k, v)| k == "reason" && v == "slo-breach"),
            "dump meta names its trigger: {:?}",
            dump.meta
        );
        assert!(dump.meta.iter().any(|(k, _)| k == "rules"));
        assert!(!dump.events.is_empty(), "dump carries journal context");
        saw_failure_event |= dump
            .events
            .iter()
            .any(|(_, e)| matches!(e, JournalEvent::EdgeFail { .. }));
    }
    assert!(
        saw_failure_event,
        "at least one dump's context window covers the injected failure"
    );

    // This short run fits comfortably inside the ring: nothing dropped.
    let events: Vec<JournalEvent> = journal.events().into_iter().map(|(_, e)| e).collect();
    assert!(
        events.len() as u64 <= (JOURNAL_SHARDS * DEFAULT_JOURNAL_CAPACITY) as u64,
        "run must fit in the default ring"
    );
    assert_eq!(journal.dropped(), 0, "no eviction in a fitting run");

    // Offline attribution over the full journal: the injected failure is
    // the top-ranked cause of the epoch-over-epoch movement.
    let forensics: ForensicsReport = sor_obs::analyze(&events, 8);
    assert_eq!(forensics.epochs.len(), 8, "one folded record per epoch");
    let folded: Vec<EpochStats> = fold_epochs(&events);
    assert_eq!(
        folded, forensics.epochs,
        "analyze folds the same per-epoch stats fold_epochs exposes"
    );
    let top: Cause = forensics
        .top_cause()
        .expect("non-empty run has transitions");
    assert_eq!(
        top,
        Cause::Failure,
        "injected failure must dominate the attribution:\n{}",
        forensics.render_text()
    );
    let failure_attr: &CauseAttribution = forensics
        .causes
        .iter()
        .find(|c| c.cause == Cause::Failure)
        .expect("failure row present");
    assert!(
        failure_attr.transitions >= 1,
        "failure epochs produce failure-classified transitions"
    );
    assert!(
        failure_attr.share > 0.99,
        "with zero-delta steady epochs, all movement belongs to the \
         failure (share = {})",
        failure_attr.share
    );
    assert_eq!(
        forensics.causes.len(),
        CAUSES.len(),
        "one attribution row per causal bucket"
    );
    let failure_transition: &EpochTransition = forensics
        .transitions
        .iter()
        .find(|t| t.cause == Cause::Failure)
        .expect("a transition lands on the failure epoch");
    assert!(failure_transition.to > failure_transition.from);
    let top_shift: &EdgeShift = forensics
        .edge_shifts
        .first()
        .expect("a failure run moves load between edges");
    assert!(
        top_shift.delta.abs() > 0.0,
        "edge-shift table only records real movement"
    );
    let json = forensics.to_json();
    assert!(json.contains("\"format\":\"sor-forensics/1\""));
    assert!(json.contains("\"top_cause\":\"failure\""));

    std::fs::remove_dir_all(&dir).ok();
}
