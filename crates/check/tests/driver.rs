//! End-to-end tests for the `sor-check` driver: the binary must exit
//! non-zero on a workspace seeded with violations, zero on a clean one,
//! and zero on the real workspace (the acceptance gate CI enforces).

use std::path::{Path, PathBuf};
use std::process::Command;

use sor_check::{scan_workspace, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn seeded_fixture_triggers_every_rule() {
    let violations = scan_workspace(&fixture("bad_ws")).expect("scan bad_ws");
    let fired: Vec<Rule> = violations.iter().map(|v| v.rule).collect();
    for rule in sor_check::ALL_RULES {
        assert!(
            fired.contains(&rule),
            "rule {rule} did not fire on the seeded fixture; got: {violations:#?}"
        );
    }
    // the documented fn in the core fixture must not fire
    assert!(
        !violations.iter().any(|v| v.rule == Rule::MissingDocs
            && v.message.contains("documented")
            && !v.message.contains("undocumented")),
        "documented fn wrongly flagged: {violations:#?}"
    );
}

#[test]
fn clean_fixture_passes() {
    let violations = scan_workspace(&fixture("clean_ws")).expect("scan clean_ws");
    assert!(
        violations.is_empty(),
        "clean fixture flagged: {violations:#?}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let violations = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_nonzero_on_seeded_violations() {
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .status()
        .expect("run sor-check on bad_ws");
    assert_eq!(status.code(), Some(1), "expected exit 1 on seeded fixture");
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("clean_ws"))
        .status()
        .expect("run sor-check on clean_ws");
    assert_eq!(status.code(), Some(0), "expected exit 0 on clean fixture");
}

#[test]
fn binary_rejects_missing_root() {
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("no_such_dir"))
        .status()
        .expect("run sor-check on missing dir");
    assert_eq!(status.code(), Some(2), "expected exit 2 on bad root");
}
