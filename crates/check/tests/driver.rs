//! End-to-end tests for the `sor-check` driver: the binary must exit
//! non-zero on a workspace seeded with violations, zero on a clean one,
//! and zero on the real workspace (the acceptance gate CI enforces).
//! The semantic pass is covered against the same fixtures: every
//! item-graph rule fires on `bad_ws`, witness chains are exact, and the
//! baseline turns the gate regression-only.

use std::path::{Path, PathBuf};
use std::process::Command;

use sor_check::baseline::{parse_json, Json};
use sor_check::{analyze_workspace, scan_workspace, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn seeded_fixture_triggers_every_rule() {
    let violations = scan_workspace(&fixture("bad_ws")).expect("scan bad_ws");
    let fired: Vec<Rule> = violations.iter().map(|v| v.rule).collect();
    for rule in sor_check::ALL_RULES {
        assert!(
            fired.contains(&rule),
            "rule {rule} did not fire on the seeded fixture; got: {violations:#?}"
        );
    }
    // the documented fn in the core fixture must not fire
    assert!(
        !violations.iter().any(|v| v.rule == Rule::MissingDocs
            && v.message.contains("documented")
            && !v.message.contains("undocumented")),
        "documented fn wrongly flagged: {violations:#?}"
    );
}

#[test]
fn clean_fixture_passes() {
    let violations = scan_workspace(&fixture("clean_ws")).expect("scan clean_ws");
    assert!(
        violations.is_empty(),
        "clean fixture flagged: {violations:#?}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let violations = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        violations.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_nonzero_on_seeded_violations() {
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .status()
        .expect("run sor-check on bad_ws");
    assert_eq!(status.code(), Some(1), "expected exit 1 on seeded fixture");
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("clean_ws"))
        .status()
        .expect("run sor-check on clean_ws");
    assert_eq!(status.code(), Some(0), "expected exit 0 on clean fixture");
}

#[test]
fn semantic_rules_all_fire_on_bad_ws() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    for rule in [
        "layering",
        "panic-path",
        "unseeded-rng",
        "hash-order",
        "dead-api",
        "lock-order",
        "held-lock",
        "atomics",
        "rayon-ready",
        "alloc-in-hot",
        "clone-in-loop",
        "growth-without-capacity",
        "quadratic-scan",
    ] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "semantic rule {rule} did not fire on bad_ws; got: {findings:#?}"
        );
    }
}

#[test]
fn panic_path_reports_shortest_witness_chain() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let f = findings
        .iter()
        .find(|f| f.rule == "panic-path" && f.symbol.ends_with("solver_entry"))
        .expect("panic-path finding for solver_entry");
    // entry → middle → deep → the concrete site
    assert_eq!(f.witness.len(), 4, "{:?}", f.witness);
    assert!(f.witness[0].contains("solver_entry"), "{:?}", f.witness);
    assert!(f.witness[1].contains("solver_middle"), "{:?}", f.witness);
    assert!(f.witness[2].contains("solver_deep"), "{:?}", f.witness);
    assert!(f.witness[3].contains(".expect("), "{:?}", f.witness);
    assert!(f.message.contains("2 calls deep"), "{}", f.message);
}

#[test]
fn layering_violation_names_the_illegal_edge() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "layering" && f.symbol == "sor-graph -> sor-core"),
        "expected a sor-graph -> sor-core layering finding; got: {findings:#?}"
    );
}

#[test]
fn clean_fixture_has_no_semantic_findings() {
    let findings = analyze_workspace(&fixture("clean_ws")).expect("analyze clean_ws");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn lock_order_reports_the_seeded_inversion_verbatim() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let f = findings
        .iter()
        .find(|f| f.rule == "lock-order")
        .expect("lock-order finding");
    assert_eq!(f.symbol, "sor-core/alpha→sor-core/beta");
    assert_eq!(
        f.witness,
        vec![
            "sor-core/alpha → sor-core/beta in sor-core::conc::Pair::lock_ab \
             (crates/core/src/conc.rs:17)"
                .to_string(),
            "sor-core/beta → sor-core/alpha in sor-core::conc::Pair::lock_ba \
             (crates/core/src/conc.rs:25) via sor-core::conc::Pair::alpha_only"
                .to_string(),
        ],
        "{:?}",
        f.witness
    );
    assert!(
        f.message
            .contains("sor-core/alpha → sor-core/beta → sor-core/alpha"),
        "{}",
        f.message
    );
}

#[test]
fn held_lock_reports_the_guarded_solve_verbatim() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let f = findings
        .iter()
        .find(|f| f.rule == "held-lock")
        .expect("held-lock finding");
    assert_eq!(
        f.symbol,
        "sor-core::conc::Pair::solve_under_lock:sor-core/alpha->expensive_solve"
    );
    assert_eq!(
        f.witness,
        vec![
            "sor-core::conc::Pair::solve_under_lock (crates/core/src/conc.rs:34)".to_string(),
            "expensive_solve(..) at crates/core/src/conc.rs:36".to_string(),
        ],
        "{:?}",
        f.witness
    );
}

#[test]
fn atomics_audit_reports_counter_seqcst_and_mixed() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let symbols: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == "atomics")
        .map(|f| f.symbol.as_str())
        .collect();
    for expected in [
        "sor-core/events:fetch_add:counter",
        "sor-core/ready:load:seqcst",
        "sor-core/events:mixed",
        "sor-core/ready:mixed",
    ] {
        assert!(
            symbols.contains(&expected),
            "{expected} missing: {symbols:?}"
        );
    }
    let mixed = findings
        .iter()
        .find(|f| f.symbol == "sor-core/ready:mixed")
        .expect("mixed finding");
    assert_eq!(
        mixed.witness,
        vec![
            "Ordering::Release on .store(..) at crates/core/src/conc.rs:66".to_string(),
            "Ordering::Relaxed on .load(..) at crates/core/src/conc.rs:71".to_string(),
            "Ordering::SeqCst on .load(..) at crates/core/src/conc.rs:76".to_string(),
        ],
        "{:?}",
        mixed.witness
    );
}

#[test]
fn rayon_ready_reports_the_reachable_refcell_verbatim() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let f = findings
        .iter()
        .find(|f| f.rule == "rayon-ready" && f.symbol.ends_with(":RefCell"))
        .expect("rayon-ready RefCell finding");
    assert_eq!(
        f.witness,
        vec![
            "sor-core::conc::par_entry (crates/core/src/conc.rs:81)".to_string(),
            "sor-core::conc::shared_cell (crates/core/src/conc.rs:86)".to_string(),
            "RefCell at crates/core/src/conc.rs:87".to_string(),
        ],
        "{:?}",
        f.witness
    );
    // Rc on the same line is reported separately.
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "rayon-ready" && f.symbol.ends_with(":Rc")),
        "{findings:#?}"
    );
}

#[test]
fn alloc_in_hot_reports_the_interprocedural_chain_verbatim() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let f = findings
        .iter()
        .find(|f| f.rule == "alloc-in-hot")
        .expect("alloc-in-hot finding");
    // entry → callee → the allocation site, with the effective loop depth
    assert_eq!(
        f.witness,
        vec![
            "sor-core::hot::hot_entry (crates/core/src/hot.rs:10)".to_string(),
            "sor-core::hot::alloc_helper (crates/core/src/hot.rs:23)".to_string(),
            "`Vec::new` at crates/core/src/hot.rs:24 (loop depth 1)".to_string(),
        ],
        "{:?}",
        f.witness
    );
    assert!(
        f.message.contains("effective loop depth 1")
            && f.message.contains("hot path of `hot_entry`"),
        "{}",
        f.message
    );
}

#[test]
fn clone_in_loop_reports_depth_and_chain_verbatim() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let f = findings
        .iter()
        .find(|f| f.rule == "clone-in-loop")
        .expect("clone-in-loop finding");
    assert_eq!(
        f.witness,
        vec![
            "sor-core::hot::hot_entry (crates/core/src/hot.rs:10)".to_string(),
            "sor-core::hot::clone_spin (crates/core/src/hot.rs:29)".to_string(),
            "`name.clone()` at crates/core/src/hot.rs:32 (loop depth 1)".to_string(),
        ],
        "{:?}",
        f.witness
    );
}

#[test]
fn growth_and_scan_report_two_step_witnesses_verbatim() {
    let findings = analyze_workspace(&fixture("bad_ws")).expect("analyze bad_ws");
    let growth = findings
        .iter()
        .find(|f| f.rule == "growth-without-capacity")
        .expect("growth-without-capacity finding");
    assert_eq!(
        growth.witness,
        vec![
            "`out` constructed without capacity at crates/core/src/hot.rs:41".to_string(),
            "`out.push(..)` in a loop at crates/core/src/hot.rs:43 (loop depth 1)".to_string(),
        ],
        "{:?}",
        growth.witness
    );
    let scan = findings
        .iter()
        .find(|f| f.rule == "quadratic-scan")
        .expect("quadratic-scan finding");
    assert_eq!(
        scan.witness,
        vec![
            "loop over `xs` at crates/core/src/hot.rs:52 (loop depth 1)".to_string(),
            "`ys.contains(..)` at crates/core/src/hot.rs:53".to_string(),
        ],
        "{:?}",
        scan.witness
    );
}

#[test]
fn sarif_reports_alloc_in_hot() {
    let out = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--no-baseline")
        .arg("--format")
        .arg("sarif")
        .output()
        .expect("sarif run");
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("stdout is valid JSON");
    let results = doc.get("runs").and_then(|r| r.as_arr()).expect("runs")[0]
        .get("results")
        .and_then(|r| r.as_arr())
        .expect("results array");
    let alloc = results
        .iter()
        .find(|r| r.get("ruleId").and_then(|id| id.as_str()) == Some("alloc-in-hot"))
        .expect("alloc-in-hot SARIF result");
    let msg = alloc
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(|t| t.as_str())
        .expect("message text");
    assert!(msg.contains("via sor-core::hot::hot_entry"), "{msg}");
}

#[test]
fn text_output_includes_the_cost_table() {
    let out = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--no-baseline")
        .arg("--format")
        .arg("text")
        .output()
        .expect("text run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hot-path cost report"), "{stdout}");
    assert!(
        stdout
            .lines()
            .any(|l| l.trim_start().starts_with("hot_entry")),
        "{stdout}"
    );
}

#[test]
fn hotpath_report_flag_writes_cost_json() {
    let tmp = std::env::temp_dir().join("sor_check_bad_ws_hotpath.json");
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--no-baseline")
        .arg("--hotpath-report")
        .arg(&tmp)
        .status()
        .expect("hotpath-report run");
    assert_eq!(status.code(), Some(1), "seeded findings still gate");
    let text = std::fs::read_to_string(&tmp).expect("cost report written");
    std::fs::remove_file(&tmp).ok();
    let doc = parse_json(&text).expect("cost report is valid JSON");
    let entries = doc
        .get("entries")
        .and_then(|e| e.as_arr())
        .expect("entries array");
    let hot = entries
        .iter()
        .find(|e| e.get("entry").and_then(|s| s.as_str()) == Some("hot_entry"))
        .expect("hot_entry cost row");
    assert_eq!(hot.get("functions"), Some(&Json::Num(5.0)));
    assert_eq!(hot.get("alloc_sites"), Some(&Json::Num(2.0)));
    assert_eq!(hot.get("clone_sites"), Some(&Json::Num(1.0)));
    assert_eq!(hot.get("max_loop_depth"), Some(&Json::Num(1.0)));
}

#[test]
fn explain_prints_rule_doc_and_rejects_unknown_ids() {
    let out = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg("--explain")
        .arg("alloc-in-hot")
        .output()
        .expect("explain run");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("alloc-in-hot — "), "{stdout}");
    assert!(stdout.contains("allow(alloc-in-hot)"), "{stdout}");
    let out = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg("--explain")
        .arg("no-such-rule")
        .output()
        .expect("explain unknown run");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule"), "{stderr}");
    assert!(stderr.contains("quadratic-scan"), "{stderr}");
}

#[test]
fn sarif_reports_the_two_mutex_inversion() {
    let out = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--no-baseline")
        .arg("--format")
        .arg("sarif")
        .output()
        .expect("sarif run");
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("stdout is valid JSON");
    let results = doc.get("runs").and_then(|r| r.as_arr()).expect("runs")[0]
        .get("results")
        .and_then(|r| r.as_arr())
        .expect("results array");
    let lock = results
        .iter()
        .find(|r| r.get("ruleId").and_then(|id| id.as_str()) == Some("lock-order"))
        .expect("lock-order SARIF result");
    let msg = lock
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(|t| t.as_str())
        .expect("message text");
    // The seeded two-mutex inversion, witness folded into the message.
    assert!(
        msg.contains("sor-core/alpha → sor-core/beta → sor-core/alpha"),
        "{msg}"
    );
    assert!(
        msg.contains("via sor-core/alpha → sor-core/beta in"),
        "{msg}"
    );
}

#[test]
fn baseline_makes_the_gate_regression_only() {
    let tmp = std::env::temp_dir().join("sor_check_bad_ws_baseline.json");
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--write-baseline")
        .arg(&tmp)
        .status()
        .expect("write baseline");
    assert_eq!(status.code(), Some(0), "--write-baseline must succeed");
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--baseline")
        .arg(&tmp)
        .arg("--fail-on-new")
        .status()
        .expect("gated run");
    std::fs::remove_file(&tmp).ok();
    assert_eq!(
        status.code(),
        Some(0),
        "every finding is baselined, so the gate must pass"
    );
}

#[test]
fn sarif_output_is_wellformed() {
    let out = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--no-baseline")
        .arg("--format")
        .arg("sarif")
        .output()
        .expect("sarif run");
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("stdout is valid JSON");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "SARIF version"
    );
    let runs = doc
        .get("runs")
        .and_then(|r| r.as_arr())
        .expect("runs array");
    assert!(!runs.is_empty());
    let results = runs[0]
        .get("results")
        .and_then(|r| r.as_arr())
        .expect("results array");
    assert!(
        results
            .iter()
            .any(|r| { r.get("ruleId").and_then(|id| id.as_str()) == Some("panic-path") }),
        "SARIF results must carry semantic ruleIds"
    );
}

#[test]
fn json_output_is_wellformed() {
    let out = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("bad_ws"))
        .arg("--no-baseline")
        .arg("--format")
        .arg("json")
        .output()
        .expect("json run");
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("stdout is valid JSON");
    let new = doc.get("new").and_then(|f| f.as_arr()).expect("new array");
    assert!(!new.is_empty());
    assert!(doc.get("baselined").is_some(), "baselined array present");
}

#[test]
fn real_workspace_gate_passes_with_committed_baseline() {
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(workspace_root())
        .arg("--fail-on-new")
        .status()
        .expect("run sor-check on the real workspace");
    assert_eq!(
        status.code(),
        Some(0),
        "the real workspace must have no findings beyond check-baseline.json"
    );
}

#[test]
fn binary_rejects_missing_root() {
    let status = Command::new(env!("CARGO_BIN_EXE_sor-check"))
        .arg(fixture("no_such_dir"))
        .status()
        .expect("run sor-check on missing dir");
    assert_eq!(status.code(), Some(2), "expected exit 2 on bad root");
}
