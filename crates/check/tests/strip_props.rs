//! Property tests for the lexical stripper: however adversarial the
//! input, stripping must preserve line structure (one stripped line per
//! input line, in order), never grow a line, and never leave comment
//! markers behind for the rule matchers to trip on.
//!
//! The vendored proptest stub generates numeric values only, so each
//! case draws a seed and derives an adversarial document from it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sor_check::items::parse_file;
use sor_check::strip_line;
use std::path::Path;

/// Line fragments biased toward the constructs the stripper handles:
/// strings, raw strings, char literals, lifetimes, comments, division.
const FRAGMENTS: [&str; 16] = [
    "let x = 1;",
    r#""text with // and /* inside""#,
    r##"r#"raw "quoted" text"#"##,
    r#"r"raw text""#,
    r#"b"bytes""#,
    r"'\''",
    r#"'"'"#,
    "&'a str",
    "// trailing comment",
    "/* open",
    "close */",
    "a / b / c",
    "\"unterminated",
    "tail\"",
    r#"r#"raw open"#,
    "\\",
];

/// A pseudo-random multi-line document built from the fragment pool.
fn document(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let lines = rng.gen_range(0..12usize);
    let mut doc = Vec::with_capacity(lines);
    for _ in 0..lines {
        let parts = rng.gen_range(0..4usize);
        let line: Vec<&str> = (0..parts)
            .map(|_| FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())])
            .collect();
        doc.push(line.join(" "));
    }
    doc.join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One stripped line per input line, in order — the downstream
    /// passes (loop depths, item spans, call refs) index lines 1:1.
    #[test]
    fn stripping_preserves_line_structure(seed in 0u64..100_000) {
        let doc = document(seed);
        let f = parse_file(Path::new("crates/core/src/p.rs"), "sor-core", &doc);
        prop_assert_eq!(f.raw.len(), f.stripped.len());
        prop_assert_eq!(f.raw.len(), doc.lines().count());
    }

    /// Stripping only removes: no line gains characters.
    #[test]
    fn stripping_never_grows_a_line(seed in 0u64..100_000) {
        let doc = document(seed);
        let f = parse_file(Path::new("crates/core/src/p.rs"), "sor-core", &doc);
        for (raw, stripped) in f.raw.iter().zip(&f.stripped) {
            prop_assert!(stripped.chars().count() <= raw.chars().count(),
                "{:?} -> {:?}", raw, stripped);
        }
    }

    /// Comment markers never survive into stripped output (a `//` or
    /// `/*` in the output would mean a matcher can see comment text).
    #[test]
    fn no_comment_markers_survive(seed in 0u64..100_000) {
        let doc = document(seed);
        let f = parse_file(Path::new("crates/core/src/p.rs"), "sor-core", &doc);
        for s in &f.stripped {
            prop_assert!(!s.contains("//"), "{:?}", s);
            prop_assert!(!s.contains("/*"), "{:?}", s);
        }
    }

    /// Single-line stripping is deterministic and total (no panics) on
    /// arbitrary byte soup, including non-ASCII.
    #[test]
    fn single_line_strip_is_total_and_deterministic(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..48usize);
        let line: String = (0..len)
            .map(|_| {
                // mix ASCII punctuation/identifiers with multi-byte chars
                match rng.gen_range(0..8u32) {
                    0 => '"',
                    1 => '\'',
                    2 => '/',
                    3 => '\\',
                    4 => '*',
                    5 => 'r',
                    6 => '→',
                    _ => 'a',
                }
            })
            .collect();
        let a = strip_line(&line);
        let b = strip_line(&line);
        prop_assert_eq!(a, b);
    }
}
