//! Concurrency-rule seeds: a two-mutex inversion across the call
//! graph, an expensive solve under a live guard, noisy atomics, and a
//! non-Send value reachable from a parallel target.

/// Two locks acquired in both orders across the call graph.
pub struct Pair {
    /// first lock
    pub alpha: Mutex<u64>,
    /// second lock
    pub beta: Mutex<u64>,
}

impl Pair {
    /// Acquires alpha then beta directly.
    pub fn lock_ab(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    /// Acquires beta, then re-enters alpha through a helper: the
    /// inversion closing the lock-order cycle.
    pub fn lock_ba(&self) -> u64 {
        let b = self.beta.lock();
        *b + self.alpha_only()
    }

    /// Acquires alpha alone.
    fn alpha_only(&self) -> u64 {
        *self.alpha.lock()
    }

    /// Runs the expensive solver while holding alpha.
    pub fn solve_under_lock(&self) -> u64 {
        let a = self.alpha.lock();
        *a + expensive_solve()
    }
}

/// Deliberately expensive solver stub, named in `[concurrency] expensive`.
pub fn expensive_solve() -> u64 {
    7
}

/// Atomic fields exercised with deliberately noisy orderings.
pub struct Stats {
    /// event counter
    pub events: AtomicU64,
    /// readiness flag
    pub ready: AtomicU64,
}

impl Stats {
    /// Bumps the counter with SeqCst: the counter variant.
    pub fn bump(&self) {
        self.events.fetch_add(1, Ordering::SeqCst);
    }

    /// Reads the counter relaxed — mixes orderings on `events`.
    pub fn total(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Publishes readiness with Release.
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release);
    }

    /// Polls readiness relaxed — a broken publish/poll pair.
    pub fn poll(&self) -> u64 {
        self.ready.load(Ordering::Relaxed)
    }

    /// Reads readiness with SeqCst: the seqcst variant.
    pub fn snapshot(&self) -> u64 {
        self.ready.load(Ordering::SeqCst)
    }
}

/// Parallel entry point named in `[concurrency] parallel_targets`.
pub fn par_entry(n: u64) -> u64 {
    shared_cell(n)
}

/// Uses interior mutability that is not Send.
fn shared_cell(n: u64) -> u64 {
    let cell: Rc<RefCell<u64>> = Rc::new(RefCell::new(n));
    *cell.borrow()
}
