// Seeded missing-docs violation: sor-core requires doc comments on
// every `pub fn`.

pub fn undocumented() {}

/// This one is documented and must not fire.
pub fn documented() {}

/// Seeded panic-path violation: a public solver entry reaching a panic
/// two private calls deep (exercises the BFS witness chain).
pub fn solver_entry(x: Option<u32>) -> u32 {
    solver_middle(x)
}

fn solver_middle(x: Option<u32>) -> u32 {
    solver_deep(x)
}

fn solver_deep(x: Option<u32>) -> u32 {
    x.expect("seeded panic")
}

/// Seeded unseeded-rng violation: constructs an RNG from ambient
/// entropy without taking a seed or `Rng` parameter.
pub fn entropy_totals(n: usize) -> u64 {
    let mut r = StdRng::from_entropy();
    let _ = n;
    r.gen()
}

/// Seeded hash-order violation: iterates a HashMap directly.
pub fn order_leak() -> u32 {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    let mut s = 0;
    for (_, v) in m.iter() {
        s += v;
    }
    s
}

/// Seeded dead-api violation: a public item no other crate references.
pub struct OrphanKnob;
