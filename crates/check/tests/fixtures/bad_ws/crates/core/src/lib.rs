// Seeded missing-docs violation: sor-core requires doc comments on
// every `pub fn`.

pub fn undocumented() {}

/// This one is documented and must not fire.
pub fn documented() {}
