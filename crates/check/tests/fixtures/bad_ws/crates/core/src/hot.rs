//! Hot-path rule seeds: `hot_entry` (named in `[hotpath] entries`)
//! reaches one violation of each of the four hotpath rules — an
//! allocation in a helper called under its loop, a per-iteration
//! clone, an un-pre-sized growing collection, and a quadratic scan.
//! Everything is private so the seeds stay invisible to the
//! missing-docs and dead-api rules.

/// Hot entry: loops over queries calling the allocating helper, then
/// fans out to the lexical seeds.
fn hot_entry(n: usize, xs: &[u32], ys: &[u32], names: &[String]) -> usize {
    let mut total = 0;
    for q in 0..n {
        total += alloc_helper(q);
    }
    total += clone_spin(names);
    total += grow_unbounded(n).len();
    total += scan_pairs(xs, ys);
    total
}

/// Seeded alloc-in-hot: allocates afresh on every call, and every call
/// happens under `hot_entry`'s loop (effective depth 1 via the chain).
fn alloc_helper(q: usize) -> usize {
    let buf: Vec<usize> = Vec::new();
    buf.len() + q
}

/// Seeded clone-in-loop: one clone per iteration.
fn clone_spin(names: &[String]) -> usize {
    let mut total = 0;
    for name in names {
        let copy = name.clone();
        total += copy.len();
    }
    total
}

/// Seeded growth-without-capacity: grown in a loop, built without
/// `with_capacity`.
fn grow_unbounded(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(i);
    }
    out
}

/// Seeded quadratic-scan: linear `contains` over a sibling slice
/// inside the loop.
fn scan_pairs(xs: &[u32], ys: &[u32]) -> usize {
    let mut hits = 0;
    for x in xs {
        if ys.contains(x) {
            hits += 1;
        }
    }
    hits
}
