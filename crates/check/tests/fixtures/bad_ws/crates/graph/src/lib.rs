// Seeded violations for the sor-check integration tests. This file is
// never compiled — it lives under tests/fixtures/, which cargo does not
// treat as a target and classify() skips in the real workspace scan.

pub fn seeded(x: f64, o: Option<u32>) -> u32 {
    let v = o.unwrap();
    let t = x as u32;
    let mut rng = rand::thread_rng();
    if x == 1.0 {
        panic!("boom");
    }
    let _ = rng.gen_range(0..4);
    v + t
}

// Seeded unsafe-code violation.
pub fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}

// Seeded layering violation: sor-graph is the bottom layer and may not
// reference sor-core.
pub fn upward(x: u32) -> u32 {
    sor_core::helper(x)
}
