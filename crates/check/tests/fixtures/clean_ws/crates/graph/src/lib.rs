// A clean fixture: every would-be violation is either absent, inside
// #[cfg(test)], inside a string/comment, or carries an allowlist comment.

/// Allowed: node counts are asserted < u32::MAX at graph construction.
pub fn narrowing(idx: usize) -> u32 {
    // sor-check: allow(lossy-cast) — bound asserted by the caller
    idx as u32
}

pub fn strings_and_comments() {
    let _s = ".unwrap() and panic!( and thread_rng";
    // .expect( here is commentary, x == 1.0 too
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if 1.0 == 1.0 {
            panic!("fine in tests");
        }
    }
}
