//! Item extraction: the lightweight parser the semantic pass is built on.
//!
//! Works line-by-line over [`crate::strip`]-ed source, tracking brace
//! depth and a context stack (module / impl / fn) instead of building a
//! real AST — the registry is unreachable from CI, so `syn` is not an
//! option. The output per file is a [`SourceFile`]: the items it
//! declares (functions with signatures, structs, enums, traits, consts,
//! type aliases), the `use` declarations that bind names into scope, and
//! per-function *facts* (panic sites, RNG constructions, hash-container
//! iterations, heap-allocation sites) plus outgoing *call references*
//! that [`crate::graph::ItemGraph`] later resolves into edges. Every
//! call and allocation site carries its lexical loop depth (see
//! [`loop_depths`]) so the hot-path rules can attribute per-iteration
//! cost.
//!
//! # Honest limitations
//!
//! This is deliberately not a compiler. Signature parsing flattens
//! whitespace; call references are `identifier(`-shaped tokens resolved
//! by name, so same-named functions in sibling modules can alias;
//! method calls resolve only when the receiver type is unambiguous by
//! name. The loop-depth tracker is lexical too: a single-line loop body
//! (`for x in xs { v.push(x) }`) is measured at the header's depth, and
//! a closure argument inside a loop header counts as part of the body.
//! Each rule built on top errs toward reporting (and the
//! allowlist/baseline mechanisms absorb intended exceptions) rather
//! than silently missing structure.

use std::path::{Path, PathBuf};

use crate::strip::Stripper;

/// What kind of declaration an [`Item`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ItemKind {
    /// `fn` (free or inside an `impl` block).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
}

/// Declared visibility, reduced to what the rules need.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Visibility {
    /// `pub`: part of the crate's external API.
    Public,
    /// `pub(crate)` / `pub(super)` / `pub(in ...)`: workspace-internal.
    Restricted,
    /// No modifier.
    Private,
}

/// How a panic could be raised at a [`PanicSite`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Explicit,
    /// `.unwrap()` / `.expect(..)`.
    Unwrap,
    /// Slice / `Vec` / map indexing (`x[i]`), which panics in release
    /// builds on out-of-bounds. Only propagated when
    /// `panics.include_indexing` is set in `check.toml`.
    Indexing,
}

/// One potential panic inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// 1-based line in the containing file.
    pub line: usize,
    /// Mechanism.
    pub kind: PanicKind,
    /// The offending token, for messages (`.unwrap()`, `panic!`, ...).
    pub token: String,
}

/// How an [`AllocSite`] allocates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// A heap-allocating constructor (`Vec::new`, `vec![`, `Box::new`, ...).
    Ctor,
    /// An allocating adaptor (`.collect()`, `.to_vec()`, `.to_owned()`, ...).
    Adaptor,
    /// `.clone()` — duplicates its receiver's heap storage.
    Clone,
}

/// One heap-allocation site inside a function body.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// 1-based line in the containing file.
    pub line: usize,
    /// Mechanism.
    pub kind: AllocKind,
    /// The offending token, for messages (`Vec::new`, `.collect()`, ...).
    pub token: String,
    /// Lexical loop depth at the site (see [`loop_depths`]).
    pub depth: usize,
    /// For clones: the receiver identifier, when recoverable.
    pub recv: Option<String>,
}

/// Facts collected from one function body, consumed by the rules.
#[derive(Clone, Debug, Default)]
pub struct Facts {
    /// Potential panic sites.
    pub panics: Vec<PanicSite>,
    /// Lines that construct an RNG (`seed_from_u64`, `from_entropy`, ...).
    pub rng_ctors: Vec<usize>,
    /// Lines that iterate a `HashMap`/`HashSet` local in arbitrary order.
    pub hash_iters: Vec<usize>,
    /// Heap-allocation sites, source order.
    pub allocs: Vec<AllocSite>,
}

/// An unresolved outgoing call from a function body.
#[derive(Clone, Debug)]
pub struct CallRef {
    /// Callee identifier (the final path segment).
    pub name: String,
    /// Qualifying path segment directly before `::name(`, when present
    /// (e.g. `Path` in `Path::from_edges(..)`).
    pub qualifier: Option<String>,
    /// Whether this was a `.name(..)` method call.
    pub method: bool,
    /// 1-based line of the call.
    pub line: usize,
    /// Lexical loop depth at the call site (see [`loop_depths`]).
    pub depth: usize,
}

/// One declared item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Declaration kind.
    pub kind: ItemKind,
    /// Item name.
    pub name: String,
    /// Declared visibility.
    pub vis: Visibility,
    /// 1-based declaration line.
    pub line: usize,
    /// For `fn`s declared inside `impl Foo {..}` / `impl Tr for Foo {..}`:
    /// the `Foo`. Also set for trait-body method signatures.
    pub self_ty: Option<String>,
    /// Whether the surrounding `impl` is a trait implementation (its
    /// method names are dictated by the trait, not dead-API candidates).
    pub in_trait_impl: bool,
    /// For `fn`s: the signature flattened to one line (through `{`/`;`).
    pub signature: String,
    /// For `fn`s: facts found in the body.
    pub facts: Facts,
    /// For `fn`s: outgoing call references.
    pub calls: Vec<CallRef>,
}

impl Item {
    /// `module::name` (or just `name` at crate root), used in reports.
    pub fn path_in(&self, module: &str) -> String {
        let base = match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        };
        if module.is_empty() {
            base
        } else {
            format!("{module}::{base}")
        }
    }
}

/// A `use` declaration, reduced to the names it binds.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// 1-based line.
    pub line: usize,
    /// Workspace crate the path roots in, in dash form (`sor-graph`),
    /// when it does (`use sor_graph::NodeId` ⇒ `Some("sor-graph")`).
    pub krate: Option<String>,
    /// Leaf identifiers bound into scope (glob imports bind nothing
    /// here; `as` renames bind the rename).
    pub names: Vec<String>,
}

/// Everything extracted from one source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: PathBuf,
    /// Owning crate, dash form (`sor-flow`).
    pub krate: String,
    /// Module path within the crate (`""` for the crate root, `gen::wan`
    /// for nested files).
    pub module: String,
    /// Raw source lines (needed for allowlist comments, which live in
    /// comments the stripper removes).
    pub raw: Vec<String>,
    /// Stripped source lines.
    pub stripped: Vec<String>,
    /// Per-line: inside a `#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Declared items.
    pub items: Vec<Item>,
}

/// Per-line mask of `#[cfg(test)]` regions over stripped lines: the
/// attribute arms the mask; the next braced item (or `;`-terminated
/// item) is covered until its closing brace.
pub fn test_mask(stripped: &[String]) -> Vec<bool> {
    let mut depth: i32 = 0;
    let mut armed = false;
    let mut skip_until: Option<i32> = None;
    let mut mask = Vec::with_capacity(stripped.len());
    for s in stripped {
        let mut line_in_test = skip_until.is_some();
        if s.contains("#[cfg(test)]") {
            armed = true;
            line_in_test = true;
        }
        for ch in s.chars() {
            match ch {
                '{' => {
                    if armed && skip_until.is_none() {
                        skip_until = Some(depth);
                        armed = false;
                        line_in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_until == Some(depth) {
                        skip_until = None;
                        line_in_test = true; // the closing line itself
                    }
                }
                ';' if armed => {
                    armed = false;
                    line_in_test = true;
                }
                _ => {}
            }
        }
        mask.push(line_in_test || armed);
    }
    mask
}

/// Per-line lexical loop depth over stripped lines: how many `for` /
/// `while` / `loop` bodies enclose the first token of each line. A loop
/// header line itself sits at the *outer* depth (its iterator expression
/// is evaluated once per entry, not per iteration), and a line whose
/// leading token is a run of closing braces is measured after those
/// braces close.
pub fn loop_depths(stripped: &[String]) -> Vec<usize> {
    let mut out = Vec::with_capacity(stripped.len());
    let mut depth: i32 = 0; // brace depth
    let mut loops: Vec<i32> = Vec::new(); // brace depth each loop body opened at
    let mut armed = false; // saw a loop header, waiting for its `{`
    for s in stripped {
        let t = s.trim_start();
        let lead = i32::try_from(t.chars().take_while(|&c| c == '}').count()).unwrap_or(i32::MAX);
        let eff = depth - lead;
        out.push(loops.iter().filter(|&&d| d < eff).count());
        if is_loop_header(t) {
            armed = true;
        }
        for ch in s.chars() {
            match ch {
                '{' => {
                    if armed {
                        loops.push(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while loops.last().is_some_and(|&d| d >= depth) {
                        loops.pop();
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Does a trimmed line begin a `for` / `while` / `loop` construct?
fn is_loop_header(t: &str) -> bool {
    t.starts_with("for ")
        || t.starts_with("while ")
        || t == "loop"
        || t.starts_with("loop ")
        || t.starts_with("loop{")
}

/// Derive the in-crate module path from a workspace-relative file path:
/// `crates/flow/src/lib.rs` ⇒ `""`, `crates/graph/src/gen/wan.rs` ⇒
/// `gen::wan`, `src/bin/sor.rs` ⇒ `bin::sor`.
pub fn module_path(rel: &Path) -> String {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let after_src = match parts.as_slice() {
        ["crates", _, "src", rest @ ..] => rest,
        ["src", rest @ ..] => rest,
        other => other,
    };
    let mut segs: Vec<String> = Vec::new();
    for (i, part) in after_src.iter().enumerate() {
        let last = i + 1 == after_src.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "mod" && stem != "main" {
                segs.push(stem.to_string());
            }
        } else {
            segs.push((*part).to_string());
        }
    }
    segs.join("::")
}

/// Parser context: what the surrounding braces belong to.
#[derive(Clone, Debug)]
enum Ctx {
    /// `impl Foo {` / `impl Tr for Foo {` — fns inside get `self_ty`.
    Impl {
        self_ty: String,
        is_trait_impl: bool,
    },
    /// `trait Foo {` — default method bodies live here.
    Trait { name: String },
    /// A function body; the payload indexes into `SourceFile::items`.
    Fn { item: usize },
    /// Inline `mod foo {` (non-test; test mods are masked out).
    Mod,
}

/// Parse one file. `krate` is the owning crate in dash form; `rel` is
/// workspace-relative and also determines [`SourceFile::module`].
pub fn parse_file(rel: &Path, krate: &str, text: &str) -> SourceFile {
    let raw: Vec<String> = text.lines().map(str::to_string).collect();
    let mut stripper = Stripper::new();
    let stripped: Vec<String> = raw.iter().map(|l| stripper.strip_line(l)).collect();
    let in_test = test_mask(&stripped);
    let loop_depth = loop_depths(&stripped);

    let mut file = SourceFile {
        rel: rel.to_path_buf(),
        krate: krate.to_string(),
        module: module_path(rel),
        raw,
        stripped: stripped.clone(),
        in_test: in_test.clone(),
        uses: Vec::new(),
        items: Vec::new(),
    };

    // Context stack entries: (depth the region opened at, context).
    let mut stack: Vec<(i32, Ctx)> = Vec::new();
    let mut depth: i32 = 0;
    let mut idx = 0usize;
    while idx < stripped.len() {
        if in_test[idx] {
            idx += 1;
            continue;
        }
        let line = stripped[idx].trim().to_string();
        let at_item_level = !stack.iter().any(|(_, c)| matches!(c, Ctx::Fn { .. }));
        let in_fn = stack.iter().rev().find_map(|(_, c)| match c {
            Ctx::Fn { item } => Some(*item),
            _ => None,
        });

        // `use` declarations (item level only).
        if at_item_level && (line.starts_with("use ") || line.starts_with("pub use ")) {
            // A use may span lines until `;`.
            let (text, consumed) = join_until(&stripped, &in_test, idx, ';');
            file.uses.push(parse_use(&text, idx + 1));
            advance_depth(&mut depth, &mut stack, &stripped, &in_test, idx, consumed);
            idx += consumed;
            continue;
        }

        // Item declarations.
        if at_item_level {
            if let Some((vis, rest)) = split_visibility(&line) {
                if let Some(decl) = match_item_decl(rest) {
                    let (sig, consumed) = match decl.kind {
                        ItemKind::Fn => join_signature(&stripped, &in_test, idx),
                        _ => (line.clone(), 1),
                    };
                    let (self_ty, in_trait_impl) = enclosing_impl(&stack);
                    file.items.push(Item {
                        kind: decl.kind,
                        name: decl.name,
                        vis,
                        line: idx + 1,
                        self_ty,
                        in_trait_impl,
                        signature: sig,
                        facts: Facts::default(),
                        calls: Vec::new(),
                    });
                    // fall through to brace tracking: if this fn opens a
                    // body on one of the consumed lines, the Fn context
                    // is pushed there.
                    let item_idx = file.items.len() - 1;
                    // One-line bodies: the signature line may carry body
                    // text after `{` that the main loop never revisits.
                    if decl.kind == ItemKind::Fn {
                        let last = (idx + consumed - 1).min(stripped.len() - 1);
                        if !in_test[last] {
                            if let Some(pos) = stripped[last].find('{') {
                                let tail = &stripped[last][pos + 1..];
                                collect_facts(
                                    &mut file.items[item_idx],
                                    tail,
                                    last + 1,
                                    loop_depth[last],
                                );
                                collect_calls(
                                    &mut file.items[item_idx],
                                    tail,
                                    last + 1,
                                    loop_depth[last],
                                );
                            }
                        }
                    }
                    advance_depth_fn(
                        &mut depth, &mut stack, &stripped, &in_test, idx, consumed, decl.kind,
                        item_idx,
                    );
                    idx += consumed;
                    continue;
                }
                if let Some(imp) = match_impl_or_trait(rest) {
                    advance_depth_ctx(&mut depth, &mut stack, &stripped[idx], imp);
                    idx += 1;
                    continue;
                }
                if let Some(name) = rest.strip_prefix("mod ") {
                    let _ = name;
                    advance_depth_ctx(&mut depth, &mut stack, &stripped[idx], Ctx::Mod);
                    idx += 1;
                    continue;
                }
            }
        }

        // Body line of the innermost function: collect facts and calls.
        if let Some(item) = in_fn {
            collect_facts(
                &mut file.items[item],
                &stripped[idx],
                idx + 1,
                loop_depth[idx],
            );
            collect_calls(
                &mut file.items[item],
                &stripped[idx],
                idx + 1,
                loop_depth[idx],
            );
        }

        advance_depth(&mut depth, &mut stack, &stripped, &in_test, idx, 1);
        idx += 1;
    }

    // Hash-iteration facts need whole-body local tracking; do it per fn
    // now that body spans are known implicitly via recorded lines.
    collect_hash_iteration(&mut file);
    file
}

/// `(self_ty, is_trait_impl)` of the innermost enclosing impl/trait.
fn enclosing_impl(stack: &[(i32, Ctx)]) -> (Option<String>, bool) {
    for (_, c) in stack.iter().rev() {
        match c {
            Ctx::Impl {
                self_ty,
                is_trait_impl,
            } => return (Some(self_ty.clone()), *is_trait_impl),
            Ctx::Trait { name } => return (Some(name.clone()), true),
            _ => {}
        }
    }
    (None, false)
}

/// Track braces across `count` lines starting at `idx`, popping contexts
/// whose opening depth is reached again.
fn advance_depth(
    depth: &mut i32,
    stack: &mut Vec<(i32, Ctx)>,
    stripped: &[String],
    in_test: &[bool],
    idx: usize,
    count: usize,
) {
    for i in idx..(idx + count).min(stripped.len()) {
        if in_test[i] {
            continue;
        }
        for ch in stripped[i].chars() {
            match ch {
                '{' => *depth += 1,
                '}' => {
                    *depth -= 1;
                    while matches!(stack.last(), Some((d, _)) if *d >= *depth) {
                        stack.pop();
                    }
                }
                _ => {}
            }
        }
    }
}

/// Like [`advance_depth`] but pushes the given context when the first
/// `{` on the line opens it (impl / trait / mod headers).
fn advance_depth_ctx(depth: &mut i32, stack: &mut Vec<(i32, Ctx)>, line: &str, ctx: Ctx) {
    let mut pushed = false;
    for ch in line.chars() {
        match ch {
            '{' => {
                if !pushed {
                    stack.push((*depth, ctx.clone()));
                    pushed = true;
                }
                *depth += 1;
            }
            '}' => {
                *depth -= 1;
                while matches!(stack.last(), Some((d, _)) if *d >= *depth) {
                    stack.pop();
                }
            }
            _ => {}
        }
    }
    if !pushed {
        // Header without `{` on this line (`impl Foo\n{`): arm it by
        // pushing at the current depth; the next `{` seen by
        // advance_depth would not know — so push now. The body opens at
        // the current depth in practice for rustfmt-formatted code.
        stack.push((*depth, ctx));
    }
}

/// Like [`advance_depth`] but, for `fn` items, pushes the `Fn` context
/// at the first `{` within the signature's line span (if the fn has a
/// body at all — trait method declarations end with `;`).
#[allow(clippy::too_many_arguments)]
fn advance_depth_fn(
    depth: &mut i32,
    stack: &mut Vec<(i32, Ctx)>,
    stripped: &[String],
    in_test: &[bool],
    idx: usize,
    count: usize,
    kind: ItemKind,
    item_idx: usize,
) {
    let mut pushed = kind != ItemKind::Fn;
    for i in idx..(idx + count).min(stripped.len()) {
        if in_test[i] {
            continue;
        }
        for ch in stripped[i].chars() {
            match ch {
                '{' => {
                    if !pushed {
                        stack.push((*depth, Ctx::Fn { item: item_idx }));
                        pushed = true;
                    }
                    *depth += 1;
                }
                '}' => {
                    *depth -= 1;
                    while matches!(stack.last(), Some((d, _)) if *d >= *depth) {
                        stack.pop();
                    }
                }
                _ => {}
            }
        }
    }
}

/// Split a declared visibility prefix off an item-level line.
/// Returns `None` when the line cannot begin an item (fast reject).
fn split_visibility(line: &str) -> Option<(Visibility, &str)> {
    if let Some(rest) = line.strip_prefix("pub(") {
        let end = rest.find(')')?;
        return Some((Visibility::Restricted, rest[end + 1..].trim_start()));
    }
    if let Some(rest) = line.strip_prefix("pub ") {
        return Some((Visibility::Public, rest.trim_start()));
    }
    Some((Visibility::Private, line))
}

/// A matched item declaration head.
struct DeclHead {
    kind: ItemKind,
    name: String,
}

/// Match `fn name`, `struct Name`, `const NAME`, ... at the start of a
/// (visibility-stripped) line.
fn match_item_decl(rest: &str) -> Option<DeclHead> {
    // `unsafe fn` / `async fn` / `const fn` / `extern "C" fn` prefixes:
    // normalize away the qualifiers that can precede `fn`.
    let mut r = rest;
    for q in ["unsafe ", "async ", "const ", "extern \"\" "] {
        // `const fn` only: `const NAME:` must stay a const item, so peel
        // the qualifier only when `fn ` follows.
        if let Some(stripped) = r.strip_prefix(q) {
            if stripped.trim_start().starts_with("fn ") || q != "const " {
                r = stripped.trim_start();
            }
        }
    }
    let (kw, kind) = [
        ("fn ", ItemKind::Fn),
        ("struct ", ItemKind::Struct),
        ("enum ", ItemKind::Enum),
        ("trait ", ItemKind::Trait),
        ("const ", ItemKind::Const),
        ("static ", ItemKind::Static),
        ("type ", ItemKind::TypeAlias),
    ]
    .into_iter()
    .find(|(kw, _)| r.starts_with(kw))?;
    let name: String = r[kw.len()..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    Some(DeclHead { kind, name })
}

/// Match an `impl`/`trait` header and produce its context.
fn match_impl_or_trait(rest: &str) -> Option<Ctx> {
    if let Some(body) = rest.strip_prefix("impl") {
        let body = body.strip_prefix(char::is_whitespace).unwrap_or(
            // `impl<T> ...`: skip the generics
            body,
        );
        let body = skip_generics(body.trim_start());
        // `Tr for Type {` vs `Type {`
        let head = body.split('{').next().unwrap_or(body);
        let ty_part = match head.find(" for ") {
            Some(pos) => &head[pos + 5..],
            None => head,
        };
        let self_ty = last_path_segment(ty_part.trim());
        return Some(Ctx::Impl {
            self_ty,
            is_trait_impl: head.contains(" for "),
        });
    }
    if let Some(body) = rest.strip_prefix("trait ") {
        let name: String = body
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        return Some(Ctx::Trait { name });
    }
    None
}

/// Skip a balanced leading `<...>` generics list.
fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    s
}

/// Final identifier segment of a (possibly generic, possibly
/// referenced) type path: `&mut sor_graph::Graph<T>` ⇒ `Graph`.
fn last_path_segment(s: &str) -> String {
    let s = s.trim_start_matches(['&', ' ']).trim();
    let s = s.strip_prefix("mut ").unwrap_or(s);
    let base = s.split('<').next().unwrap_or(s).trim();
    base.rsplit("::")
        .next()
        .unwrap_or(base)
        .trim()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// Join stripped lines from `idx` until one contains `terminator`
/// (inclusive); returns the flattened text and the number of lines
/// consumed.
fn join_until(
    stripped: &[String],
    in_test: &[bool],
    idx: usize,
    terminator: char,
) -> (String, usize) {
    let mut text = String::new();
    let mut consumed = 0;
    for i in idx..stripped.len() {
        consumed += 1;
        if !in_test[i] {
            text.push_str(stripped[i].trim());
            text.push(' ');
        }
        if stripped[i].contains(terminator) {
            break;
        }
    }
    (text, consumed)
}

/// Join a `fn` signature: lines from the `fn` keyword through the line
/// holding the body `{` (or a terminating `;` for bodyless items), with
/// the body text after `{` excluded.
fn join_signature(stripped: &[String], in_test: &[bool], idx: usize) -> (String, usize) {
    let mut text = String::new();
    let mut consumed = 0;
    for i in idx..stripped.len() {
        consumed += 1;
        let s = if in_test[i] { "" } else { stripped[i].trim() };
        if let Some(pos) = s.find('{') {
            text.push_str(&s[..pos]);
            break;
        }
        text.push_str(s);
        text.push(' ');
        if s.ends_with(';') {
            break;
        }
        if consumed > 40 {
            break; // runaway guard: malformed input
        }
    }
    (text.trim().to_string(), consumed)
}

/// Parse one flattened `use` declaration.
fn parse_use(text: &str, line: usize) -> UseDecl {
    let body = text
        .trim_start()
        .trim_start_matches("pub ")
        .trim_start_matches("use ")
        .trim_end()
        .trim_end_matches(';')
        .trim();
    let krate = body
        .split("::")
        .next()
        .map(str::trim)
        .filter(|seg| seg.starts_with("sor_") || *seg == "semi_oblivious_routing")
        .map(|seg| seg.replace('_', "-"));
    let mut names = Vec::new();
    collect_use_leaves(body, &mut names);
    UseDecl { line, krate, names }
}

/// Recursively collect the leaf names a use-tree binds.
fn collect_use_leaves(body: &str, out: &mut Vec<String>) {
    let body = body.trim();
    if let Some(open) = body.find('{') {
        // `path::{a, b::c, d as e}` — split the brace group at top level.
        let inner = body[open + 1..]
            .rsplit_once('}')
            .map(|(i, _)| i)
            .unwrap_or(&body[open + 1..]);
        let mut depth = 0i32;
        let mut start = 0usize;
        let bytes: Vec<char> = inner.chars().collect();
        let mut segments: Vec<String> = Vec::new();
        for (i, c) in bytes.iter().enumerate() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                ',' if depth == 0 => {
                    segments.push(bytes[start..i].iter().collect());
                    start = i + 1;
                }
                _ => {}
            }
        }
        segments.push(bytes[start..].iter().collect());
        for seg in segments {
            collect_use_leaves(&seg, out);
        }
        return;
    }
    if let Some((_, rename)) = body.split_once(" as ") {
        let name = ident_of(rename);
        if !name.is_empty() {
            out.push(name);
        }
        return;
    }
    let leaf = body.rsplit("::").next().unwrap_or(body).trim();
    if leaf == "*" || leaf.is_empty() {
        return; // glob: binds nothing nameable here
    }
    let name = ident_of(leaf);
    if !name.is_empty() && name != "self" {
        out.push(name);
    }
}

/// Identifier bound by a (trimmed) `let ` line: `let mut out = ...` ⇒
/// `out`. `None` for destructuring patterns.
pub(crate) fn ident_after_let(t: &str) -> Option<String> {
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
    let name = ident_of(rest);
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Leading identifier of `s`.
fn ident_of(s: &str) -> String {
    s.trim()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// Tokens that construct an RNG *from ambient entropy* when they appear
/// in a function body. Seeded constructors (`seed_from_u64`, `from_seed`)
/// are deliberately excluded: deriving a stream from a stored seed is
/// deterministic and exactly what the audit wants code to do.
const RNG_CTOR_TOKENS: [&str; 3] = ["from_entropy(", "thread_rng(", "from_os_rng("];

/// Heap-allocating constructor tokens. `with_capacity` constructors are
/// deliberately excluded: pre-sizing is exactly what the hot-path rules
/// want code to do.
const ALLOC_CTOR_TOKENS: [&str; 10] = [
    "Vec::new(",
    "vec![",
    "String::new(",
    "String::from(",
    "Box::new(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    "VecDeque::new(",
];

/// Allocating adaptor tokens (matched anywhere in a line).
const ALLOC_ADAPTOR_TOKENS: [&str; 5] = [
    ".collect()",
    ".collect::<",
    ".to_vec()",
    ".to_string()",
    ".to_owned()",
];

/// Is the character before byte `pos` of `s` not part of an identifier
/// (so a token starting at `pos` stands on its own)?
fn token_at_boundary(s: &str, pos: usize) -> bool {
    if pos == 0 {
        return true;
    }
    let b = s.as_bytes()[pos - 1];
    !(b.is_ascii_alphanumeric() || b == b'_')
}

/// Identifier ending at byte `pos` of `line`, skipping balanced
/// `(..)`/`[..]` suffix groups, so `self.shards[i].lock()` and
/// `shard_for(key).lock()` both yield the ident left of the group.
pub(crate) fn receiver_before(line: &str, pos: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = pos;
    while i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
        let close = bytes[i - 1];
        let open = if close == b')' { b'(' } else { b'[' };
        let mut depth = 0i32;
        let mut j = i;
        while j > 0 {
            j -= 1;
            if bytes[j] == close {
                depth += 1;
            } else if bytes[j] == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        i = j;
    }
    let end = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i < end {
        Some(line[i..end].to_string())
    } else {
        None
    }
}

/// Scan one stripped body line into the item's facts. `depth` is the
/// line's lexical loop depth from [`loop_depths`].
fn collect_facts(item: &mut Item, s: &str, line: usize, depth: usize) {
    for (token, kind, shown) in [
        ("panic!(", PanicKind::Explicit, "panic!"),
        ("unreachable!(", PanicKind::Explicit, "unreachable!"),
        ("todo!(", PanicKind::Explicit, "todo!"),
        ("unimplemented!(", PanicKind::Explicit, "unimplemented!"),
        (".unwrap()", PanicKind::Unwrap, ".unwrap()"),
        (".expect(", PanicKind::Unwrap, ".expect(..)"),
    ] {
        if s.contains(token) {
            item.facts.panics.push(PanicSite {
                line,
                kind,
                token: shown.to_string(),
            });
        }
    }
    if has_indexing(s) {
        item.facts.panics.push(PanicSite {
            line,
            kind: PanicKind::Indexing,
            token: "[..] indexing".to_string(),
        });
    }
    if RNG_CTOR_TOKENS.iter().any(|t| s.contains(t)) {
        item.facts.rng_ctors.push(line);
    }
    for tok in ALLOC_CTOR_TOKENS {
        for (pos, _) in s.match_indices(tok) {
            if token_at_boundary(s, pos) {
                item.facts.allocs.push(AllocSite {
                    line,
                    kind: AllocKind::Ctor,
                    token: tok.trim_end_matches(['(', '[']).to_string(),
                    depth,
                    recv: None,
                });
            }
        }
    }
    for tok in ALLOC_ADAPTOR_TOKENS {
        for _ in s.match_indices(tok) {
            item.facts.allocs.push(AllocSite {
                line,
                kind: AllocKind::Adaptor,
                token: tok.trim_end_matches(['(', '<', ':']).to_string(),
                depth,
                recv: None,
            });
        }
    }
    for (pos, _) in s.match_indices(".clone()") {
        item.facts.allocs.push(AllocSite {
            line,
            kind: AllocKind::Clone,
            token: ".clone()".to_string(),
            depth,
            recv: receiver_before(s, pos),
        });
    }
}

/// `ident[`, `)[` or `][` — an index expression rather than an array
/// type / attribute / slice pattern.
fn has_indexing(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    for (i, c) in chars.iter().enumerate() {
        if *c != '[' || i == 0 {
            continue;
        }
        let prev = chars[i - 1];
        if prev.is_ascii_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
            // `#[attr]` is excluded because `#` precedes `[` directly;
            // `x[` / `)(..)[` / `x[0][1]` are index expressions.
            return true;
        }
    }
    false
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "fn", "let", "in", "loop", "move", "as", "else",
];

/// Scan one stripped body line for outgoing call references. `depth` is
/// the line's lexical loop depth from [`loop_depths`].
fn collect_calls(item: &mut Item, s: &str, line: usize, depth: usize) {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '(' {
            i += 1;
            continue;
        }
        // Walk back over the identifier directly before `(`.
        let mut end = i;
        while end > 0 && chars[end - 1].is_whitespace() {
            end -= 1;
        }
        let mut start = end;
        while start > 0 && (chars[start - 1].is_ascii_alphanumeric() || chars[start - 1] == '_') {
            start -= 1;
        }
        if start == end {
            i += 1;
            continue;
        }
        let name: String = chars[start..end].iter().collect();
        if NON_CALL_KEYWORDS.contains(&name.as_str()) || name.chars().all(|c| c.is_ascii_digit()) {
            i += 1;
            continue;
        }
        let before: String = chars[..start].iter().collect();
        let before = before.trim_end();
        if before.ends_with('!') {
            i += 1; // macro invocation, not a fn call
            continue;
        }
        let method = before.ends_with('.');
        let qualifier = if before.ends_with("::") {
            let q = before.trim_end_matches("::");
            let qi: String = q
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            let qi: String = qi.chars().rev().collect();
            if qi.is_empty() {
                None
            } else {
                Some(qi)
            }
        } else {
            None
        };
        item.calls.push(CallRef {
            name,
            qualifier,
            method,
            line,
            depth,
        });
        i += 1;
    }
}

/// 1-based body span of every `fn` item with a body, as `(item index,
/// opening-`{` line, closing-`}` line)`. Mirrors the context discipline
/// of the main parse: `#[cfg(test)]` regions are skipped and a bodyless
/// trait-method declaration (a `;` before any `{`) produces no span.
/// The concurrency rules use this to scan guard scopes and atomic
/// accesses with correct function attribution.
pub fn body_spans(file: &SourceFile) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    let mut armed: Option<usize> = None; // fn item waiting for its `{`
    let mut open: Option<(usize, usize, i32)> = None; // (item, start, depth at `{`)
    let mut depth: i32 = 0;
    for (idx, s) in file.stripped.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let line_no = idx + 1;
        if armed.is_none() && open.is_none() {
            armed = file
                .items
                .iter()
                .position(|it| it.kind == ItemKind::Fn && it.line == line_no);
        }
        for ch in s.chars() {
            match ch {
                '{' => {
                    if let Some(item) = armed.take() {
                        open = Some((item, line_no, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some((item, start, fd)) = open {
                        if depth <= fd {
                            out.push((item, start, line_no));
                            open = None;
                        }
                    }
                }
                _ => {}
            }
        }
        if armed.is_some() && s.contains(';') {
            armed = None; // bodyless declaration (trait method)
        }
    }
    out
}

/// Tokens that declare a hash-ordered local on a `let` line.
const HASH_CTOR_TOKENS: [&str; 4] = ["HashMap::", "HashSet::", ": HashMap<", ": HashSet<"];

/// Iteration adaptors whose order is the hash order.
const HASH_ITER_TOKENS: [&str; 6] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".into_iter()",
    ".drain(",
];

/// Second pass: within each function body, find `HashMap`/`HashSet`
/// locals and record lines that iterate them in hash order.
fn collect_hash_iteration(file: &mut SourceFile) {
    // Recompute body spans cheaply: a function's fact/call lines bound
    // its body; instead, rescan with the same context discipline. We
    // track, per function item (by declaration line), the set of hash
    // locals seen so far in its body, attributing facts as we go.
    let stripped = file.stripped.clone();
    let in_test = file.in_test.clone();
    // Map from declaration line to item index for fns.
    let mut current: Option<(usize, Vec<String>)> = None; // (item idx, hash locals)
    let mut fn_depth: Option<i32> = None;
    let mut depth: i32 = 0;
    for (idx, s) in stripped.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let line_no = idx + 1;
        // Entering a fn item?
        if fn_depth.is_none() {
            if let Some(item_pos) = file
                .items
                .iter()
                .position(|it| it.kind == ItemKind::Fn && it.line == line_no)
            {
                current = Some((item_pos, Vec::new()));
                // Body starts at the first `{` from here; depth tracking
                // below arms fn_depth when it sees it.
                fn_depth = Some(-1); // armed, waiting for `{`
            }
        }
        if let (Some(fd), Some((item_pos, locals))) = (fn_depth, current.as_mut()) {
            if fd >= 0 {
                // Inside the body: track hash locals and iteration.
                let t = s.trim_start();
                if t.starts_with("let ") && HASH_CTOR_TOKENS.iter().any(|tok| s.contains(tok)) {
                    let after_let = t
                        .trim_start_matches("let ")
                        .trim_start_matches("mut ")
                        .trim_start();
                    let name = ident_of(after_let);
                    if !name.is_empty() {
                        locals.push(name);
                    }
                }
                for local in locals.iter() {
                    let iterated = HASH_ITER_TOKENS
                        .iter()
                        .any(|tok| s.contains(&format!("{local}{tok}")))
                        || s.contains(&format!("in {local} "))
                        || s.contains(&format!("in &{local} "))
                        || s.contains(&format!("in &mut {local} "))
                        || s.contains(&format!("in {local}."))
                        || s.contains(&format!("in &{local}."));
                    if iterated {
                        file.items[*item_pos].facts.hash_iters.push(line_no);
                        break;
                    }
                }
            }
        }
        for ch in s.chars() {
            match ch {
                '{' => {
                    if fn_depth == Some(-1) {
                        fn_depth = Some(depth);
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if fn_depth.is_some_and(|fd| fd >= 0 && depth <= fd) {
                        fn_depth = None;
                        current = None;
                    }
                }
                _ => {}
            }
        }
        // A bodyless fn (trait method decl) ends at `;` while armed.
        if fn_depth == Some(-1) && s.contains(';') {
            fn_depth = None;
            current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        parse_file(Path::new("crates/flow/src/x.rs"), "sor-flow", text)
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path(Path::new("crates/flow/src/lib.rs")), "");
        assert_eq!(
            module_path(Path::new("crates/graph/src/gen/wan.rs")),
            "gen::wan"
        );
        assert_eq!(module_path(Path::new("crates/graph/src/gen/mod.rs")), "gen");
        assert_eq!(module_path(Path::new("src/bin/sor.rs")), "bin::sor");
        assert_eq!(module_path(Path::new("src/lib.rs")), "");
    }

    #[test]
    fn extracts_fns_and_visibility() {
        let f = parse("pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\n");
        let names: Vec<(&str, Visibility)> =
            f.items.iter().map(|i| (i.name.as_str(), i.vis)).collect();
        assert_eq!(
            names,
            vec![
                ("a", Visibility::Public),
                ("b", Visibility::Private),
                ("c", Visibility::Restricted)
            ]
        );
    }

    #[test]
    fn multiline_signature_is_joined() {
        let f =
            parse("pub fn long(\n    a: usize,\n    rng: &mut impl Rng,\n) -> usize {\n    a\n}\n");
        assert_eq!(f.items.len(), 1);
        assert!(f.items[0].signature.contains("rng: &mut impl Rng"));
    }

    #[test]
    fn impl_methods_get_self_ty() {
        let f = parse("struct S;\nimpl S {\n    pub fn m(&self) {}\n}\nimpl Clone for S {\n    fn clone(&self) -> S { S }\n}\n");
        let m = f.items.iter().find(|i| i.name == "m").expect("m");
        assert_eq!(m.self_ty.as_deref(), Some("S"));
        assert!(!m.in_trait_impl);
        let c = f.items.iter().find(|i| i.name == "clone").expect("clone");
        assert!(c.in_trait_impl);
    }

    #[test]
    fn facts_panics_and_rng() {
        let f = parse(
            "fn f(o: Option<u32>) -> u32 {\n    let mut rng = StdRng::from_entropy();\n    let _ = rng;\n    o.unwrap()\n}\n",
        );
        let item = &f.items[0];
        assert!(item
            .facts
            .panics
            .iter()
            .any(|p| p.kind == PanicKind::Unwrap));
        assert_eq!(item.facts.rng_ctors, vec![2]);
        // seeded construction is deterministic, not an rng-ctor fact
        let g = parse("fn g() {\n    let _ = StdRng::seed_from_u64(3);\n}\n");
        assert!(g.items[0].facts.rng_ctors.is_empty());
    }

    #[test]
    fn indexing_fact_but_not_attributes() {
        let f = parse("#[derive(Debug)]\nstruct T;\nfn f(v: &[u32]) -> u32 {\n    v[0]\n}\n");
        let item = f.items.iter().find(|i| i.name == "f").expect("f");
        assert!(item
            .facts
            .panics
            .iter()
            .any(|p| p.kind == PanicKind::Indexing));
    }

    #[test]
    fn calls_free_method_and_qualified() {
        let f = parse("fn f() {\n    helper();\n    x.frob();\n    Path::from_edges(a, b);\n}\n");
        let calls = &f.items[0].calls;
        assert!(calls.iter().any(|c| c.name == "helper" && !c.method));
        assert!(calls.iter().any(|c| c.name == "frob" && c.method));
        assert!(calls
            .iter()
            .any(|c| c.name == "from_edges" && c.qualifier.as_deref() == Some("Path")));
        // macros are not calls
        let g = parse("fn g() { println!(\"x\"); }\n");
        assert!(!g.items[0].calls.iter().any(|c| c.name == "println"));
    }

    #[test]
    fn use_decls_bind_names_and_crates() {
        let f = parse("use sor_graph::{Graph, NodeId as N};\nuse std::collections::HashMap;\n");
        assert_eq!(f.uses.len(), 2);
        assert_eq!(f.uses[0].krate.as_deref(), Some("sor-graph"));
        assert!(f.uses[0].names.contains(&"Graph".to_string()));
        assert!(f.uses[0].names.contains(&"N".to_string()));
        assert_eq!(f.uses[1].krate, None);
    }

    #[test]
    fn test_mod_is_skipped() {
        let f =
            parse("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn fake() { x.unwrap(); }\n}\n");
        assert_eq!(f.items.len(), 1);
        assert_eq!(f.items[0].name, "real");
    }

    #[test]
    fn body_spans_cover_fn_bodies() {
        let f = parse(
            "pub fn one() {}\n\npub fn multi(\n    a: usize,\n) -> usize {\n    let b = a + 1;\n    b\n}\n\ntrait T {\n    fn decl(&self);\n}\n",
        );
        let spans = body_spans(&f);
        // `one` opens and closes on line 1; `multi`'s body is lines 5–8;
        // the bodyless trait declaration yields no span.
        let one = f.items.iter().position(|i| i.name == "one").expect("one");
        let multi = f
            .items
            .iter()
            .position(|i| i.name == "multi")
            .expect("multi");
        assert!(spans.contains(&(one, 1, 1)), "{spans:?}");
        assert!(spans.contains(&(multi, 5, 8)), "{spans:?}");
        assert_eq!(spans.len(), 2, "{spans:?}");
    }

    #[test]
    fn use_glob_binds_no_names() {
        let f = parse("pub use sor_graph::*;\nuse sor_flow::{self, restricted::*};\n");
        // a glob re-export records the crate but no leaf names, so name
        // resolution falls through to the workspace tier instead of
        // treating `*` as an identifier.
        assert_eq!(f.uses[0].krate.as_deref(), Some("sor-graph"));
        assert!(f.uses[0].names.is_empty(), "{:?}", f.uses[0].names);
        assert_eq!(f.uses[1].krate.as_deref(), Some("sor-flow"));
        assert!(f.uses[1].names.is_empty(), "{:?}", f.uses[1].names);
    }

    #[test]
    fn use_rename_shadows_the_original_name() {
        let f = parse("use sor_graph::shortest_path as sp;\nfn f() {\n    sp(1);\n}\n");
        // only the rename is bound: the original name stays resolvable
        // to a same-file/same-crate item if one exists.
        assert_eq!(f.uses[0].names, vec!["sp".to_string()]);
        assert!(f.items[0].calls.iter().any(|c| c.name == "sp"));
    }

    #[test]
    fn loop_depths_track_nesting() {
        let text = "fn f() {\n    let a = 1;\n    for i in 0..3 {\n        let b = i;\n        while b > 0 {\n            work();\n        }\n        after();\n    }\n    tail();\n}\n";
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let d = loop_depths(&lines);
        // header lines sit at the outer depth; bodies one deeper.
        assert_eq!(d, vec![0, 0, 0, 1, 1, 2, 1, 1, 0, 0, 0], "{d:?}");
    }

    #[test]
    fn loop_depth_attached_to_calls_and_allocs() {
        let f = parse(
            "fn f() {\n    let mut out = Vec::new();\n    for i in 0..3 {\n        out.push(helper(i));\n        let s = x.clone();\n    }\n}\n",
        );
        let item = &f.items[0];
        let helper = item.calls.iter().find(|c| c.name == "helper").expect("h");
        assert_eq!(helper.depth, 1);
        let ctor = item
            .facts
            .allocs
            .iter()
            .find(|a| a.token == "Vec::new")
            .expect("ctor");
        assert_eq!((ctor.kind, ctor.depth, ctor.line), (AllocKind::Ctor, 0, 2));
        let clone = item
            .facts
            .allocs
            .iter()
            .find(|a| a.kind == AllocKind::Clone)
            .expect("clone");
        assert_eq!(clone.depth, 1);
        assert_eq!(clone.recv.as_deref(), Some("x"));
    }

    #[test]
    fn alloc_tokens_respect_boundaries() {
        let f = parse("fn f() {\n    let a = SmallVec::new();\n    let b = v.collect::<Vec<_>>();\n    let c = Vec::with_capacity(8);\n}\n");
        let allocs = &f.items[0].facts.allocs;
        // `SmallVec::new` is not `Vec::new`; `with_capacity` is not a
        // finding token; `.collect::<` is.
        assert!(!allocs.iter().any(|a| a.token == "Vec::new"), "{allocs:?}");
        assert_eq!(allocs.len(), 1, "{allocs:?}");
        assert_eq!(allocs[0].token, ".collect");
    }

    #[test]
    fn hash_iteration_detected() {
        let text = "fn f() {\n    let mut m = HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in m.iter() {\n        let _ = (k, v);\n    }\n}\n";
        let f = parse(text);
        assert_eq!(f.items[0].facts.hash_iters, vec![4]);
        // sorted iteration over a Vec is not flagged
        let g = parse("fn g() {\n    let v = vec![1];\n    for x in v.iter() { let _ = x; }\n}\n");
        assert!(g.items[0].facts.hash_iters.is_empty());
    }
}
