//! The committed-findings baseline: CI fails only on *regressions*.
//!
//! `check-baseline.json` holds the fingerprints of findings that are
//! known, triaged, and deliberately tolerated (each entry keeps the
//! rule/file/message context so the file reviews like a TODO list).
//! [`partition`] splits a fresh run against it; the driver exits
//! non-zero only for the `new` side. Regenerate with
//! `cargo run -p sor-check -- --write-baseline check-baseline.json`
//! after fixing or triaging findings — shrinking the file is progress,
//! growing it is a review conversation.
//!
//! Reading the file needs a JSON parser; the registry is unreachable
//! from CI, so a minimal recursive-descent reader for the JSON subset
//! we emit lives here (objects, arrays, strings, numbers, booleans,
//! null — no surrogate-pair escapes).

use std::collections::BTreeSet;
use std::path::Path;

use crate::report::{json_escape, Finding};

/// A parsed JSON value (subset; numbers are kept as f64).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered as (key, value) pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_obj(chars, pos),
        Some('[') => parse_arr(chars, pos),
        Some('"') => parse_str(chars, pos).map(Json::Str),
        Some('t') => parse_lit(chars, pos, "true", Json::Bool(true)),
        Some('f') => parse_lit(chars, pos, "false", Json::Bool(false)),
        Some('n') => parse_lit(chars, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_num(chars, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn parse_lit(chars: &[char], pos: &mut usize, lit: &str, val: Json) -> Result<Json, String> {
    if chars[*pos..].starts_with(&lit.chars().collect::<Vec<_>>()[..]) {
        *pos += lit.len();
        Ok(val)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < chars.len() && matches!(chars[*pos], '-' | '+' | '.' | 'e' | 'E' | '0'..='9') {
        *pos += 1;
    }
    let s: String = chars[start..*pos].iter().collect();
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at offset {start}"))
}

fn parse_str(chars: &[char], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(chars.get(*pos), Some(&'"'));
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = chars.get(*pos).copied().ok_or("eof in escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = chars.get(*pos..*pos + 4).unwrap_or(&[]).iter().collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("eof in string".to_string())
}

fn parse_arr(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut out = Vec::new();
    loop {
        skip_ws(chars, pos);
        if chars.get(*pos) == Some(&']') {
            *pos += 1;
            return Ok(Json::Arr(out));
        }
        out.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {}
            other => return Err(format!("expected , or ] got {other:?}")),
        }
    }
}

fn parse_obj(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut out = Vec::new();
    loop {
        skip_ws(chars, pos);
        if chars.get(*pos) == Some(&'}') {
            *pos += 1;
            return Ok(Json::Obj(out));
        }
        if chars.get(*pos) != Some(&'"') {
            return Err(format!("expected key at offset {pos}"));
        }
        let key = parse_str(chars, pos)?;
        skip_ws(chars, pos);
        if chars.get(*pos) != Some(&':') {
            return Err(format!("expected : at offset {pos}"));
        }
        *pos += 1;
        out.push((key, parse_value(chars, pos)?));
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {}
            other => return Err(format!("expected , or }} got {other:?}")),
        }
    }
}

/// Load the baseline fingerprint set from `path`. A missing file is an
/// empty baseline (everything is new); a malformed file is an error so
/// a corrupted baseline cannot silently disable the gate.
pub fn load(path: &Path) -> Result<BTreeSet<String>, String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(BTreeSet::new());
    };
    let doc = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing `findings` array", path.display()))?;
    let mut out = BTreeSet::new();
    for f in findings {
        let fp = f
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: entry missing `fingerprint`", path.display()))?;
        out.insert(fp.to_string());
    }
    Ok(out)
}

/// Serialize findings as a baseline document (sorted, deduplicated by
/// fingerprint, with enough context to review).
pub fn render(findings: &[Finding]) -> String {
    let mut entries: Vec<&Finding> = findings.iter().collect();
    entries.sort_by_key(|f| f.fingerprint());
    entries.dedup_by_key(|f| f.fingerprint());
    let mut out = String::from("{\n  \"tool\": \"sor-check\",\n  \"version\": 1,\n");
    out.push_str("  \"findings\": [\n");
    let rows: Vec<String> = entries
        .iter()
        .map(|f| {
            format!(
                "    {{\"fingerprint\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.fingerprint()),
                json_escape(&f.rule),
                json_escape(&f.file.display().to_string()),
                json_escape(&f.message)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Split findings into (new, baselined) against a fingerprint set.
pub fn partition(
    findings: Vec<Finding>,
    baseline: &BTreeSet<String>,
) -> (Vec<Finding>, Vec<Finding>) {
    let mut new = Vec::new();
    let mut old = Vec::new();
    for f in findings {
        if baseline.contains(&f.fingerprint()) {
            old.push(f);
        } else {
            new.push(f);
        }
    }
    (new, old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: &str, sym: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: PathBuf::from("crates/flow/src/x.rs"),
            line: 1,
            symbol: sym.into(),
            message: format!("{rule} on {sym}"),
            witness: Vec::new(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let doc = parse_json(r#"{"a": [1, "x\n", true, null], "b": {"c": -2.5}}"#).expect("parse");
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")),
            Some(&Json::Num(-2.5))
        );
        let arr = doc.get("a").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr[1], Json::Str("x\n".into()));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2] extra").is_err());
    }

    #[test]
    fn render_then_load_roundtrip() {
        let fs = vec![
            finding("dead-api", "sor-flow::a"),
            finding("panic-path", "sor-core::b"),
        ];
        let text = render(&fs);
        let tmp = std::env::temp_dir().join("sor_check_baseline_test.json");
        std::fs::write(&tmp, &text).expect("write tmp");
        let set = load(&tmp).expect("load");
        std::fs::remove_file(&tmp).ok();
        assert_eq!(set.len(), 2);
        assert!(set.contains(&fs[0].fingerprint()));
    }

    #[test]
    fn partition_splits() {
        let fs = vec![finding("dead-api", "a"), finding("dead-api", "b")];
        let mut base = BTreeSet::new();
        base.insert(fs[0].fingerprint());
        let (new, old) = partition(fs, &base);
        assert_eq!(new.len(), 1);
        assert_eq!(old.len(), 1);
        assert_eq!(new[0].symbol, "b");
    }

    #[test]
    fn missing_baseline_is_empty() {
        let set = load(Path::new("/no/such/baseline.json")).expect("empty");
        assert!(set.is_empty());
    }

    #[test]
    fn malformed_baseline_is_error() {
        let tmp = std::env::temp_dir().join("sor_check_baseline_bad.json");
        std::fs::write(&tmp, "{not json").expect("write tmp");
        let r = load(&tmp);
        std::fs::remove_file(&tmp).ok();
        assert!(r.is_err());
    }
}
