//! `check.toml`: declarative configuration for the semantic pass.
//!
//! The workspace root carries a `check.toml` naming the crate layering
//! DAG and the scopes of the semantic rules. The file is parsed with a
//! deliberately tiny TOML subset reader (sections, `key = value` with
//! string / bool / integer / string-array values, `#` comments) — the
//! registry is unreachable from CI, so no `toml` crate.
//!
//! Missing file ⇒ [`Config::default`]: every semantic rule that needs
//! configuration (layering, panic scope, determinism scope, dead-API
//! scope) is simply skipped, which is what the seeded test fixtures
//! without a `check.toml` rely on.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed semantic-pass configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// `[layers]`: crate → crates it may depend on *directly*. The
    /// transitive closure of this relation is what the layering rule
    /// permits; anything else is a violation.
    pub layers: BTreeMap<String, Vec<String>>,
    /// `[panics] public_crates`: crates whose `pub` functions must not
    /// reach a panic site.
    pub panic_public_crates: Vec<String>,
    /// `[panics] include_indexing`: treat slice/`Vec` indexing as a
    /// panic source. Off by default — indexing is pervasive in the
    /// adjacency code and flagging it drowns the signal; the switch
    /// exists so an audit build can turn it on.
    pub panic_include_indexing: bool,
    /// `[panics] index_crates`: crates whose indexing sites count as
    /// panic sources even while the global `include_indexing` switch is
    /// off — a per-crate opt-in for code (like the serving layer) where
    /// an out-of-bounds panic would take down a long-lived process.
    pub panic_index_crates: Vec<String>,
    /// `[determinism] order_crates`: crates where `HashMap`/`HashSet`
    /// iteration order is treated as observable output (samplers and
    /// solvers) and therefore flagged.
    pub order_crates: Vec<String>,
    /// `[determinism] rng_crates`: crates whose functions must not
    /// construct an RNG unless they take a seed or `Rng` parameter.
    /// The bench crate is deliberately out of scope — its hard-coded
    /// seeds *define* the experiments.
    pub rng_crates: Vec<String>,
    /// `[dead-api] crates`: crates whose `pub` items are audited for
    /// having at least one reference from elsewhere in the workspace.
    pub dead_api_crates: Vec<String>,
    /// `[concurrency] crates`: crates in scope for the lock-order,
    /// held-lock and atomics rules (the crates that actually share
    /// state across threads). Empty ⇒ those rules are skipped.
    pub concurrency_crates: Vec<String>,
    /// `[concurrency] expensive`: function names treated as expensive
    /// or blocking (MWU solves, FRT builds, I/O, channel sends) by the
    /// held-lock rule — calling one while a guard is live is flagged.
    pub expensive_fns: Vec<String>,
    /// `[concurrency] parallel_targets`: entry points slated for rayon
    /// parallelization (plain `name` or `crate::name`); everything
    /// reachable from them is audited for non-`Send` / interior-mutable
    /// types by the rayon-readiness rule.
    pub parallel_targets: Vec<String>,
    /// `[hotpath] entries`: hot entry points (plain `name` or
    /// `crate::name`). The hot-path rules walk the layering-filtered
    /// call graph from each entry and audit everything reachable for
    /// allocation and complexity cost. Empty ⇒ the family is skipped.
    pub hotpath_entries: Vec<String>,
    /// `[hotpath] alloc_min_depth`: minimum effective loop depth (the
    /// maximum lexical loop depth along the witness chain, call sites
    /// included) at which a reachable allocation site becomes an
    /// `alloc-in-hot` finding. Shallower sites still count in the cost
    /// report. `None` ⇒ the default of 1.
    pub hotpath_alloc_min_depth: Option<i64>,
}

/// A `check.toml` parse failure, with a 1-based line number.
#[derive(Clone, Debug)]
pub struct ConfigError {
    /// Line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "check.toml:{}: {}", self.line, self.message)
    }
}

/// One parsed TOML value from the subset grammar.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    StrArray(Vec<String>),
}

impl Config {
    /// Load `check.toml` from `root`, or the permissive default when the
    /// file does not exist.
    pub fn load(root: &Path) -> Result<Config, ConfigError> {
        let path = root.join("check.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(Config::default());
        };
        Config::parse(&text)
    }

    /// Parse configuration text (the TOML subset described in the module
    /// docs).
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = unquote(line[..eq].trim());
            let value = parse_value(line[eq + 1..].trim()).ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("unsupported value syntax `{}`", line[eq + 1..].trim()),
            })?;
            cfg.apply(&section, &key, value, line_no)?;
        }
        cfg.validate_layers()?;
        Ok(cfg)
    }

    /// Route one `key = value` pair into the matching field.
    fn apply(
        &mut self,
        section: &str,
        key: &str,
        value: Value,
        line: usize,
    ) -> Result<(), ConfigError> {
        let err = |message: String| Err(ConfigError { line, message });
        match (section, key) {
            ("layers", krate) => match value {
                Value::StrArray(deps) => {
                    self.layers.insert(krate.to_string(), deps);
                    Ok(())
                }
                _ => err(format!("[layers] {krate} must be an array of crate names")),
            },
            ("panics", "public_crates") => match value {
                Value::StrArray(v) => {
                    self.panic_public_crates = v;
                    Ok(())
                }
                _ => err("panics.public_crates must be an array".into()),
            },
            ("panics", "include_indexing") => match value {
                Value::Bool(b) => {
                    self.panic_include_indexing = b;
                    Ok(())
                }
                _ => err("panics.include_indexing must be a bool".into()),
            },
            ("panics", "index_crates") => match value {
                Value::StrArray(v) => {
                    self.panic_index_crates = v;
                    Ok(())
                }
                _ => err("panics.index_crates must be an array".into()),
            },
            ("determinism", "order_crates") => match value {
                Value::StrArray(v) => {
                    self.order_crates = v;
                    Ok(())
                }
                _ => err("determinism.order_crates must be an array".into()),
            },
            ("determinism", "rng_crates") => match value {
                Value::StrArray(v) => {
                    self.rng_crates = v;
                    Ok(())
                }
                _ => err("determinism.rng_crates must be an array".into()),
            },
            ("dead-api", "crates") => match value {
                Value::StrArray(v) => {
                    self.dead_api_crates = v;
                    Ok(())
                }
                _ => err("dead-api.crates must be an array".into()),
            },
            ("concurrency", "crates") => match value {
                Value::StrArray(v) => {
                    self.concurrency_crates = v;
                    Ok(())
                }
                _ => err("concurrency.crates must be an array".into()),
            },
            ("concurrency", "expensive") => match value {
                Value::StrArray(v) => {
                    self.expensive_fns = v;
                    Ok(())
                }
                _ => err("concurrency.expensive must be an array".into()),
            },
            ("concurrency", "parallel_targets") => match value {
                Value::StrArray(v) => {
                    self.parallel_targets = v;
                    Ok(())
                }
                _ => err("concurrency.parallel_targets must be an array".into()),
            },
            ("hotpath", "entries") => match value {
                Value::StrArray(v) => {
                    self.hotpath_entries = v;
                    Ok(())
                }
                _ => err("hotpath.entries must be an array".into()),
            },
            ("hotpath", "alloc_min_depth") => match value {
                Value::Int(n) if n >= 0 => {
                    self.hotpath_alloc_min_depth = Some(n);
                    Ok(())
                }
                _ => err("hotpath.alloc_min_depth must be a non-negative integer".into()),
            },
            _ => err(format!("unknown configuration key [{section}] {key}")),
        }
    }

    /// The declared layering must itself be a DAG, and every crate named
    /// as a dependency must be declared as a layer (so a typo cannot
    /// silently open a hole).
    fn validate_layers(&self) -> Result<(), ConfigError> {
        for (krate, deps) in &self.layers {
            for d in deps {
                if !self.layers.contains_key(d) {
                    return Err(ConfigError {
                        line: 0,
                        message: format!("[layers] {krate} depends on undeclared crate `{d}`"),
                    });
                }
            }
        }
        // Kahn's algorithm: if a topological order does not consume every
        // crate, the remainder is cyclic.
        let mut indegree: BTreeMap<&str, usize> =
            self.layers.keys().map(|k| (k.as_str(), 0)).collect();
        for deps in self.layers.values() {
            for d in deps {
                if let Some(n) = indegree.get_mut(d.as_str()) {
                    *n += 1;
                }
            }
        }
        let mut queue: Vec<&str> = indegree
            .iter()
            .filter(|(_, n)| **n == 0)
            .map(|(k, _)| *k)
            .collect();
        let mut seen = 0usize;
        while let Some(k) = queue.pop() {
            seen += 1;
            for d in &self.layers[k] {
                if let Some(n) = indegree.get_mut(d.as_str()) {
                    *n -= 1;
                    if *n == 0 {
                        queue.push(d);
                    }
                }
            }
        }
        if seen != self.layers.len() {
            return Err(ConfigError {
                line: 0,
                message: "[layers] declared dependency graph contains a cycle".into(),
            });
        }
        Ok(())
    }

    /// The set of crates `krate` may reference: the transitive closure of
    /// its declared direct dependencies. `None` when `krate` is not
    /// declared in `[layers]` at all (the layering rule reports that
    /// separately).
    pub fn allowed_deps(&self, krate: &str) -> Option<Vec<String>> {
        self.layers.get(krate)?;
        let mut out: Vec<String> = Vec::new();
        let mut stack: Vec<&str> = vec![krate];
        while let Some(k) = stack.pop() {
            for d in self.layers.get(k).map(Vec::as_slice).unwrap_or(&[]) {
                if !out.iter().any(|o| o == d) {
                    out.push(d.clone());
                    stack.push(d);
                }
            }
        }
        out.sort();
        Some(out)
    }

    /// Effective `[hotpath] alloc_min_depth` (default 1).
    pub fn alloc_min_depth(&self) -> usize {
        self.hotpath_alloc_min_depth
            .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
            .unwrap_or(1)
    }
}

/// Drop a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Strip surrounding double quotes if present (TOML quoted keys).
fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}

/// Parse the value subset: `"str"`, `true`/`false`, integers, and flat
/// string arrays (which may span only a single line).
fn parse_value(s: &str) -> Option<Value> {
    if s == "true" {
        return Some(Value::Bool(true));
    }
    if s == "false" {
        return Some(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        if !body.contains('"') {
            return Some(Value::Str(body.to_string()));
        }
        return None;
    }
    if let Some(body) = s.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let body = body.trim();
        if body.is_empty() {
            return Some(Value::StrArray(Vec::new()));
        }
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            let inner = part.strip_prefix('"')?.strip_suffix('"')?;
            items.push(inner.to_string());
        }
        return Some(Value::StrArray(items));
    }
    s.parse::<i64>().ok().map(Value::Int)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# layering
[layers]
"sor-graph" = []
"sor-flow" = ["sor-graph"]
"sor-core" = ["sor-flow", "sor-graph"] # closure includes graph anyway

[panics]
public_crates = ["sor-flow", "sor-core"]
include_indexing = false

[determinism]
order_crates = ["sor-core"]

[dead-api]
crates = ["sor-graph"]

[concurrency]
crates = ["sor-core"]
expensive = ["solve", "build"]
parallel_targets = ["sample_k", "sor-graph::dijkstra"]
"#;

    #[test]
    fn parses_sample() {
        let cfg = Config::parse(SAMPLE).expect("parse");
        assert_eq!(cfg.layers["sor-flow"], vec!["sor-graph"]);
        assert_eq!(cfg.panic_public_crates, vec!["sor-flow", "sor-core"]);
        assert!(!cfg.panic_include_indexing);
        assert_eq!(cfg.order_crates, vec!["sor-core"]);
        assert_eq!(cfg.dead_api_crates, vec!["sor-graph"]);
        assert_eq!(cfg.concurrency_crates, vec!["sor-core"]);
        assert_eq!(cfg.expensive_fns, vec!["solve", "build"]);
        assert_eq!(
            cfg.parallel_targets,
            vec!["sample_k", "sor-graph::dijkstra"]
        );
    }

    #[test]
    fn hotpath_section_parses_with_default_depth() {
        let cfg = Config::parse("[hotpath]\nentries = [\"sample_k\", \"sor-oblivious::build\"]\n")
            .expect("parse");
        assert_eq!(
            cfg.hotpath_entries,
            vec!["sample_k", "sor-oblivious::build"]
        );
        assert_eq!(cfg.alloc_min_depth(), 1);
        let explicit = Config::parse("[hotpath]\nalloc_min_depth = 2\n").expect("parse");
        assert_eq!(explicit.alloc_min_depth(), 2);
        assert!(Config::parse("[hotpath]\nalloc_min_depth = -1\n").is_err());
    }

    #[test]
    fn panic_index_crates_parse() {
        let cfg = Config::parse("[panics]\nindex_crates = [\"sor-serve\"]\n").expect("parse");
        assert_eq!(cfg.panic_index_crates, vec!["sor-serve"]);
        assert!(!cfg.panic_include_indexing);
    }

    #[test]
    fn closure_is_transitive() {
        let cfg = Config::parse(SAMPLE).expect("parse");
        let deps = cfg.allowed_deps("sor-core").expect("declared");
        assert_eq!(deps, vec!["sor-flow", "sor-graph"]);
        assert_eq!(cfg.allowed_deps("sor-graph").expect("declared").len(), 0);
        assert!(cfg.allowed_deps("sor-unknown").is_none());
    }

    #[test]
    fn cycle_is_rejected() {
        let bad = "[layers]\n\"a\" = [\"b\"]\n\"b\" = [\"a\"]\n";
        assert!(Config::parse(bad).is_err());
    }

    #[test]
    fn undeclared_dep_is_rejected() {
        let bad = "[layers]\n\"a\" = [\"nope\"]\n";
        assert!(Config::parse(bad).is_err());
    }

    #[test]
    fn unknown_key_is_rejected() {
        assert!(Config::parse("[panics]\nfrobnicate = 3\n").is_err());
    }

    #[test]
    fn missing_file_is_default() {
        let cfg = Config::load(Path::new("/no/such/dir")).expect("default");
        assert!(cfg.layers.is_empty());
    }
}
