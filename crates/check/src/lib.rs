//! `sor-check`: the workspace's repo-specific static-analysis pass.
//!
//! The generic toolchain cannot express the rules this workspace actually
//! depends on — that sampled-path code never hides failures behind
//! `unwrap()`, that congestion/capacity/rate arithmetic never loses
//! precision through silent `as` casts, that every random draw threads an
//! explicit seeded [`rand::Rng`] so experiments stay reproducible. This
//! crate is a std-only source scanner (the registry is unreachable from
//! CI, so no `syn`), run as `cargo run -p sor-check` and from CI; it exits
//! non-zero when any rule fires.
//!
//! # Rules
//!
//! | id | scope | meaning |
//! |----|-------|---------|
//! | `unwrap` | library crates | no `.unwrap()` / `.expect(..)` / `panic!(..)` outside `#[cfg(test)]` |
//! | `lossy-cast` | `sor-graph`, `sor-flow`, `sor-core` | no `as` casts to a narrower integer type (use `try_into` or the typed unit constructors) |
//! | `thread-rng` | everywhere scanned | no `thread_rng()` — all randomness takes an explicit seeded `Rng` |
//! | `float-eq` | everywhere scanned | no `==` / `!=` against a floating-point literal (compare with a tolerance) |
//! | `missing-docs` | `sor-core` | every `pub fn` carries a doc comment |
//!
//! # Allowlist mechanism
//!
//! A violation is suppressed by an explanatory comment on the same line or
//! the line directly above:
//!
//! ```text
//! // sor-check: allow(lossy-cast) — node count < u32::MAX is asserted above
//! let id = idx as u32;
//! ```
//!
//! A whole file opts out of one rule with `sor-check: allow-file(<rule>)`
//! in any comment. Allowlists are deliberately *loud*: they make every
//! exception grep-able, reviewed, and justified in place.
//!
//! # Honest limitations
//!
//! This is a lexical scanner with just enough state to strip strings,
//! comments and `#[cfg(test)]` regions. `lossy-cast` flags every `as
//! <narrower-int>` (it cannot see the source type), and `float-eq` only
//! recognizes comparisons where one side is a float *literal*. Both err
//! toward asking for an allowlist comment rather than silence; `cargo
//! clippy` (see `[workspace.lints]`) covers the type-aware versions.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod config;
pub mod graph;
pub mod items;
pub mod report;
pub mod rules;
mod strip;
pub use strip::strip_line;

/// One of the repo-specific lint rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!(` in library code.
    Unwrap,
    /// `as` cast to a narrower integer type in the numeric-core crates.
    LossyCast,
    /// `thread_rng()` anywhere — randomness must be seeded and explicit.
    ThreadRng,
    /// `==` / `!=` against a float literal.
    FloatEq,
    /// `pub fn` without a doc comment in `sor-core`.
    MissingDocs,
    /// Any `unsafe` block/fn/impl — the workspace forbids unsafe code
    /// (`#![forbid(unsafe_code)]` in every crate root backs this up at
    /// the compiler level; the rule catches the attribute being removed).
    Unsafe,
}

/// Every rule, in reporting order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::Unwrap,
    Rule::LossyCast,
    Rule::ThreadRng,
    Rule::FloatEq,
    Rule::MissingDocs,
    Rule::Unsafe,
];

impl Rule {
    /// Stable identifier used in reports and allowlist comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::LossyCast => "lossy-cast",
            Rule::ThreadRng => "thread-rng",
            Rule::FloatEq => "float-eq",
            Rule::MissingDocs => "missing-docs",
            Rule::Unsafe => "unsafe-code",
        }
    }

    /// Parse an allowlist identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A single rule hit.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-oriented explanation naming the offending token.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// Library code: the `unwrap` rule applies.
    pub library: bool,
    /// Numeric-core crate: the `lossy-cast` rule applies.
    pub cast_strict: bool,
    /// `sor-core` public API: the `missing-docs` rule applies.
    pub docs_required: bool,
}

/// The library crates (everything algorithmic; the bench harness and
/// binaries are driver code and may panic on broken input).
const LIB_CRATES: [&str; 10] = [
    "graph",
    "flow",
    "oblivious",
    "hop",
    "core",
    "sched",
    "te",
    "serve",
    "check",
    "obs",
];

/// Crates where congestion/capacity/rate arithmetic lives and lossy `as`
/// casts are banned.
const CAST_STRICT_CRATES: [&str; 3] = ["graph", "flow", "core"];

/// Classify a workspace-relative path; `None` means the file is not
/// scanned at all (tests, benches, fixtures, generated output).
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    if parts.iter().any(|p| {
        *p == "tests" || *p == "benches" || *p == "examples" || *p == "fixtures" || *p == "target"
    }) {
        return None;
    }
    let is_binary = parts.contains(&"bin") || parts.last() == Some(&"main.rs");
    match parts.as_slice() {
        ["crates", krate, "src", ..] => Some(FileClass {
            library: LIB_CRATES.contains(krate) && !is_binary && *krate != "bench",
            cast_strict: CAST_STRICT_CRATES.contains(krate),
            docs_required: *krate == "core",
        }),
        // the root package's library sources (src/bin is driver code)
        ["src", ..] => Some(FileClass {
            library: !is_binary,
            cast_strict: false,
            docs_required: false,
        }),
        _ => None,
    }
}

/// Integer types an `as` cast may truncate into.
const NARROW_INT_TARGETS: [&str; 10] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// Scan one file's text. `rel` is only used for reporting.
pub fn scan_file(rel: &Path, text: &str, class: FileClass) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut stripper = strip::Stripper::new();
    let lines: Vec<&str> = text.lines().collect();
    let stripped: Vec<String> = lines.iter().map(|l| stripper.strip_line(l)).collect();

    let file_allows: Vec<Rule> = lines
        .iter()
        .flat_map(|l| parse_allow(l, "sor-check: allow-file("))
        .collect();

    // `#[cfg(test)]` region tracking over stripped lines (shared with
    // the semantic pass, see items::test_mask).
    let in_test = items::test_mask(&stripped);

    let allowed = |rule: Rule, idx: usize| -> bool {
        if file_allows.contains(&rule) {
            return true;
        }
        let same = parse_allow(lines[idx], "sor-check: allow(");
        if same.contains(&rule) {
            return true;
        }
        idx > 0 && parse_allow(lines[idx - 1], "sor-check: allow(").contains(&rule)
    };

    for (idx, s) in stripped.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let line_no = idx + 1;

        if class.library {
            for (token, what) in [
                (".unwrap()", "`.unwrap()`"),
                (".expect(", "`.expect(..)`"),
                ("panic!(", "`panic!(..)`"),
            ] {
                if s.contains(token) && !allowed(Rule::Unwrap, idx) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_no,
                        rule: Rule::Unwrap,
                        message: format!(
                            "{what} in library code — propagate a Result or document the \
                             invariant with `// sor-check: allow(unwrap)`"
                        ),
                    });
                }
            }
        }

        if class.cast_strict {
            for target in lossy_cast_targets(s) {
                if !allowed(Rule::LossyCast, idx) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_no,
                        rule: Rule::LossyCast,
                        message: format!(
                            "`as {target}` may truncate — use `try_into()` or a typed \
                             constructor (Capacity/Rate/Congestion, NodeId/EdgeId)"
                        ),
                    });
                }
            }
        }

        if contains_word(s, "unsafe") && !allowed(Rule::Unsafe, idx) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: line_no,
                rule: Rule::Unsafe,
                message: "`unsafe` is forbidden workspace-wide (see \
                          `#![forbid(unsafe_code)]` in the crate roots)"
                    .to_string(),
            });
        }

        if s.contains("thread_rng") && !allowed(Rule::ThreadRng, idx) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: line_no,
                rule: Rule::ThreadRng,
                message: "`thread_rng()` breaks reproducibility — thread an explicit \
                          seeded Rng instead"
                    .to_string(),
            });
        }

        if let Some(op) = float_literal_comparison(s) {
            if !allowed(Rule::FloatEq, idx) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: line_no,
                    rule: Rule::FloatEq,
                    message: format!(
                        "`{op}` against a float literal — exact float comparison is \
                         almost always a bug; compare with a tolerance"
                    ),
                });
            }
        }

        if class.docs_required {
            if let Some(name) = undocumented_pub_fn(&stripped, &lines, idx) {
                if !allowed(Rule::MissingDocs, idx) {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: line_no,
                        rule: Rule::MissingDocs,
                        message: format!("public function `{name}` has no doc comment"),
                    });
                }
            }
        }
    }
    out
}

/// Parse `sor-check: allow(a, b)`-style id lists out of a raw source
/// line. Semantic rule ids (not in [`ALL_RULES`]) come through too —
/// the rules in [`rules`] match on the raw strings.
pub fn parse_allow_ids(line: &str, marker: &str) -> Vec<String> {
    let Some(pos) = line.find(marker) else {
        return Vec::new();
    };
    let rest = &line[pos + marker.len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|id| id.trim().to_string())
        .filter(|id| !id.is_empty())
        .collect()
}

/// Parse `sor-check: allow(a, b)`-style lists of lexical rules.
fn parse_allow(line: &str, marker: &str) -> Vec<Rule> {
    parse_allow_ids(line, marker)
        .iter()
        .filter_map(|id| Rule::from_id(id))
        .collect()
}

/// Is token `word` present with identifier boundaries on both sides?
fn contains_word(s: &str, word: &str) -> bool {
    let mut search = 0;
    while let Some(rel_pos) = s[search..].find(word) {
        let pos = search + rel_pos;
        search = pos + word.len();
        let before_ok = s[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        let after_ok = s[pos + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// All narrowing integer `as`-cast targets on a stripped line.
fn lossy_cast_targets(s: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let mut search = 0;
    while let Some(rel_pos) = s[search..].find(" as ") {
        let pos = search + rel_pos;
        search = pos + 4;
        let after = &s[pos + 4..];
        let token: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = NARROW_INT_TARGETS.iter().find(|t| **t == token) {
            found.push(*t);
        }
    }
    found
}

/// Returns the comparison operator if the line compares against a float
/// literal with `==` or `!=`.
fn float_literal_comparison(s: &str) -> Option<&'static str> {
    for (op, len) in [("==", 2), ("!=", 2)] {
        let mut search = 0;
        while let Some(rel_pos) = s[search..].find(op) {
            let pos = search + rel_pos;
            search = pos + len;
            // reject `<=`, `>=`, `=>`, `===`-like neighborhoods
            let before = s[..pos].chars().next_back();
            let after = s[pos + len..].chars().next();
            if matches!(before, Some('<') | Some('>') | Some('=') | Some('!'))
                || matches!(after, Some('='))
            {
                continue;
            }
            let left = last_token(&s[..pos]);
            let right = first_token(&s[pos + len..]);
            if is_float_literal(left) || is_float_literal(right) {
                return Some(op);
            }
        }
    }
    None
}

fn last_token(s: &str) -> &str {
    let trimmed = s.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'))
        .map(|i| i + 1)
        .unwrap_or(0);
    &trimmed[start..]
}

fn first_token(s: &str) -> &str {
    let trimmed = s.trim_start();
    let end = trimmed
        .char_indices()
        .find(|&(i, c)| {
            !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || (c == '-' && i == 0))
        })
        .map(|(i, _)| i)
        .unwrap_or(trimmed.len());
    &trimmed[..end]
}

/// Lexical float-literal shapes: `1.0`, `.5`, `2.`, `1e-9`, `1.5f64`.
fn is_float_literal(token: &str) -> bool {
    let has_suffix = token.ends_with("f64") || token.ends_with("f32");
    let t = token.strip_prefix('-').unwrap_or(token);
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .unwrap_or(t);
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return false;
    }
    let has_dot = t.contains('.');
    let has_exp = t.chars().any(|c| c == 'e' || c == 'E');
    if !has_dot && !has_exp && !has_suffix {
        return false; // plain integer literal
    }
    t.chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+')
        && t.chars().any(|c| c.is_ascii_digit())
}

/// If line `idx` declares a `pub fn` with no doc comment or `#[doc]`
/// attribute above it, return the function name.
fn undocumented_pub_fn(stripped: &[String], raw: &[&str], idx: usize) -> Option<String> {
    let s = stripped[idx].trim_start();
    let rest = s.strip_prefix("pub fn ")?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    // walk upward over attributes/blank lines looking for a doc comment
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let above = raw[i].trim_start();
        if above.starts_with("///") || above.starts_with("#[doc") || above.starts_with("#![doc") {
            return None;
        }
        if above.starts_with("#[") || above.is_empty() {
            continue;
        }
        let _ = &stripped[i];
        break;
    }
    Some(name)
}

/// Recursively collect `.rs` files under `root/crates` and `root/src`,
/// scan each, and return all violations sorted by path and line.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut out = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let Some(class) = classify(&rel) else {
            continue;
        };
        let text = std::fs::read_to_string(&file)?;
        out.extend(scan_file(&rel, &text, class));
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// An analysis failure that is not a finding: unreadable sources, a
/// malformed `check.toml`, or a malformed baseline.
#[derive(Debug)]
pub enum AnalysisError {
    /// Filesystem error while loading sources.
    Io(std::io::Error),
    /// `check.toml` did not parse or declared an invalid layering.
    Config(config::ConfigError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Io(e) => write!(f, "io: {e}"),
            AnalysisError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl From<std::io::Error> for AnalysisError {
    fn from(e: std::io::Error) -> Self {
        AnalysisError::Io(e)
    }
}

impl From<config::ConfigError> for AnalysisError {
    fn from(e: config::ConfigError) -> Self {
        AnalysisError::Config(e)
    }
}

/// Run both passes — the lexical rules of PR 1 and the semantic
/// item-graph rules — over the workspace at `root`, returning every
/// finding sorted by path, line, and rule. `check.toml` at `root`
/// configures the semantic rules; without it they are skipped (except
/// those that need no configuration).
pub fn analyze_workspace(root: &Path) -> Result<Vec<report::Finding>, AnalysisError> {
    analyze_workspace_with_cost(root).map(|(f, _)| f)
}

/// Like [`analyze_workspace`], also returning the per-entry hot-path
/// cost report (empty when `check.toml` has no `[hotpath] entries`).
pub fn analyze_workspace_with_cost(
    root: &Path,
) -> Result<(Vec<report::Finding>, Vec<rules::hotpath::EntryCost>), AnalysisError> {
    let cfg = config::Config::load(root)?;
    let mut findings: Vec<report::Finding> = scan_workspace(root)?
        .into_iter()
        .map(report::Finding::from)
        .collect();
    let ws = graph::load_workspace(root)?;
    let (semantic, cost) = rules::run_semantic_with_cost(&ws, &cfg);
    findings.extend(semantic);
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
            .then(a.symbol.cmp(&b.symbol))
    });
    Ok((findings, cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, text: &str) -> Vec<Violation> {
        let rel = PathBuf::from(path);
        let class = classify(&rel).expect("classified");
        scan_file(&rel, text, class)
    }

    #[test]
    fn classification() {
        assert!(
            classify(Path::new("crates/graph/src/graph.rs"))
                .unwrap()
                .library
        );
        assert!(
            classify(Path::new("crates/graph/src/graph.rs"))
                .unwrap()
                .cast_strict
        );
        assert!(
            classify(Path::new("crates/core/src/lib.rs"))
                .unwrap()
                .docs_required
        );
        assert!(
            !classify(Path::new("crates/te/src/churn.rs"))
                .unwrap()
                .cast_strict
        );
        assert!(
            !classify(Path::new("crates/bench/src/lib.rs"))
                .unwrap()
                .library
        );
        assert!(classify(Path::new("crates/graph/tests/props.rs")).is_none());
        assert!(classify(Path::new("crates/bench/benches/kernels.rs")).is_none());
        assert!(!classify(Path::new("src/bin/sor.rs")).unwrap().library);
        assert!(classify(Path::new("src/cli.rs")).unwrap().library);
        assert!(classify(Path::new("README.md")).is_none());
    }

    #[test]
    fn unwrap_rule_fires_and_allows() {
        let v = scan("crates/graph/src/x.rs", "fn f() { y.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Unwrap);
        assert_eq!(v[0].line, 1);
        let ok = scan(
            "crates/graph/src/x.rs",
            "// sor-check: allow(unwrap) — length checked above\nfn f() { y.unwrap(); }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn unwrap_ignored_in_tests_and_strings() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); panic!(\"boom\"); }\n}\n";
        assert!(scan("crates/flow/src/x.rs", text).is_empty());
        let text2 = "fn f() { let s = \".unwrap()\"; }\n// .expect( in a comment\n";
        assert!(scan("crates/flow/src/x.rs", text2).is_empty());
    }

    #[test]
    fn lossy_cast_rule() {
        let v = scan("crates/flow/src/x.rs", "fn f(x: f64) -> u32 { x as u32 }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::LossyCast);
        // f64 targets stay legal (widening for metrics)
        assert!(scan(
            "crates/flow/src/x.rs",
            "fn f(n: usize) -> f64 { n as f64 }\n"
        )
        .is_empty());
        // non-strict crates unaffected
        assert!(scan("crates/te/src/x.rs", "fn f(x: f64) -> u32 { x as u32 }\n").is_empty());
    }

    #[test]
    fn thread_rng_rule() {
        let v = scan("crates/te/src/x.rs", "let mut rng = rand::thread_rng();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadRng);
    }

    #[test]
    fn float_eq_rule() {
        let v = scan("crates/sched/src/x.rs", "if x == 1.0 { }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FloatEq);
        assert_eq!(scan("crates/sched/src/x.rs", "if 0.5 != y { }\n").len(), 1);
        // integers, <=, >= are fine
        assert!(scan("crates/sched/src/x.rs", "if x == 1 && y <= 2.0 { }\n").is_empty());
        assert!(scan("crates/sched/src/x.rs", "if (a - b).abs() < 1e-9 { }\n").is_empty());
    }

    #[test]
    fn missing_docs_rule() {
        let bad = "impl X {\n    pub fn frob(&self) {}\n}\n";
        let v = scan("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MissingDocs);
        assert!(v[0].message.contains("frob"));
        let good = "impl X {\n    /// Frobs.\n    pub fn frob(&self) {}\n}\n";
        assert!(scan("crates/core/src/x.rs", good).is_empty());
        let attr = "impl X {\n    /// Frobs.\n    #[inline]\n    pub fn frob(&self) {}\n}\n";
        assert!(scan("crates/core/src/x.rs", attr).is_empty());
        // other crates don't require docs
        assert!(scan("crates/sched/src/x.rs", bad).is_empty());
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let text = "// sor-check: allow-file(float-eq)\nfn f() { if x == 1.0 {} if y == 2.0 {} }\n";
        assert!(scan("crates/sched/src/x.rs", text).is_empty());
    }

    #[test]
    fn violation_display_names_file_line_rule() {
        let v = scan("crates/graph/src/x.rs", "fn f() { y.unwrap(); }\n");
        let shown = v[0].to_string();
        assert!(shown.contains("crates/graph/src/x.rs:1"), "{shown}");
        assert!(shown.contains("[unwrap]"), "{shown}");
    }
}
