//! The workspace item graph: every analyzed source file's items plus
//! resolved intra-workspace call edges and a workspace-wide identifier
//! index.
//!
//! Call resolution is name-based with preference tiers (same file →
//! same crate → crates imported by the file → whole workspace); when a
//! tier holds several same-named candidates they are *all* linked, so
//! reachability analyses over-approximate rather than silently miss
//! paths. The identifier index maps every identifier token appearing
//! anywhere in the workspace (including tests, benches and examples,
//! which are not otherwise analyzed) to the set of crates using it —
//! the dead-API rule's evidence of use.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::items::{parse_file, ItemKind, SourceFile};
use crate::strip::Stripper;

/// All analyzed files plus the workspace-wide identifier index.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Parsed crate sources (`crates/*/src/**`, `src/**`), sorted by path.
    pub files: Vec<SourceFile>,
    /// identifier → crates whose code (src, tests, benches, examples)
    /// mentions it.
    pub ident_crates: BTreeMap<String, BTreeSet<String>>,
}

/// Read the `name = "..."` of the first `[package]` section of a
/// manifest, if any.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// The crate owning a workspace-relative path, in dash form. Falls back
/// to `sor-<dir>` / the root package name when no manifest is readable
/// (the test fixtures carry no manifests).
fn crate_of(root: &Path, rel: &Path) -> Option<String> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    match parts.as_slice() {
        ["crates", dir, ..] => Some(
            package_name(&root.join("crates").join(dir).join("Cargo.toml"))
                .unwrap_or_else(|| format!("sor-{dir}")),
        ),
        ["src", ..] | ["tests", ..] | ["examples", ..] => {
            Some(package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "root".to_string()))
        }
        _ => None,
    }
}

/// Is this path part of the analyzed sources (crate `src/` trees), as
/// opposed to the reference-only corpus (tests, benches, examples)?
fn is_analyzed(rel: &Path) -> bool {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    if parts
        .iter()
        .any(|p| *p == "fixtures" || *p == "target" || *p == "vendor")
    {
        return false;
    }
    matches!(parts.as_slice(), ["crates", _, "src", ..] | ["src", ..])
}

/// Is this path reference-corpus material (identifiers count as uses)?
fn is_corpus(rel: &Path) -> bool {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    if parts.iter().any(|p| *p == "fixtures" || *p == "target") {
        return false;
    }
    matches!(
        parts.as_slice(),
        ["crates", _, "tests", ..]
            | ["crates", _, "benches", ..]
            | ["tests", ..]
            | ["examples", ..]
    )
}

/// Load and parse the workspace under `root`.
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut ws = Workspace::default();
    for path in paths {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let Some(krate) = crate_of(root, &rel) else {
            continue;
        };
        let analyzed = is_analyzed(&rel);
        if !analyzed && !is_corpus(&rel) {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        if analyzed {
            let parsed = parse_file(&rel, &krate, &text);
            index_idents(&parsed.stripped, &krate, &mut ws.ident_crates);
            ws.files.push(parsed);
        } else {
            let mut stripper = Stripper::new();
            let stripped: Vec<String> = text.lines().map(|l| stripper.strip_line(l)).collect();
            index_idents(&stripped, &krate, &mut ws.ident_crates);
        }
    }
    Ok(ws)
}

/// Record every identifier token of `lines` as used by `krate`.
fn index_idents(lines: &[String], krate: &str, index: &mut BTreeMap<String, BTreeSet<String>>) {
    for line in lines {
        let mut cur = String::new();
        for c in line.chars().chain(std::iter::once(' ')) {
            if c.is_ascii_alphanumeric() || c == '_' {
                cur.push(c);
            } else if !cur.is_empty() {
                if !cur.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    index
                        .entry(std::mem::take(&mut cur))
                        .or_default()
                        .insert(krate.to_string());
                } else {
                    cur.clear();
                }
            }
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Handle of one function item inside a [`Workspace`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FnRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `items`.
    pub item: usize,
}

/// The resolved call graph over every `fn` in the workspace.
#[derive(Debug)]
pub struct ItemGraph {
    /// All function items, in file order.
    pub fns: Vec<FnRef>,
    /// `calls[i]` = indices into `fns` that `fns[i]` may call.
    pub calls: Vec<Vec<usize>>,
}

impl ItemGraph {
    /// Build the call graph for `ws`.
    pub fn build(ws: &Workspace) -> ItemGraph {
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                if item.kind == ItemKind::Fn {
                    fns.push(FnRef { file: fi, item: ii });
                }
            }
        }
        // name → candidate fn indices
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name
                .entry(ws.files[f.file].items[f.item].name.as_str())
                .or_default()
                .push(i);
        }

        let mut calls: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, fref) in fns.iter().enumerate() {
            let file = &ws.files[fref.file];
            let item = &file.items[fref.item];
            let imported: BTreeSet<&str> = file
                .uses
                .iter()
                .filter_map(|u| u.krate.as_deref())
                .collect();
            let mut out = BTreeSet::new();
            for call in &item.calls {
                let Some(cands) = by_name.get(call.name.as_str()) else {
                    continue; // std / vendor call
                };
                // Filter candidates by shape first.
                let shaped: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let ci = &ws.files[fns[c].file].items[fns[c].item];
                        if call.method {
                            ci.self_ty.is_some()
                        } else if let Some(q) = &call.qualifier {
                            // `Q::name(..)`: associated fn of type Q, or a
                            // free fn in a module whose tail is q.
                            ci.self_ty.as_deref() == Some(q.as_str())
                                || (ci.self_ty.is_none()
                                    && ws.files[fns[c].file]
                                        .module
                                        .rsplit("::")
                                        .next()
                                        .is_some_and(|m| m == q))
                        } else {
                            ci.self_ty.is_none()
                        }
                    })
                    .collect();
                // Preference tiers: same file → same crate → imported
                // crates → workspace.
                let tiers: [Box<dyn Fn(usize) -> bool>; 4] = [
                    Box::new(|c: usize| fns[c].file == fref.file),
                    Box::new(|c: usize| ws.files[fns[c].file].krate == file.krate),
                    Box::new(|c: usize| imported.contains(ws.files[fns[c].file].krate.as_str())),
                    Box::new(|_| true),
                ];
                for tier in tiers {
                    let hits: Vec<usize> = shaped.iter().copied().filter(|&c| tier(c)).collect();
                    if !hits.is_empty() {
                        for h in hits {
                            if h != i {
                                out.insert(h);
                            }
                        }
                        break;
                    }
                }
            }
            calls[i] = out.into_iter().collect();
        }
        ItemGraph { fns, calls }
    }

    /// Display path of `fns[i]`: `crate::module::Type::name`.
    pub fn fn_path(&self, ws: &Workspace, i: usize) -> String {
        let fref = self.fns[i];
        let file = &ws.files[fref.file];
        let item = &file.items[fref.item];
        format!("{}::{}", file.krate, item.path_in(&file.module))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;

    fn ws_of(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, krate, text) in files {
            let parsed = parse_file(Path::new(rel), krate, text);
            index_idents(&parsed.stripped, krate, &mut ws.ident_crates);
            ws.files.push(parsed);
        }
        ws
    }

    #[test]
    fn resolves_same_file_call() {
        let ws = ws_of(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "pub fn caller() {\n    helper();\n}\nfn helper() {}\n",
        )]);
        let g = ItemGraph::build(&ws);
        assert_eq!(g.fns.len(), 2);
        assert_eq!(g.calls[0], vec![1]);
        assert!(g.calls[1].is_empty());
    }

    #[test]
    fn resolves_cross_crate_via_import() {
        let ws = ws_of(&[
            (
                "crates/core/src/lib.rs",
                "sor-core",
                "use sor_flow::solve;\npub fn run() {\n    solve();\n}\n",
            ),
            ("crates/flow/src/lib.rs", "sor-flow", "pub fn solve() {}\n"),
        ]);
        let g = ItemGraph::build(&ws);
        let run = g
            .fns
            .iter()
            .position(|f| ws.files[f.file].items[f.item].name == "run")
            .expect("run");
        let solve = g
            .fns
            .iter()
            .position(|f| ws.files[f.file].items[f.item].name == "solve")
            .expect("solve");
        assert_eq!(g.calls[run], vec![solve]);
    }

    #[test]
    fn method_calls_prefer_same_crate() {
        let ws = ws_of(&[
            (
                "crates/flow/src/a.rs",
                "sor-flow",
                "struct S;\nimpl S {\n    pub fn frob(&self) {}\n}\npub fn caller(s: &S) {\n    s.frob();\n}\n",
            ),
            (
                "crates/te/src/a.rs",
                "sor-te",
                "struct T;\nimpl T {\n    pub fn frob(&self) {}\n}\n",
            ),
        ]);
        let g = ItemGraph::build(&ws);
        let caller = g
            .fns
            .iter()
            .position(|f| ws.files[f.file].items[f.item].name == "caller")
            .expect("caller");
        assert_eq!(g.calls[caller].len(), 1);
        let callee = g.calls[caller][0];
        assert_eq!(ws.files[g.fns[callee].file].krate, "sor-flow");
    }

    #[test]
    fn ident_index_tracks_crates() {
        let ws = ws_of(&[
            (
                "crates/flow/src/a.rs",
                "sor-flow",
                "pub fn unique_name_x() {}\n",
            ),
            (
                "crates/te/src/a.rs",
                "sor-te",
                "fn f() { unique_name_x(); }\n",
            ),
        ]);
        let users = &ws.ident_crates["unique_name_x"];
        assert!(users.contains("sor-flow") && users.contains("sor-te"));
    }

    #[test]
    fn fn_path_display() {
        let ws = ws_of(&[(
            "crates/graph/src/gen/wan.rs",
            "sor-graph",
            "impl G {\n    pub fn build(&self) {}\n}\n",
        )]);
        let g = ItemGraph::build(&ws);
        assert_eq!(g.fn_path(&ws, 0), "sor-graph::gen::wan::G::build");
    }
}
