//! Driver for the workspace analysis: `cargo run -p sor-check`.
//!
//! Runs the lexical lint rules *and* the semantic item-graph pass
//! (layering / panic-reachability / determinism / dead-API) over the
//! workspace root (or an explicit root passed as the first positional
//! argument, used by the integration tests to point at seeded
//! fixtures).
//!
//! ```text
//! sor-check [ROOT] [--format text|json|sarif] [--output PATH]
//!           [--baseline PATH] [--no-baseline] [--fail-on-new]
//!           [--write-baseline PATH]
//! ```
//!
//! A baseline at `<ROOT>/check-baseline.json` is picked up
//! automatically (override with `--baseline`, disable with
//! `--no-baseline`); findings whose fingerprint it contains are
//! *baselined* and do not fail the run — the gate is regression-only,
//! which is also what `--fail-on-new` names explicitly. Exit codes:
//! 0 no new findings, 1 new findings, 2 usage/configuration/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use sor_check::report::{render_json, render_sarif, render_text};
use sor_check::{analyze_workspace, baseline};

/// Parsed command line.
struct Opts {
    root: PathBuf,
    format: Format,
    output: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: Option<PathBuf>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: workspace_root(),
        format: Format::Text,
        output: None,
        baseline: None,
        no_baseline: false,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    let mut positional_seen = false;
    while let Some(arg) = args.next() {
        let mut value_of = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--format" => {
                opts.format = match value_of("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--output" => opts.output = Some(PathBuf::from(value_of("--output")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value_of("--baseline")?)),
            "--no-baseline" => opts.no_baseline = true,
            // The gate is regression-only whenever a baseline is in
            // effect; the flag exists so CI invocations state the
            // policy explicitly.
            "--fail-on-new" => {}
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value_of("--write-baseline")?));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            positional => {
                if positional_seen {
                    return Err(format!("unexpected extra argument `{positional}`"));
                }
                positional_seen = true;
                opts.root = PathBuf::from(positional);
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sor-check: {e}");
            return ExitCode::from(2);
        }
    };
    if !opts.root.is_dir() {
        eprintln!(
            "sor-check: root `{}` is not a directory",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let findings = match analyze_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sor-check: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("sor-check: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "sor-check: wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_path = if opts.no_baseline {
        None
    } else {
        Some(
            opts.baseline
                .clone()
                .unwrap_or_else(|| opts.root.join("check-baseline.json")),
        )
    };
    let baseline_set = match &baseline_path {
        Some(p) => match baseline::load(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sor-check: {e}");
                return ExitCode::from(2);
            }
        },
        None => Default::default(),
    };
    let (new, baselined) = baseline::partition(findings, &baseline_set);

    let rendered = match opts.format {
        Format::Text => render_text(&new, baselined.len()),
        Format::Json => render_json(&new, &baselined),
        Format::Sarif => render_sarif(&new, &baselined),
    };
    match &opts.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("sor-check: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            // Keep the terminal summary even when the report goes to a
            // file, so CI logs stay readable.
            if opts.format != Format::Text {
                print!("{}", render_text(&new, baselined.len()));
            }
        }
        None => print!("{rendered}"),
    }

    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}
