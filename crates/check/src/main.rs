//! Driver for the workspace analysis: `cargo run -p sor-check`.
//!
//! Runs the lexical lint rules *and* the semantic item-graph pass
//! (layering / panic-reachability / determinism / dead-API) over the
//! workspace root (or an explicit root passed as the first positional
//! argument, used by the integration tests to point at seeded
//! fixtures).
//!
//! ```text
//! sor-check [ROOT] [--format text|json|sarif] [--output PATH]
//!           [--baseline PATH] [--no-baseline] [--fail-on-new]
//!           [--write-baseline PATH] [--hotpath-report PATH]
//! sor-check --explain <rule>
//! ```
//!
//! `--hotpath-report PATH` writes the per-entry hot-path cost report
//! (reachable functions, allocation/clone sites, max loop depth, deep
//! witness groups) as deterministic JSON — the committed
//! `check-hotpath.json` snapshot CI diffs against. `--explain <rule>`
//! prints the long-form documentation for one rule id and exits.
//!
//! A baseline at `<ROOT>/check-baseline.json` is picked up
//! automatically (override with `--baseline`, disable with
//! `--no-baseline`); findings whose fingerprint it contains are
//! *baselined* and do not fail the run — the gate is regression-only,
//! which is also what `--fail-on-new` names explicitly. Exit codes:
//! 0 no new findings, 1 new findings, 2 usage/configuration/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use sor_check::report::{explain, render_json, render_sarif, render_text, RULE_DESCRIPTIONS};
use sor_check::rules::hotpath::{render_cost_json, render_cost_table};
use sor_check::{analyze_workspace_with_cost, baseline, ALL_RULES};

/// Parsed command line.
struct Opts {
    root: PathBuf,
    format: Format,
    output: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: Option<PathBuf>,
    hotpath_report: Option<PathBuf>,
    explain: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: workspace_root(),
        format: Format::Text,
        output: None,
        baseline: None,
        no_baseline: false,
        write_baseline: None,
        hotpath_report: None,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    let mut positional_seen = false;
    while let Some(arg) = args.next() {
        let mut value_of = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--format" => {
                opts.format = match value_of("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--output" => opts.output = Some(PathBuf::from(value_of("--output")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value_of("--baseline")?)),
            "--no-baseline" => opts.no_baseline = true,
            // The gate is regression-only whenever a baseline is in
            // effect; the flag exists so CI invocations state the
            // policy explicitly.
            "--fail-on-new" => {}
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value_of("--write-baseline")?));
            }
            "--hotpath-report" => {
                opts.hotpath_report = Some(PathBuf::from(value_of("--hotpath-report")?));
            }
            "--explain" => opts.explain = Some(value_of("--explain")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            positional => {
                if positional_seen {
                    return Err(format!("unexpected extra argument `{positional}`"));
                }
                positional_seen = true;
                opts.root = PathBuf::from(positional);
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sor-check: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = &opts.explain {
        return match explain(id) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                let mut ids: Vec<&str> = ALL_RULES.iter().map(|r| r.id()).collect();
                let extra: Vec<&str> = RULE_DESCRIPTIONS
                    .iter()
                    .map(|(i, _)| *i)
                    .filter(|i| !ids.contains(i))
                    .collect();
                ids.extend(extra);
                eprintln!(
                    "sor-check: unknown rule `{id}` — valid ids: {}",
                    ids.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }
    if !opts.root.is_dir() {
        eprintln!(
            "sor-check: root `{}` is not a directory",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let (findings, cost) = match analyze_workspace_with_cost(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sor-check: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    // The cost report is an inventory, not a gate: write it whenever
    // asked, in every mode, including --write-baseline runs (so CI
    // regenerates both snapshots from one invocation).
    if let Some(path) = &opts.hotpath_report {
        if let Err(e) = std::fs::write(path, render_cost_json(&cost)) {
            eprintln!(
                "sor-check: cannot write hot-path report {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }

    if let Some(path) = &opts.write_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("sor-check: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "sor-check: wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_path = if opts.no_baseline {
        None
    } else {
        Some(
            opts.baseline
                .clone()
                .unwrap_or_else(|| opts.root.join("check-baseline.json")),
        )
    };
    let baseline_set = match &baseline_path {
        Some(p) => match baseline::load(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sor-check: {e}");
                return ExitCode::from(2);
            }
        },
        None => Default::default(),
    };
    let (new, baselined) = baseline::partition(findings, &baseline_set);

    let rendered = match opts.format {
        // The cost table rides along in text mode only; json/sarif
        // stay pure findings documents (the JSON inventory lives
        // behind --hotpath-report).
        Format::Text => {
            let mut s = render_text(&new, baselined.len());
            if !cost.is_empty() {
                s.push('\n');
                s.push_str(&render_cost_table(&cost));
            }
            s
        }
        Format::Json => render_json(&new, &baselined),
        Format::Sarif => render_sarif(&new, &baselined),
    };
    match &opts.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("sor-check: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            // Keep the terminal summary even when the report goes to a
            // file, so CI logs stay readable.
            if opts.format != Format::Text {
                print!("{}", render_text(&new, baselined.len()));
            }
        }
        None => print!("{rendered}"),
    }

    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}
