//! Driver for the workspace lint pass: `cargo run -p sor-check`.
//!
//! Scans `crates/**/*.rs` and `src/**/*.rs` under the workspace root (or
//! an explicit root passed as the first argument, used by the integration
//! tests to point at seeded fixtures), prints one line per violation in
//! `path:line: [rule] message` form, and exits non-zero when anything
//! fires.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => workspace_root(),
    };
    if !root.is_dir() {
        eprintln!("sor-check: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    match sor_check::scan_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("sor-check: clean ({} rules)", sor_check::ALL_RULES.len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("sor-check: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sor-check: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}
