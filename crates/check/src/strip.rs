//! Lexical pre-pass: remove comments and literal contents from source
//! lines so the rule matchers never fire on text inside a string, a
//! comment, or a char literal.
//!
//! The stripper is *stateful across lines* — block comments (which nest
//! in Rust), multi-line string literals, and raw strings all carry over —
//! so a file must be fed line by line through one [`Stripper`].

/// Line-by-line source stripper. Feed every line of a file in order.
pub struct Stripper {
    state: State,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// Plain code.
    Code,
    /// Inside a (possibly nested) `/* .. */` comment; payload is depth.
    Block(u32),
    /// Inside a `"` string literal.
    Str,
    /// Inside a raw string literal; payload is the number of `#`s.
    RawStr(u8),
}

impl Default for Stripper {
    fn default() -> Self {
        Self::new()
    }
}

impl Stripper {
    /// A stripper positioned at the start of a file.
    pub fn new() -> Self {
        Stripper { state: State::Code }
    }

    /// Strip one line: comments vanish, string/char literal contents are
    /// removed (delimiters kept so tokens don't merge), code survives.
    pub fn strip_line(&mut self, line: &str) -> String {
        let chars: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < chars.len() {
            match self.state {
                State::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        i += 2;
                        self.state = if depth > 1 {
                            State::Block(depth - 1)
                        } else {
                            State::Code
                        };
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        i += 2;
                        self.state = State::Block(depth + 1);
                    } else {
                        i += 1;
                    }
                }
                State::Str => {
                    if chars[i] == '\\' {
                        i += 2; // skip the escaped character
                    } else if chars[i] == '"' {
                        out.push('"');
                        i += 1;
                        self.state = State::Code;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if chars[i] == '"' && ends_raw(&chars, i + 1, hashes) {
                        out.push('"');
                        i += 1 + hashes as usize;
                        self.state = State::Code;
                    } else {
                        i += 1;
                    }
                }
                State::Code => {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        break; // line comment (incl. doc comments) — drop the rest
                    }
                    if c == '/' && next == Some('*') {
                        self.state = State::Block(1);
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        out.push('"');
                        self.state = State::Str;
                        i += 1;
                        continue;
                    }
                    // raw (and raw-byte) strings: r"..", r#".."#, br".."
                    if (c == 'r' || (c == 'b' && next == Some('r'))) && !prev_is_ident(&chars, i) {
                        let mut j = i + if c == 'b' { 2 } else { 1 };
                        let mut hashes: u8 = 0;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            out.push('"');
                            self.state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '\'' {
                        // char literal vs lifetime: a literal is either an
                        // escape ('\n') or exactly one char then a quote.
                        if next == Some('\\') {
                            out.push_str("''");
                            i += 3; // ' \ x — then scan to the closing quote
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') {
                            out.push_str("''");
                            i += 3;
                            continue;
                        }
                        // lifetime — keep it
                        out.push('\'');
                        i += 1;
                        continue;
                    }
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }
}

/// Does `chars[from..]` start with `hashes` `#` characters?
fn ends_raw(chars: &[char], from: usize, hashes: u8) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Is the character before index `i` part of an identifier (so `r` here
/// is the tail of a name like `var`, not a raw-string prefix)?
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_')
}

/// Convenience: strip a single standalone line (fresh state).
pub fn strip_line(line: &str) -> String {
    Stripper::new().strip_line(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_dropped() {
        assert_eq!(strip_line("let x = 1; // x.unwrap()"), "let x = 1; ");
        assert_eq!(strip_line("/// doc with panic!(..)"), "");
    }

    #[test]
    fn string_contents_removed() {
        assert_eq!(strip_line(r#"let s = ".unwrap()";"#), r#"let s = "";"#);
        assert_eq!(
            strip_line(r#"format!("a {} \" b", x == 1.0)"#),
            r#"format!("", x == 1.0)"#
        );
    }

    #[test]
    fn raw_strings_removed() {
        assert_eq!(
            strip_line(r###"let s = r#"panic!("x")"#;"###),
            r#"let s = "";"#
        );
        assert_eq!(strip_line(r#"let s = r"thread_rng";"#), r#"let s = "";"#);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(strip_line("let c = '=';"), "let c = '';");
        assert_eq!(strip_line(r"let c = '\n';"), "let c = '';");
        assert_eq!(
            strip_line("fn f<'a>(x: &'a str) {}"),
            "fn f<'a>(x: &'a str) {}"
        );
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let mut s = Stripper::new();
        assert_eq!(s.strip_line("code(); /* start"), "code(); ");
        assert_eq!(s.strip_line("still /* nested */ inside x.unwrap()"), "");
        assert_eq!(s.strip_line("end */ after();"), " after();");
    }

    #[test]
    fn multiline_strings_span_lines() {
        let mut s = Stripper::new();
        assert_eq!(s.strip_line(r#"let s = "first"#), r#"let s = ""#);
        assert_eq!(s.strip_line(r#"second .unwrap()" ; done"#), r#"" ; done"#);
    }

    #[test]
    fn raw_strings_span_lines_and_need_matching_hashes() {
        let mut s = Stripper::new();
        assert_eq!(
            s.strip_line(r##"let s = r#"first panic!("##),
            r#"let s = ""#
        );
        // a bare `"` does not end an r#".."# literal
        assert_eq!(s.strip_line(r#"quote " inside .unwrap()"#), "");
        assert_eq!(s.strip_line(r##"end"#; after();"##), r#""; after();"#);
    }

    #[test]
    fn raw_string_with_embedded_quotes_is_one_literal() {
        assert_eq!(
            strip_line(r###"let s = r#"a "b" c"#; x()"###),
            r#"let s = ""; x()"#
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        // plain byte string: the `b` survives as code, contents vanish
        assert_eq!(strip_line(r#"let b = b"unwrap()";"#), r#"let b = b"";"#);
        // raw byte string: the `br#` prefix is consumed with the literal
        assert_eq!(
            strip_line(r##"let b = br#"panic!(..)"#;"##),
            r#"let b = "";"#
        );
    }

    #[test]
    fn identifier_tail_r_is_not_a_raw_string() {
        // `var"x"` — the `r` belongs to the identifier, the quote opens a
        // plain string.
        assert_eq!(strip_line(r#"var".unwrap()";"#), r#"var"";"#);
    }

    #[test]
    fn char_literals_containing_quotes() {
        assert_eq!(strip_line(r"let q = '\'';"), "let q = '';");
        assert_eq!(strip_line(r#"let q = '"';"#), "let q = '';");
        // the double quote inside the char literal must not open a string
        assert_eq!(
            strip_line(r#"if c == '"' { x.unwrap() }"#),
            "if c == '' { x.unwrap() }"
        );
    }

    #[test]
    fn escaped_backslash_closes_string() {
        // "\\" is a complete literal; the text after it is code.
        assert_eq!(
            strip_line(r#"let s = "\\"; y.unwrap()"#),
            r#"let s = ""; y.unwrap()"#
        );
    }

    #[test]
    fn deeply_nested_block_comments() {
        let mut s = Stripper::new();
        assert_eq!(
            s.strip_line("a(); /* 1 /* 2 /* 3 */ still */ deep"),
            "a(); "
        );
        assert_eq!(s.strip_line("more */ b();"), " b();");
        assert_eq!(s.state, State::Code);
    }

    #[test]
    fn division_and_comment_markers_in_strings_stay_code() {
        assert_eq!(strip_line("let x = a / b / c;"), "let x = a / b / c;");
        assert_eq!(
            strip_line(r#"let s = "// not a comment";"#),
            r#"let s = "";"#
        );
        assert_eq!(
            strip_line(r#"let s = "/* nor this */"; t()"#),
            r#"let s = ""; t()"#
        );
    }
}
