//! Unified findings and the three output formats.
//!
//! Both passes funnel into [`Finding`]: the lexical rules of PR 1 (via
//! [`crate::Violation`]) and the semantic rules built on the item
//! graph. A finding carries an optional *witness* — for
//! panic-reachability, the shortest call chain from the reported public
//! function to the offending site — and a stable [`Finding::fingerprint`]
//! that the baseline mechanism keys on (deliberately line-free, so
//! unrelated edits that shift line numbers do not churn the baseline).
//!
//! Formats: `text` for humans, `json` for scripting, `sarif` (2.1.0)
//! for code-scanning UIs. All three are hand-rolled writers — the
//! registry is unreachable from CI, so no `serde`.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::Violation;

/// Identifier and one-line description of every rule either pass can
/// fire, in reporting order (used for SARIF rule metadata and `--help`).
pub const RULE_DESCRIPTIONS: [(&str, &str); 19] = [
    ("unwrap", "no .unwrap()/.expect()/panic! in library code"),
    (
        "lossy-cast",
        "no narrowing `as` casts in numeric-core crates",
    ),
    (
        "thread-rng",
        "no thread_rng(); randomness is seeded and explicit",
    ),
    ("float-eq", "no ==/!= against float literals"),
    (
        "missing-docs",
        "sor-core public functions carry doc comments",
    ),
    ("unsafe-code", "no unsafe blocks anywhere in the workspace"),
    (
        "layering",
        "crate references respect the declared layer DAG",
    ),
    (
        "panic-path",
        "no panic reachable from public solver-crate functions",
    ),
    (
        "unseeded-rng",
        "functions constructing RNGs take a seed or Rng parameter",
    ),
    (
        "hash-order",
        "no HashMap/HashSet iteration order in solver/sampler output",
    ),
    (
        "dead-api",
        "public items are referenced somewhere outside their crate",
    ),
    (
        "lock-order",
        "lock acquisition order forms a DAG across the call graph",
    ),
    (
        "held-lock",
        "no expensive or blocking calls while a lock guard is live",
    ),
    (
        "atomics",
        "atomic orderings are minimal, justified, and consistent per field",
    ),
    (
        "rayon-ready",
        "parallel-target call trees avoid non-Send and interior-mutable state",
    ),
    (
        "alloc-in-hot",
        "no heap allocation at loop depth >= alloc_min_depth reachable from a hot entry",
    ),
    (
        "clone-in-loop",
        "no .clone() at effective loop depth >= 1 anywhere in a hot call tree",
    ),
    (
        "growth-without-capacity",
        "collections grown in a loop are constructed with_capacity",
    ),
    (
        "quadratic-scan",
        "no linear Vec/slice scans inside a loop over a collection",
    ),
];

/// Long-form documentation per rule for `sor-check --explain <rule>`:
/// `(id, doc, config keys)`.
pub fn explain(id: &str) -> Option<String> {
    let (doc, keys): (&str, &str) = match id {
        "unwrap" => (
            "Library code must not call .unwrap()/.expect() or panic!/unreachable!/\n\
             todo!/unimplemented!. Propagate a Result or handle the None arm; tests,\n\
             benches and examples are exempt.",
            "none (lexical; scope is the LIB_CRATES list)",
        ),
        "lossy-cast" => (
            "Numeric-core crates must not use narrowing `as` casts (u64 as u32,\n\
             f64 as f32, usize as u32, ...). Use NodeId::from_usize-style checked\n\
             constructors or try_into.",
            "none (lexical)",
        ),
        "thread-rng" => (
            "thread_rng() draws from ambient entropy and destroys reproducibility.\n\
             All randomness flows from an explicit seed.",
            "none (lexical)",
        ),
        "float-eq" => (
            "Float == / != against literals is almost never what a solver means;\n\
             compare against a tolerance.",
            "none (lexical)",
        ),
        "missing-docs" => (
            "Public functions of sor-core carry /// doc comments.",
            "none (lexical)",
        ),
        "unsafe-code" => (
            "The workspace forbids unsafe blocks; every crate root also carries\n\
             #![forbid(unsafe_code)].",
            "none (lexical)",
        ),
        "layering" => (
            "Crate references must respect the DAG declared in [layers]: a crate may\n\
             reference only the transitive closure of its declared dependencies.",
            "[layers] <crate> = [<deps>...]",
        ),
        "panic-path" => (
            "No panic site may be reachable from a pub fn of the configured crates,\n\
             over the workspace call graph; the witness is the shortest call chain.",
            "[panics] public_crates, include_indexing, index_crates",
        ),
        "unseeded-rng" => (
            "Functions of the configured crates that construct an RNG must take a\n\
             seed or Rng parameter; from_entropy/thread_rng-style constructors flag.",
            "[determinism] rng_crates",
        ),
        "hash-order" => (
            "Solver/sampler crates must not iterate HashMap/HashSet locals in hash\n\
             order — switch to BTreeMap or sort before iterating.",
            "[determinism] order_crates",
        ),
        "dead-api" => (
            "pub items of the configured crates must be referenced somewhere outside\n\
             their own crate.",
            "[dead-api] crates",
        ),
        "lock-order" => (
            "Lock acquisitions (lexical .lock()/.read()/.write() sites, closed over\n\
             the layering-filtered call graph) must form a DAG; each strongly\n\
             connected tangle reports one shortest witness cycle.",
            "[concurrency] crates",
        ),
        "held-lock" => (
            "No call reaching a function named in `expensive` may run while a lock\n\
             guard is lexically live. Guard-producing acquisition calls are\n\
             recognized by site, so io::Write::write/flush can be listed.",
            "[concurrency] crates, expensive",
        ),
        "atomics" => (
            "Atomic orderings are audited per field: SeqCst needs a justified allow,\n\
             counters may relax, and one field must not mix orderings.",
            "[concurrency] crates",
        ),
        "rayon-ready" => (
            "Everything reachable from the configured parallel targets must avoid\n\
             non-Send and interior-mutable state (Rc, RefCell, Cell, raw pointers,\n\
             thread_local!).",
            "[concurrency] parallel_targets",
        ),
        "alloc-in-hot" => (
            "Walks the layering-filtered call graph from each [hotpath] entry; every\n\
             non-clone heap-allocation site (Vec::new, vec![, String::new, Box::new,\n\
             .collect(), .to_vec(), ...) whose effective loop depth — the maximum\n\
             lexical loop depth along the shortest witness chain, call sites\n\
             included — reaches alloc_min_depth is reported. Shallower sites still\n\
             count in the per-entry cost report (--hotpath-report).",
            "[hotpath] entries, alloc_min_depth (default 1)",
        ),
        "clone-in-loop" => (
            ".clone() at effective loop depth >= 1 anywhere in a hot tree — a clone\n\
             per iteration, counting loops across function boundaries. Borrow,\n\
             std::mem::take, or share via Arc instead.",
            "[hotpath] entries",
        ),
        "growth-without-capacity" => (
            "Within hot-tree functions: a local built with Vec::new()/vec![]/\n\
             String::new()/HashMap::new()/... and then .push/.insert/.push_str-ed\n\
             at a strictly deeper lexical loop depth pays repeated reallocation;\n\
             construct it with_capacity.",
            "[hotpath] entries",
        ),
        "quadratic-scan" => (
            "Within hot-tree functions: a for-loop over a Vec/slice whose body runs\n\
             .contains()/.iter().position()/.iter().find() against the same or a\n\
             sibling Vec/slice is O(n*m); index into a HashSet/HashMap or sort once.",
            "[hotpath] entries",
        ),
        _ => return None,
    };
    let (_, short) = RULE_DESCRIPTIONS.iter().find(|(i, _)| *i == id)?;
    Some(format!(
        "{id} — {short}\n\n{doc}\n\nconfig: {keys}\n\nallow syntax: // sor-check: allow({id}) — <justification>\n"
    ))
}

/// One finding from either pass.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule identifier (see [`RULE_DESCRIPTIONS`]).
    pub rule: String,
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Item path the finding anchors to (`sor-flow::restricted::solve`),
    /// empty for purely positional findings.
    pub symbol: String,
    /// Human-oriented message.
    pub message: String,
    /// Optional witness chain, outermost first. For `panic-path`: the
    /// call path ending in the panic site.
    pub witness: Vec<String>,
}

impl Finding {
    /// Baseline key: rule + file + symbol (or the message when the
    /// finding has no symbol). Line numbers are deliberately excluded so
    /// the baseline survives unrelated edits above a finding.
    pub fn fingerprint(&self) -> String {
        let anchor = if self.symbol.is_empty() {
            &self.message
        } else {
            &self.symbol
        };
        format!("{}:{}:{}", self.rule, self.file.display(), anchor)
    }
}

impl From<Violation> for Finding {
    fn from(v: Violation) -> Finding {
        Finding {
            rule: v.rule.id().to_string(),
            file: v.file,
            line: v.line,
            symbol: String::new(),
            message: v.message,
            witness: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        for (i, step) in self.witness.iter().enumerate() {
            write!(f, "\n    {}{}", if i == 0 { "via " } else { "  → " }, step)?;
        }
        Ok(())
    }
}

/// Render the human report: new findings in full, baselined ones as a
/// single summary count.
pub fn render_text(new: &[Finding], baselined: usize) -> String {
    let mut out = String::new();
    for f in new {
        let _ = writeln!(out, "{f}");
    }
    if new.is_empty() {
        let _ = write!(out, "sor-check: clean");
    } else {
        let _ = write!(out, "sor-check: {} new finding(s)", new.len());
    }
    if baselined > 0 {
        let _ = write!(out, " ({baselined} baselined)");
    }
    let _ = writeln!(out);
    out
}

/// Escape a string for a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write one finding as a JSON object.
fn finding_json(f: &Finding, indent: &str) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{indent}{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"symbol\": \"{}\", \"message\": \"{}\"",
        json_escape(&f.rule),
        json_escape(&f.file.display().to_string()),
        f.line,
        json_escape(&f.symbol),
        json_escape(&f.message),
    );
    if !f.witness.is_empty() {
        let steps: Vec<String> = f
            .witness
            .iter()
            .map(|w| format!("\"{}\"", json_escape(w)))
            .collect();
        let _ = write!(out, ", \"witness\": [{}]", steps.join(", "));
    }
    out.push('}');
    out
}

/// Render the machine-readable JSON report (new and baselined findings,
/// separated).
pub fn render_json(new: &[Finding], baselined: &[Finding]) -> String {
    let mut out = String::from("{\n  \"tool\": \"sor-check\",\n  \"new\": [\n");
    let items: Vec<String> = new.iter().map(|f| finding_json(f, "    ")).collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ],\n  \"baselined\": [\n");
    let items: Vec<String> = baselined.iter().map(|f| finding_json(f, "    ")).collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Render a SARIF 2.1.0 log. Baselined findings are included with
/// `"baselineState": "unchanged"`; new ones with `"new"` — code-scanning
/// UIs use the distinction the same way `--fail-on-new` does.
pub fn render_sarif(new: &[Finding], baselined: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sor-check\",\n");
    out.push_str(
        "          \"informationUri\": \"https://example.invalid/semi-oblivious-routing\",\n",
    );
    out.push_str("          \"rules\": [\n");
    let rules: Vec<String> = RULE_DESCRIPTIONS
        .iter()
        .map(|(id, desc)| {
            format!(
                "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                json_escape(id),
                json_escape(desc)
            )
        })
        .collect();
    out.push_str(&rules.join(",\n"));
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [\n");
    let mut results = Vec::new();
    for (state, set) in [("new", new), ("unchanged", baselined)] {
        for f in set {
            let mut r = String::new();
            let _ = write!(
                r,
                "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"baselineState\": \"{}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"partialFingerprints\": \
                 {{\"sorCheck/v1\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_escape(&f.rule),
                state,
                json_escape(&full_message(f)),
                json_escape(&f.fingerprint()),
                json_escape(&f.file.display().to_string()),
                f.line.max(1),
            );
            results.push(r);
        }
    }
    out.push_str(&results.join(",\n"));
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

/// Message with the witness chain folded in (SARIF has one text field).
fn full_message(f: &Finding) -> String {
    if f.witness.is_empty() {
        return f.message.clone();
    }
    format!("{} [via {}]", f.message, f.witness.join(" → "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "panic-path".into(),
            file: PathBuf::from("crates/flow/src/x.rs"),
            line: 10,
            symbol: "sor-flow::x::f".into(),
            message: "panic reachable".into(),
            witness: vec![
                "sor-flow::x::f".into(),
                ".expect(..) at crates/flow/src/y.rs:3".into(),
            ],
        }
    }

    #[test]
    fn fingerprint_is_line_free() {
        let mut f = sample();
        let a = f.fingerprint();
        f.line = 99;
        assert_eq!(a, f.fingerprint());
        assert!(a.starts_with("panic-path:"));
    }

    #[test]
    fn text_report_shows_witness_and_counts() {
        let text = render_text(&[sample()], 2);
        assert!(text.contains("via sor-flow::x::f"), "{text}");
        assert!(text.contains("1 new finding(s) (2 baselined)"), "{text}");
        let clean = render_text(&[], 0);
        assert!(clean.contains("clean"));
    }

    #[test]
    fn json_is_shaped() {
        let json = render_json(&[sample()], &[]);
        assert!(json.contains("\"rule\": \"panic-path\""));
        assert!(json.contains("\"witness\": ["));
        assert!(json.contains("\"baselined\": ["));
    }

    #[test]
    fn sarif_has_schema_rules_and_states() {
        let s = render_sarif(&[sample()], &[sample()]);
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"baselineState\": \"new\""));
        assert!(s.contains("\"baselineState\": \"unchanged\""));
        for (id, _) in RULE_DESCRIPTIONS {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
