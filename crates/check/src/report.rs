//! Unified findings and the three output formats.
//!
//! Both passes funnel into [`Finding`]: the lexical rules of PR 1 (via
//! [`crate::Violation`]) and the semantic rules built on the item
//! graph. A finding carries an optional *witness* — for
//! panic-reachability, the shortest call chain from the reported public
//! function to the offending site — and a stable [`Finding::fingerprint`]
//! that the baseline mechanism keys on (deliberately line-free, so
//! unrelated edits that shift line numbers do not churn the baseline).
//!
//! Formats: `text` for humans, `json` for scripting, `sarif` (2.1.0)
//! for code-scanning UIs. All three are hand-rolled writers — the
//! registry is unreachable from CI, so no `serde`.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::Violation;

/// Identifier and one-line description of every rule either pass can
/// fire, in reporting order (used for SARIF rule metadata and `--help`).
pub const RULE_DESCRIPTIONS: [(&str, &str); 15] = [
    ("unwrap", "no .unwrap()/.expect()/panic! in library code"),
    (
        "lossy-cast",
        "no narrowing `as` casts in numeric-core crates",
    ),
    (
        "thread-rng",
        "no thread_rng(); randomness is seeded and explicit",
    ),
    ("float-eq", "no ==/!= against float literals"),
    (
        "missing-docs",
        "sor-core public functions carry doc comments",
    ),
    ("unsafe-code", "no unsafe blocks anywhere in the workspace"),
    (
        "layering",
        "crate references respect the declared layer DAG",
    ),
    (
        "panic-path",
        "no panic reachable from public solver-crate functions",
    ),
    (
        "unseeded-rng",
        "functions constructing RNGs take a seed or Rng parameter",
    ),
    (
        "hash-order",
        "no HashMap/HashSet iteration order in solver/sampler output",
    ),
    (
        "dead-api",
        "public items are referenced somewhere outside their crate",
    ),
    (
        "lock-order",
        "lock acquisition order forms a DAG across the call graph",
    ),
    (
        "held-lock",
        "no expensive or blocking calls while a lock guard is live",
    ),
    (
        "atomics",
        "atomic orderings are minimal, justified, and consistent per field",
    ),
    (
        "rayon-ready",
        "parallel-target call trees avoid non-Send and interior-mutable state",
    ),
];

/// One finding from either pass.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable rule identifier (see [`RULE_DESCRIPTIONS`]).
    pub rule: String,
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Item path the finding anchors to (`sor-flow::restricted::solve`),
    /// empty for purely positional findings.
    pub symbol: String,
    /// Human-oriented message.
    pub message: String,
    /// Optional witness chain, outermost first. For `panic-path`: the
    /// call path ending in the panic site.
    pub witness: Vec<String>,
}

impl Finding {
    /// Baseline key: rule + file + symbol (or the message when the
    /// finding has no symbol). Line numbers are deliberately excluded so
    /// the baseline survives unrelated edits above a finding.
    pub fn fingerprint(&self) -> String {
        let anchor = if self.symbol.is_empty() {
            &self.message
        } else {
            &self.symbol
        };
        format!("{}:{}:{}", self.rule, self.file.display(), anchor)
    }
}

impl From<Violation> for Finding {
    fn from(v: Violation) -> Finding {
        Finding {
            rule: v.rule.id().to_string(),
            file: v.file,
            line: v.line,
            symbol: String::new(),
            message: v.message,
            witness: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        for (i, step) in self.witness.iter().enumerate() {
            write!(f, "\n    {}{}", if i == 0 { "via " } else { "  → " }, step)?;
        }
        Ok(())
    }
}

/// Render the human report: new findings in full, baselined ones as a
/// single summary count.
pub fn render_text(new: &[Finding], baselined: usize) -> String {
    let mut out = String::new();
    for f in new {
        let _ = writeln!(out, "{f}");
    }
    if new.is_empty() {
        let _ = write!(out, "sor-check: clean");
    } else {
        let _ = write!(out, "sor-check: {} new finding(s)", new.len());
    }
    if baselined > 0 {
        let _ = write!(out, " ({baselined} baselined)");
    }
    let _ = writeln!(out);
    out
}

/// Escape a string for a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write one finding as a JSON object.
fn finding_json(f: &Finding, indent: &str) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{indent}{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"symbol\": \"{}\", \"message\": \"{}\"",
        json_escape(&f.rule),
        json_escape(&f.file.display().to_string()),
        f.line,
        json_escape(&f.symbol),
        json_escape(&f.message),
    );
    if !f.witness.is_empty() {
        let steps: Vec<String> = f
            .witness
            .iter()
            .map(|w| format!("\"{}\"", json_escape(w)))
            .collect();
        let _ = write!(out, ", \"witness\": [{}]", steps.join(", "));
    }
    out.push('}');
    out
}

/// Render the machine-readable JSON report (new and baselined findings,
/// separated).
pub fn render_json(new: &[Finding], baselined: &[Finding]) -> String {
    let mut out = String::from("{\n  \"tool\": \"sor-check\",\n  \"new\": [\n");
    let items: Vec<String> = new.iter().map(|f| finding_json(f, "    ")).collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ],\n  \"baselined\": [\n");
    let items: Vec<String> = baselined.iter().map(|f| finding_json(f, "    ")).collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Render a SARIF 2.1.0 log. Baselined findings are included with
/// `"baselineState": "unchanged"`; new ones with `"new"` — code-scanning
/// UIs use the distinction the same way `--fail-on-new` does.
pub fn render_sarif(new: &[Finding], baselined: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sor-check\",\n");
    out.push_str(
        "          \"informationUri\": \"https://example.invalid/semi-oblivious-routing\",\n",
    );
    out.push_str("          \"rules\": [\n");
    let rules: Vec<String> = RULE_DESCRIPTIONS
        .iter()
        .map(|(id, desc)| {
            format!(
                "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                json_escape(id),
                json_escape(desc)
            )
        })
        .collect();
    out.push_str(&rules.join(",\n"));
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [\n");
    let mut results = Vec::new();
    for (state, set) in [("new", new), ("unchanged", baselined)] {
        for f in set {
            let mut r = String::new();
            let _ = write!(
                r,
                "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"baselineState\": \"{}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"partialFingerprints\": \
                 {{\"sorCheck/v1\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_escape(&f.rule),
                state,
                json_escape(&full_message(f)),
                json_escape(&f.fingerprint()),
                json_escape(&f.file.display().to_string()),
                f.line.max(1),
            );
            results.push(r);
        }
    }
    out.push_str(&results.join(",\n"));
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

/// Message with the witness chain folded in (SARIF has one text field).
fn full_message(f: &Finding) -> String {
    if f.witness.is_empty() {
        return f.message.clone();
    }
    format!("{} [via {}]", f.message, f.witness.join(" → "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "panic-path".into(),
            file: PathBuf::from("crates/flow/src/x.rs"),
            line: 10,
            symbol: "sor-flow::x::f".into(),
            message: "panic reachable".into(),
            witness: vec![
                "sor-flow::x::f".into(),
                ".expect(..) at crates/flow/src/y.rs:3".into(),
            ],
        }
    }

    #[test]
    fn fingerprint_is_line_free() {
        let mut f = sample();
        let a = f.fingerprint();
        f.line = 99;
        assert_eq!(a, f.fingerprint());
        assert!(a.starts_with("panic-path:"));
    }

    #[test]
    fn text_report_shows_witness_and_counts() {
        let text = render_text(&[sample()], 2);
        assert!(text.contains("via sor-flow::x::f"), "{text}");
        assert!(text.contains("1 new finding(s) (2 baselined)"), "{text}");
        let clean = render_text(&[], 0);
        assert!(clean.contains("clean"));
    }

    #[test]
    fn json_is_shaped() {
        let json = render_json(&[sample()], &[]);
        assert!(json.contains("\"rule\": \"panic-path\""));
        assert!(json.contains("\"witness\": ["));
        assert!(json.contains("\"baselined\": ["));
    }

    #[test]
    fn sarif_has_schema_rules_and_states() {
        let s = render_sarif(&[sample()], &[sample()]);
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"baselineState\": \"new\""));
        assert!(s.contains("\"baselineState\": \"unchanged\""));
        for (id, _) in RULE_DESCRIPTIONS {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
