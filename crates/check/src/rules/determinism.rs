//! Determinism audit: the paper's sampling experiments (Theorems
//! 2.3/2.5) are Monte-Carlo — they are only *reproducible* if every
//! random draw is seeded by the caller and no output ordering leaks
//! hash-table iteration order.
//!
//! Two rules:
//!
//! * `unseeded-rng` — a function in `[determinism] rng_crates` that
//!   constructs an RNG from ambient entropy (`from_entropy`,
//!   `thread_rng`, `from_os_rng`) must take a seed or `Rng` parameter,
//!   so the entropy source is always chosen at the experiment boundary,
//!   never buried in library code. Seeded constructors are fine: a
//!   stream derived from a stored seed is deterministic by definition.
//!   (The bench crate is out of scope by configuration: its hard-coded
//!   seeds define the experiments.)
//! * `hash-order` — a function in `[determinism] order_crates` must not
//!   iterate a `HashMap`/`HashSet` local (`.iter()`, `.keys()`, `for
//!   .. in ..`, `.drain()`, ...): with the default `RandomState` the
//!   order differs per process, so anything downstream of it is
//!   unreproducible. Sort first or use a `BTreeMap`/`Vec`.

use crate::config::Config;
use crate::graph::Workspace;
use crate::items::ItemKind;
use crate::report::Finding;

use super::allows;

/// Run both determinism rules.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        let rng_scope = cfg.rng_crates.iter().any(|c| c == &file.krate);
        let order_scope = cfg.order_crates.iter().any(|c| c == &file.krate);
        if !rng_scope && !order_scope {
            continue;
        }
        for item in &file.items {
            if item.kind != ItemKind::Fn {
                continue;
            }
            if rng_scope {
                if let Some(&line) = item.facts.rng_ctors.first() {
                    let sig = item.signature.to_lowercase();
                    let seeded = sig.contains("rng") || sig.contains("seed");
                    if !seeded
                        && !allows(file, line, "unseeded-rng")
                        && !allows(file, item.line, "unseeded-rng")
                    {
                        out.push(Finding {
                            rule: "unseeded-rng".into(),
                            file: file.rel.clone(),
                            line,
                            symbol: format!("{}::{}", file.krate, item.path_in(&file.module)),
                            message: format!(
                                "`{}` constructs an RNG but takes no seed/`Rng` parameter — \
                                 thread the entropy source in from the caller so experiments \
                                 stay reproducible",
                                item.name
                            ),
                            witness: Vec::new(),
                        });
                    }
                }
            }
            if order_scope {
                for &line in &item.facts.hash_iters {
                    if allows(file, line, "hash-order") {
                        continue;
                    }
                    out.push(Finding {
                        rule: "hash-order".into(),
                        file: file.rel.clone(),
                        line,
                        symbol: format!("{}::{}:{line}", file.krate, item.path_in(&file.module)),
                        message: format!(
                            "`{}` iterates a HashMap/HashSet — the order is per-process \
                             random; sort first or use a BTreeMap/Vec before it feeds \
                             any output",
                            item.name
                        ),
                        witness: Vec::new(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg() -> Config {
        Config::parse("[determinism]\norder_crates = [\"sor-core\"]\nrng_crates = [\"sor-core\"]\n")
            .expect("cfg")
    }

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, krate, text) in files {
            ws.files.push(parse_file(Path::new(rel), krate, text));
        }
        ws
    }

    #[test]
    fn unseeded_rng_flagged_seeded_ok() {
        let bad = ws(&[(
            "crates/core/src/a.rs",
            "sor-core",
            "pub fn sample(n: usize) -> usize {\n    let mut r = StdRng::from_entropy();\n    let _ = r;\n    n\n}\n",
        )]);
        let fs = run(&bad, &cfg());
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "unseeded-rng");
        assert!(fs[0].symbol.contains("sample"));

        let takes_seed = ws(&[(
            "crates/core/src/a.rs",
            "sor-core",
            "pub fn sample(n: usize, seed: u64) -> usize {\n    let mut r = StdRng::from_entropy();\n    let _ = r;\n    let _ = seed;\n    n\n}\n",
        )]);
        assert!(run(&takes_seed, &cfg()).is_empty());

        // constructing from a stored seed is deterministic — never flagged
        let stored_seed = ws(&[(
            "crates/core/src/a.rs",
            "sor-core",
            "pub fn sample(n: usize) -> usize {\n    let mut r = StdRng::seed_from_u64(42);\n    let _ = r;\n    n\n}\n",
        )]);
        assert!(run(&stored_seed, &cfg()).is_empty());

        let takes_rng = ws(&[(
            "crates/core/src/a.rs",
            "sor-core",
            "pub fn sample<R: Rng>(n: usize, r: &mut R) -> usize {\n    let mut fork = StdRng::from_entropy();\n    let _ = fork;\n    let _ = r;\n    n\n}\n",
        )]);
        assert!(run(&takes_rng, &cfg()).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let bench = ws(&[(
            "crates/bench/src/a.rs",
            "sor-bench",
            "pub fn experiment() {\n    let mut r = StdRng::from_entropy();\n    let _ = r;\n}\n",
        )]);
        assert!(run(&bench, &cfg()).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_and_allowed() {
        let text = "pub fn collect() -> Vec<u32> {\n    let mut m = HashMap::new();\n    m.insert(1u32, 2u32);\n    let mut out = Vec::new();\n    for (k, _) in m.iter() {\n        out.push(*k);\n    }\n    out\n}\n";
        let bad = ws(&[("crates/core/src/a.rs", "sor-core", text)]);
        let fs = run(&bad, &cfg());
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "hash-order");
        assert_eq!(fs[0].line, 5);

        let allowed = text.replace(
            "    for (k, _) in m.iter() {",
            "    // sor-check: allow(hash-order) — result is sorted below\n    for (k, _) in m.iter() {",
        );
        let ok = ws(&[("crates/core/src/a.rs", "sor-core", allowed.as_str())]);
        assert!(run(&ok, &cfg()).is_empty());
    }
}
