//! `held-lock`: no expensive or blocking work while a guard is live.
//!
//! For every acquisition site of the [`super::concurrency::Model`], any
//! call made inside the guard's lexical scope that *is* — or whose call
//! tree reaches — a function named in `check.toml [concurrency]
//! expensive` is reported, with a panic-path-style shortest witness
//! chain ending at the expensive call site. "Expensive" is the
//! project's own list: MWU solves, FRT builds, file I/O, channel
//! send/recv — anything that must never run under a shard lock.
//!
//! Nested *lock acquisitions* under a guard are deliberately not
//! reported here: consistently-ordered nesting is legal, and the
//! inconsistent kind is the `lock-order` rule's job.

use std::collections::{BTreeSet, VecDeque};

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::report::Finding;

use super::allows;
use super::concurrency::{call_after_col, is_guard_call, Model};

/// An expensive call site: `(fn index, call name, 1-based line)`.
type Site = (usize, String, usize);

/// Run the held-lock rule.
pub fn run(ws: &Workspace, graph: &ItemGraph, model: &Model, cfg: &Config) -> Vec<Finding> {
    if cfg.concurrency_crates.is_empty() || cfg.expensive_fns.is_empty() {
        return Vec::new();
    }
    let expensive = |name: &str| cfg.expensive_fns.iter().any(|e| e == name);
    let mut out = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (g, fref) in graph.fns.iter().enumerate() {
        if model.acquires[g].is_empty() {
            continue;
        }
        let file = &ws.files[fref.file];
        let item = &file.items[fref.item];
        if allows(file, item.line, "held-lock") {
            continue;
        }
        for a in &model.acquires[g] {
            if allows(file, a.line, "held-lock") {
                continue;
            }
            for call in &item.calls {
                if call.line < a.line
                    || call.line > a.scope_end
                    || is_guard_call(&model.acquires[g], &call.name, call.line)
                    || allows(file, call.line, "held-lock")
                {
                    continue;
                }
                if call.line == a.line
                    && !call_after_col(&file.stripped[a.line - 1], &call.name, a.col)
                {
                    continue;
                }
                // Direct hit: the call itself is expensive (the name may
                // resolve outside the workspace — std I/O, channels).
                let reached: Option<(Vec<usize>, Site)> = if expensive(&call.name) {
                    Some((vec![g], (g, call.name.clone(), call.line)))
                } else {
                    // Otherwise BFS each matching callee's subtree for
                    // the nearest fn containing an expensive call.
                    model.calls[g]
                        .iter()
                        .filter(|&&k| {
                            let kf = graph.fns[k];
                            ws.files[kf.file].items[kf.item].name == call.name
                        })
                        .filter_map(|&k| nearest_expensive(ws, graph, model, k, &expensive))
                        .min_by_key(|(chain, _)| chain.len())
                        .map(|(chain, site)| {
                            let mut full = vec![g];
                            full.extend(chain);
                            (full, site)
                        })
                };
                let Some((chain, (sf, ename, sline))) = reached else {
                    continue;
                };
                let site_file = &ws.files[graph.fns[sf].file];
                let symbol = format!("{}:{}->{}", graph.fn_path(ws, g), a.lock, ename);
                if !seen.insert(symbol.clone()) {
                    continue;
                }
                let mut witness: Vec<String> = chain
                    .iter()
                    .map(|&j| {
                        let jf = graph.fns[j];
                        format!(
                            "{} ({}:{})",
                            graph.fn_path(ws, j),
                            ws.files[jf.file].rel.display(),
                            ws.files[jf.file].items[jf.item].line
                        )
                    })
                    .collect();
                witness.push(format!(
                    "{}(..) at {}:{}",
                    ename,
                    site_file.rel.display(),
                    sline
                ));
                out.push(Finding {
                    rule: "held-lock".into(),
                    file: file.rel.clone(),
                    line: call.line,
                    symbol,
                    message: format!(
                        "`{}` holds `{}` (acquired {}:{}) across a call that reaches \
                         expensive `{}` at {}:{} ({} call{} deep) — narrow the guard \
                         or move the work outside it",
                        item.name,
                        a.lock,
                        file.rel.display(),
                        a.line,
                        ename,
                        site_file.rel.display(),
                        sline,
                        chain.len() - 1,
                        if chain.len() == 2 { "" } else { "s" }
                    ),
                    witness,
                });
            }
        }
    }
    out
}

/// BFS from `start` to the nearest fn containing a call to an expensive
/// name; returns the fn chain `[start, …]` plus the concrete site.
fn nearest_expensive(
    ws: &Workspace,
    graph: &ItemGraph,
    model: &Model,
    start: usize,
    expensive: &dyn Fn(&str) -> bool,
) -> Option<(Vec<usize>, Site)> {
    let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut visited = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(x) = queue.pop_front() {
        let xf = graph.fns[x];
        let hit = ws.files[xf.file].items[xf.item]
            .calls
            .iter()
            .find(|c| expensive(&c.name));
        if let Some(c) = hit {
            let mut chain = vec![x];
            let mut cur = x;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return Some((chain, (x, c.name.clone(), c.line)));
        }
        for &y in &model.calls[x] {
            if !visited[y] {
                visited[y] = true;
                parent[y] = Some(x);
                queue.push_back(y);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg() -> Config {
        Config::parse("[concurrency]\ncrates = [\"sor-core\"]\nexpensive = [\"solve\", \"send\"]\n")
            .expect("cfg")
    }

    fn ws(text: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        ws
    }

    fn findings(text: &str) -> Vec<Finding> {
        let w = ws(text);
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg());
        run(&w, &graph, &model, &cfg())
    }

    #[test]
    fn direct_expensive_call_under_guard() {
        let fs = findings(
            "pub struct P;\nimpl P {\n    pub fn f(&self, tx: &Tx) {\n        let g = self.state.lock();\n        tx.send(*g);\n    }\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].symbol.ends_with("sor-core/state->send"),
            "{}",
            fs[0].symbol
        );
        assert_eq!(fs[0].witness.len(), 2, "{:?}", fs[0].witness);
        assert!(fs[0].witness[1].contains("send(..)"), "{:?}", fs[0].witness);
    }

    #[test]
    fn transitive_expensive_call_with_chain() {
        let fs = findings(
            "pub struct P;\nimpl P {\n    pub fn f(&self) {\n        let g = self.state.lock();\n        self.helper();\n    }\n    fn helper(&self) {\n        solve();\n    }\n}\nfn solve() {}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        // f → helper → solve site
        assert_eq!(fs[0].witness.len(), 3, "{:?}", fs[0].witness);
        assert!(fs[0].witness[1].contains("helper"), "{:?}", fs[0].witness);
    }

    #[test]
    fn call_after_guard_drop_is_clean() {
        let fs = findings(
            "pub struct P;\nimpl P {\n    pub fn f(&self, tx: &Tx) {\n        let g = self.state.lock();\n        drop(g);\n        tx.send(1);\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn io_write_under_guard_is_expensive_not_guard_machinery() {
        let w = ws(
            "pub struct P;\nimpl P {\n    pub fn f(&self, out: &mut W) {\n        let g = self.state.lock();\n        out.write(&g.buf);\n    }\n}\n",
        );
        let cfg =
            Config::parse("[concurrency]\ncrates = [\"sor-core\"]\nexpensive = [\"write\"]\n")
                .expect("cfg");
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg);
        let fs = run(&w, &graph, &model, &cfg);
        // `out.write(&g.buf)` has arguments: it is io::Write, not an
        // RwLock acquisition, and must be flaggable as expensive.
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].symbol.ends_with("->write"), "{}", fs[0].symbol);
    }

    #[test]
    fn rwlock_write_acquisition_is_not_its_own_expensive_call() {
        let w = ws(
            "pub struct P;\nimpl P {\n    pub fn f(&self) {\n        let g = self.state.write();\n        g.bump();\n    }\n}\n",
        );
        let cfg =
            Config::parse("[concurrency]\ncrates = [\"sor-core\"]\nexpensive = [\"write\"]\n")
                .expect("cfg");
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg);
        let fs = run(&w, &graph, &model, &cfg);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let fs = findings(
            "pub struct P;\nimpl P {\n    pub fn f(&self, tx: &Tx) {\n        let g = self.state.lock();\n        // sor-check: allow(held-lock) — bounded channel, never blocks\n        tx.send(*g);\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
