//! `quadratic-scan`: no linear scans inside a loop over a collection.
//!
//! Within every function of a hot tree, a `for` loop over a `Vec`/slice
//! whose body runs `.contains(..)`, `.iter().position(..)` or
//! `.iter().find(..)` against the same or a sibling `Vec`/slice is
//! O(n·m) — the classic accidental quadratic. The receivers are tracked
//! lexically: slice/`Vec` parameters from the signature plus locals
//! whose `let` line evidences a `Vec` (`vec![`, `Vec::`, `.to_vec()`,
//! `.collect::<Vec`). Sets and maps are exempt: their `.contains` is
//! the fix, not the bug.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::{body_spans, ident_after_let, loop_depths, SourceFile};
use crate::report::Finding;

use super::allows;
use super::hotpath::Hot;

/// Evidence on a `let` line that the local is a `Vec`.
const VEC_LOCAL_EVIDENCE: [&str; 5] = ["vec![", "Vec::", ": Vec<", ".to_vec()", ".collect::<Vec"];

/// Linear-scan tokens on a tracked receiver: `(suffix, shown)`.
const SCAN_TOKENS: [(&str, &str); 3] = [
    (".contains(", "contains"),
    (".iter().position(", "iter().position"),
    (".iter().find(", "iter().find"),
];

/// `Vec`/slice parameter names from a flattened fn signature.
fn slice_params(sig: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (pos, _) in sig.match_indices(':') {
        let after = sig[pos + 1..].trim_start();
        let is_slice = after.starts_with("&[")
            || after.starts_with("&mut [")
            || after.starts_with("Vec<")
            || after.starts_with("&Vec<")
            || after.starts_with("&mut Vec<");
        if !is_slice {
            continue;
        }
        let before = &sig[..pos];
        let name: String = before
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let name: String = name.chars().rev().collect();
        if !name.is_empty() {
            out.push(name);
        }
    }
    out
}

/// Does `line` contain `name` followed by `suffix`, with a left ident
/// boundary on `name`?
fn scans(line: &str, name: &str, suffix: &str) -> bool {
    let pat = format!("{name}{suffix}");
    for (pos, _) in line.match_indices(&pat) {
        let ok = pos == 0 || {
            let b = line.as_bytes()[pos - 1];
            !b.is_ascii_alphanumeric() && b != b'_' && b != b'.'
        };
        if ok {
            return true;
        }
    }
    false
}

/// The loop collection named in a `for ... in <expr>` header, if it is
/// one of `tracked`.
fn loop_collection<'a>(header: &str, tracked: &'a [String]) -> Option<&'a String> {
    let (_, expr) = header.split_once(" in ")?;
    tracked.iter().find(|name| {
        [
            format!("&{name}"),
            format!("&mut {name}"),
            format!("{name}.iter"),
            format!("{name} "),
            format!("{name}.len()"),
            format!("{name}.windows"),
            format!("{name}.chunks"),
        ]
        .iter()
        .any(|p| expr.trim_start().starts_with(p.as_str()) || expr.contains(&format!(" {p}")))
    })
}

/// 0-based last line of the loop body opened by the header at `l0`.
fn loop_end(file: &SourceFile, l0: usize, fn_close: usize) -> usize {
    let mut depth = 0i32;
    let mut opened = false;
    for idx in l0..=fn_close.min(file.stripped.len().saturating_sub(1)) {
        for c in file.stripped[idx].chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return idx;
        }
    }
    fn_close
}

/// Run the quadratic-scan rule.
pub fn run(ws: &Workspace, graph: &ItemGraph, hot: &Hot, cfg: &Config) -> Vec<Finding> {
    let _ = cfg;
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for (f, fref) in graph.fns.iter().enumerate() {
        if !hot.in_tree[f] {
            continue;
        }
        let file = &ws.files[fref.file];
        let item = &file.items[fref.item];
        if allows(file, item.line, "quadratic-scan") {
            continue;
        }
        let Some((open, close)) = body_spans(file)
            .into_iter()
            .find(|&(i, _, _)| i == fref.item)
            .map(|(_, o, c)| (o, c))
        else {
            continue;
        };
        let depth = loop_depths(&file.stripped);
        // Tracked Vec/slice names: params + locals.
        let mut tracked = slice_params(&item.signature);
        for idx in (open - 1)..close.min(file.stripped.len()) {
            let t = file.stripped[idx].trim_start();
            if t.starts_with("let ") && VEC_LOCAL_EVIDENCE.iter().any(|e| t.contains(e)) {
                if let Some(name) = ident_after_let(t) {
                    if !tracked.contains(&name) {
                        tracked.push(name);
                    }
                }
            }
        }
        if tracked.is_empty() {
            continue;
        }
        let hi = close.min(file.stripped.len());
        for (idx, stripped) in file.stripped.iter().enumerate().take(hi).skip(open - 1) {
            let t = stripped.trim_start();
            if !t.starts_with("for ") {
                continue;
            }
            let Some(loop_name) = loop_collection(t, &tracked) else {
                continue;
            };
            let end = loop_end(file, idx, close - 1);
            for body_idx in (idx + 1)..=end {
                let line = &file.stripped[body_idx];
                for name in &tracked {
                    for (suffix, shown) in SCAN_TOKENS {
                        if !scans(line, name, suffix) {
                            continue;
                        }
                        let line_no = body_idx + 1;
                        if allows(file, line_no, "quadratic-scan") {
                            continue;
                        }
                        let key = format!("{name}.{shown}");
                        if !seen.insert((fref.file, fref.item, key.clone())) {
                            continue;
                        }
                        let fn_path = graph.fn_path(ws, f);
                        out.push(Finding {
                            rule: "quadratic-scan".into(),
                            file: file.rel.clone(),
                            line: line_no,
                            symbol: format!("{fn_path}:{key}"),
                            message: format!(
                                "linear scan `{}.{}(..)` inside the loop over `{}` in \
                                 `{}` (hot tree) is O(|{}|·|{}|) — index into a \
                                 `HashSet`/`HashMap` or sort once instead",
                                name, shown, loop_name, fn_path, loop_name, name
                            ),
                            witness: vec![
                                format!(
                                    "loop over `{}` at {}:{} (loop depth {})",
                                    loop_name,
                                    file.rel.display(),
                                    idx + 1,
                                    depth[idx] + 1
                                ),
                                format!(
                                    "`{}.{}(..)` at {}:{}",
                                    name,
                                    shown,
                                    file.rel.display(),
                                    line_no
                                ),
                            ],
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::concurrency::Model;
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn findings(text: &str) -> Vec<Finding> {
        let mut w = Workspace::default();
        w.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        let cfg = Config::parse("[hotpath]\nentries = [\"entry\"]\n").expect("cfg");
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg);
        let hot = Hot::build(&w, &graph, &model, &cfg);
        run(&w, &graph, &hot, &cfg)
    }

    #[test]
    fn contains_scan_over_sibling_vec_is_flagged() {
        let fs = findings(
            "pub fn entry(xs: &[u32], ys: &[u32]) -> usize {\n    let mut n = 0;\n    for x in xs {\n        if ys.contains(x) {\n            n += 1;\n        }\n    }\n    n\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].symbol.ends_with("entry:ys.contains"),
            "{}",
            fs[0].symbol
        );
    }

    #[test]
    fn position_scan_over_local_vec_is_flagged() {
        let fs = findings(
            "pub fn entry(xs: &[u32]) -> usize {\n    let seen: Vec<u32> = xs.to_vec();\n    let mut n = 0;\n    for x in xs {\n        if let Some(i) = seen.iter().position(|s| s == x) {\n            n += i;\n        }\n    }\n    n\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].symbol.ends_with("seen.iter().position"),
            "{}",
            fs[0].symbol
        );
    }

    #[test]
    fn hashset_contains_is_clean() {
        let fs = findings(
            "pub fn entry(xs: &[u32]) -> usize {\n    let seen: HashSet<u32> = xs.iter().copied().collect();\n    let mut n = 0;\n    for x in xs {\n        if seen.contains(x) {\n            n += 1;\n        }\n    }\n    n\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn scan_outside_the_loop_is_clean() {
        let fs = findings(
            "pub fn entry(xs: &[u32], ys: &[u32]) -> bool {\n    for x in xs {\n        let _ = x;\n    }\n    ys.contains(&0)\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
