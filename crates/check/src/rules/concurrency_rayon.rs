//! `rayon-ready`: parallel targets must not reach non-`Send` state.
//!
//! ROADMAP item 2 commits the FRT embedding, `sample_k`, and the MWU
//! oracle to a rayon scale-up. This rule walks the call tree of every
//! function named in `check.toml [concurrency] parallel_targets`
//! (plain `name` or `crate::name`) and reports each reachable use of a
//! non-`Send`/interior-mutability token — `Rc`, `RefCell`, `Cell`,
//! `UnsafeCell`, raw pointers, `thread_local!` — with the call chain
//! from the target as witness. Burn these down *before* the
//! `par_iter()` lands, when the fix is still a local refactor.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::body_spans;
use crate::report::Finding;

use super::allows;
use super::concurrency::Model;

/// Non-`Send` / interior-mutability tokens: display name plus the
/// patterns that evidence it (type position and constructor call).
const NON_SEND: [(&str, &[&str]); 7] = [
    ("Rc", &["Rc<", "Rc::new("]),
    ("RefCell", &["RefCell<", "RefCell::new("]),
    ("Cell", &["Cell<", "Cell::new("]),
    ("UnsafeCell", &["UnsafeCell<", "UnsafeCell::new("]),
    ("*mut", &["*mut "]),
    ("*const", &["*const "]),
    ("thread_local!", &["thread_local!"]),
];

/// Does `line` contain `pat` with a non-identifier left boundary (so
/// `Arc<` never matches `Rc<` and `RefCell<` never matches `Cell<`)?
fn has_token(line: &str, pat: &str) -> bool {
    for (pos, _) in line.match_indices(pat) {
        let ok = pos == 0 || {
            let b = line.as_bytes()[pos - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        if ok {
            return true;
        }
    }
    false
}

/// Run the rayon-readiness audit.
pub fn run(ws: &Workspace, graph: &ItemGraph, model: &Model, cfg: &Config) -> Vec<Finding> {
    if cfg.parallel_targets.is_empty() {
        return Vec::new();
    }
    // (file, item) → 1-based body span, built lazily per visited file.
    let mut spans: BTreeMap<usize, BTreeMap<usize, (usize, usize)>> = BTreeMap::new();
    let mut out = Vec::new();
    let mut reported: BTreeSet<(usize, usize, &str)> = BTreeSet::new();
    for spec in &cfg.parallel_targets {
        let (kspec, name) = match spec.split_once("::") {
            Some((k, n)) => (Some(k), n),
            None => (None, spec.as_str()),
        };
        let starts: Vec<usize> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, fref)| {
                let file = &ws.files[fref.file];
                file.items[fref.item].name == name && kspec.is_none_or(|k| file.krate == k)
            })
            .map(|(i, _)| i)
            .collect();
        // BFS over the call tree, remembering parents for the witness.
        let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
        let mut visited = vec![false; graph.fns.len()];
        let mut queue = VecDeque::new();
        for &s in &starts {
            visited[s] = true;
            queue.push_back(s);
        }
        while let Some(x) = queue.pop_front() {
            let fref = graph.fns[x];
            let file = &ws.files[fref.file];
            let item = &file.items[fref.item];
            let span = spans
                .entry(fref.file)
                .or_insert_with(|| {
                    body_spans(file)
                        .into_iter()
                        .map(|(i, o, c)| (i, (o, c)))
                        .collect()
                })
                .get(&fref.item)
                .copied();
            // Scan the signature line plus every body line.
            let mut hits: Vec<(usize, &str)> = Vec::new();
            for (display, pats) in NON_SEND {
                if pats.iter().any(|p| has_token(&item.signature, p)) {
                    hits.push((item.line, display));
                }
                if let Some((open, close)) = span {
                    for idx in (open - 1)..close.min(file.stripped.len()) {
                        if pats.iter().any(|p| has_token(&file.stripped[idx], p)) {
                            hits.push((idx + 1, display));
                        }
                    }
                }
            }
            for (line, display) in hits {
                if !reported.insert((fref.file, line, display)) {
                    continue; // first target wins
                }
                if allows(file, line, "rayon-ready") || allows(file, item.line, "rayon-ready") {
                    continue;
                }
                // Chain target → … → x.
                let mut chain = vec![x];
                let mut cur = x;
                while let Some(p) = parent[cur] {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                let mut witness: Vec<String> = chain
                    .iter()
                    .map(|&j| {
                        let jf = graph.fns[j];
                        format!(
                            "{} ({}:{})",
                            graph.fn_path(ws, j),
                            ws.files[jf.file].rel.display(),
                            ws.files[jf.file].items[jf.item].line
                        )
                    })
                    .collect();
                witness.push(format!("{} at {}:{}", display, file.rel.display(), line));
                out.push(Finding {
                    rule: "rayon-ready".into(),
                    file: file.rel.clone(),
                    line,
                    symbol: format!("{}:{}", graph.fn_path(ws, x), display),
                    message: format!(
                        "`{}`, reachable from parallel target `{}`, uses non-Send/\
                         interior-mutable `{}` — replace it with Send-safe state \
                         before the rayon scale-up",
                        graph.fn_path(ws, x),
                        spec,
                        display
                    ),
                    witness,
                });
            }
            for &y in &model.calls[x] {
                if !visited[y] {
                    visited[y] = true;
                    parent[y] = Some(x);
                    queue.push_back(y);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg(targets: &str) -> Config {
        Config::parse(&format!(
            "[concurrency]\ncrates = [\"sor-core\"]\nparallel_targets = [{targets}]\n"
        ))
        .expect("cfg")
    }

    fn ws(text: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        ws
    }

    fn run_on(w: &Workspace, cfg: &Config) -> Vec<Finding> {
        let graph = ItemGraph::build(w);
        let model = Model::build(w, &graph, cfg);
        run(w, &graph, &model, cfg)
    }

    #[test]
    fn reachable_refcell_is_reported_with_chain() {
        let w = ws(
            "pub fn entry(n: u64) -> u64 {\n    helper(n)\n}\nfn helper(n: u64) -> u64 {\n    let cell: Rc<RefCell<u64>> = Rc::new(RefCell::new(n));\n    *cell.borrow()\n}\n",
        );
        let fs = run_on(&w, &cfg("\"entry\""));
        // Rc and RefCell on the same line: two findings, shared chain.
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().any(|f| f.symbol.ends_with(":Rc")), "{fs:?}");
        assert!(fs.iter().any(|f| f.symbol.ends_with(":RefCell")), "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.witness.len(), 3, "{:?}", f.witness);
        assert!(f.witness[0].contains("entry"), "{:?}", f.witness);
        assert!(f.witness[1].contains("helper"), "{:?}", f.witness);
    }

    #[test]
    fn arc_does_not_match_rc() {
        let w =
            ws("pub fn entry(n: u64) -> u64 {\n    let a: Arc<u64> = Arc::new(n);\n    *a\n}\n");
        assert!(run_on(&w, &cfg("\"entry\"")).is_empty());
    }

    #[test]
    fn crate_qualified_target_scopes_the_start() {
        let w = ws("pub fn entry() {\n    let c = Cell::new(1);\n}\n");
        assert!(run_on(&w, &cfg("\"sor-graph::entry\"")).is_empty());
        assert_eq!(run_on(&w, &cfg("\"sor-core::entry\"")).len(), 1);
    }

    #[test]
    fn unreachable_code_is_not_scanned() {
        let w = ws("pub fn entry() {}\nfn lonely() {\n    let c = Cell::new(1);\n}\n");
        assert!(run_on(&w, &cfg("\"entry\"")).is_empty());
    }
}
