//! `panic-path`: transitive panic-reachability over the call graph.
//!
//! Direct panic facts (`panic!`-family macros, `.unwrap()`/`.expect()`,
//! and — when `panics.include_indexing` is set — slice indexing) are
//! propagated backwards along resolved call edges. Every `pub` function
//! of a crate listed in `check.toml [panics] public_crates` from which
//! a panic site is reachable is reported once, with the *shortest*
//! witness call chain (BFS) ending in the concrete site.
//!
//! The lexical `allow(unwrap)` comments deliberately do **not** silence
//! this rule: they certify that a site's invariant is documented, not
//! that the panic is acceptable on a public solver path. A site is
//! excluded from reachability only with `allow(panic-path)` at the
//! site, and a public function is excused only with `allow(panic-path)`
//! at its declaration — everything else is fixed or baselined.

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::{PanicKind, PanicSite, Visibility};
use crate::report::Finding;

use super::allows;

/// Run the panic-reachability rule.
pub fn run(ws: &Workspace, graph: &ItemGraph, cfg: &Config) -> Vec<Finding> {
    if cfg.panic_public_crates.is_empty() {
        return Vec::new();
    }
    // Direct, non-excluded panic sites per function node.
    let direct: Vec<Vec<&PanicSite>> = graph
        .fns
        .iter()
        .map(|fref| {
            let file = &ws.files[fref.file];
            file.items[fref.item]
                .facts
                .panics
                .iter()
                .filter(|site| {
                    (site.kind != PanicKind::Indexing
                        || cfg.panic_include_indexing
                        || cfg.panic_index_crates.iter().any(|c| c == &file.krate))
                        && !allows(file, site.line, "panic-path")
                })
                .collect()
        })
        .collect();

    let mut out = Vec::new();
    for (i, fref) in graph.fns.iter().enumerate() {
        let file = &ws.files[fref.file];
        let item = &file.items[fref.item];
        if item.vis != Visibility::Public
            || !cfg.panic_public_crates.iter().any(|c| c == &file.krate)
        {
            continue;
        }
        if allows(file, item.line, "panic-path") {
            continue;
        }
        let Some((chain, site)) = shortest_panic_chain(graph, &direct, i) else {
            continue;
        };
        let site_file = &ws.files[graph.fns[*chain.last().unwrap_or(&i)].file];
        let mut witness: Vec<String> = chain
            .iter()
            .map(|&j| {
                let fr = graph.fns[j];
                format!(
                    "{} ({}:{})",
                    graph.fn_path(ws, j),
                    ws.files[fr.file].rel.display(),
                    ws.files[fr.file].items[fr.item].line
                )
            })
            .collect();
        witness.push(format!(
            "{} at {}:{}",
            site.token,
            site_file.rel.display(),
            site.line
        ));
        out.push(Finding {
            rule: "panic-path".into(),
            file: file.rel.clone(),
            line: item.line,
            symbol: graph.fn_path(ws, i),
            message: format!(
                "public fn `{}` can reach {} at {}:{} ({} call{} deep) — return a \
                 Result or shed the panic",
                item.name,
                site.token,
                site_file.rel.display(),
                site.line,
                chain.len() - 1,
                if chain.len() == 2 { "" } else { "s" }
            ),
            witness,
        });
    }
    out
}

/// BFS from `start` along call edges to the nearest function with a
/// direct panic site. Returns the node chain (starting at `start`,
/// ending at the panicking function) and the site.
fn shortest_panic_chain<'a>(
    graph: &ItemGraph,
    direct: &[Vec<&'a PanicSite>],
    start: usize,
) -> Option<(Vec<usize>, &'a PanicSite)> {
    let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut visited = vec![false; graph.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        if let Some(site) = direct[u].first() {
            // Reconstruct start → u.
            let mut chain = vec![u];
            let mut cur = u;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return Some((chain, site));
        }
        for &v in &graph.calls[u] {
            if !visited[v] {
                visited[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg() -> Config {
        Config::parse("[panics]\npublic_crates = [\"sor-flow\"]\n").expect("cfg")
    }

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, krate, text) in files {
            ws.files.push(parse_file(Path::new(rel), krate, text));
        }
        ws
    }

    #[test]
    fn transitive_reach_with_witness() {
        let ws = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "pub fn entry() {\n    middle();\n}\nfn middle() {\n    deep();\n}\nfn deep(o: Option<u32>) {\n    o.unwrap();\n}\n",
        )]);
        let graph = ItemGraph::build(&ws);
        let fs = run(&ws, &graph, &cfg());
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.symbol, "sor-flow::a::entry");
        // witness: entry → middle → deep → site
        assert_eq!(f.witness.len(), 4, "{:?}", f.witness);
        assert!(f.witness[0].contains("entry"));
        assert!(f.witness[1].contains("middle"));
        assert!(f.witness[2].contains("deep"));
        assert!(f.witness[3].contains(".unwrap()"));
        assert!(f.witness[3].contains("crates/flow/src/a.rs:8"));
    }

    #[test]
    fn shortest_chain_wins() {
        let ws = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "pub fn entry() {\n    long_way();\n    short_way();\n}\nfn long_way() {\n    short_way();\n}\nfn short_way() {\n    panic!(\"x\");\n}\n",
        )]);
        let graph = ItemGraph::build(&ws);
        let fs = run(&ws, &graph, &cfg());
        assert_eq!(fs.len(), 1);
        // entry → short_way → site: 3 witness entries, not 4
        assert_eq!(fs[0].witness.len(), 3, "{:?}", fs[0].witness);
    }

    #[test]
    fn private_and_out_of_scope_fns_are_not_reported() {
        let ws = ws(&[
            (
                "crates/flow/src/a.rs",
                "sor-flow",
                "fn private_panics() {\n    panic!(\"x\");\n}\n",
            ),
            (
                "crates/te/src/a.rs",
                "sor-te",
                "pub fn public_panics() {\n    panic!(\"x\");\n}\n",
            ),
        ]);
        let graph = ItemGraph::build(&ws);
        assert!(run(&ws, &graph, &cfg()).is_empty());
    }

    #[test]
    fn allow_at_site_and_at_decl() {
        let at_site = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "pub fn entry(o: Option<u32>) {\n    // sor-check: allow(panic-path) — validated upstream\n    o.unwrap();\n}\n",
        )]);
        let graph = ItemGraph::build(&at_site);
        assert!(run(&at_site, &graph, &cfg()).is_empty());

        let at_decl = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "// sor-check: allow(panic-path) — panicking front-end by contract\npub fn entry(o: Option<u32>) {\n    o.unwrap();\n}\n",
        )]);
        let graph = ItemGraph::build(&at_decl);
        assert!(run(&at_decl, &graph, &cfg()).is_empty());
    }

    #[test]
    fn lexical_unwrap_allow_does_not_silence() {
        let ws = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "pub fn entry(o: Option<u32>) {\n    // sor-check: allow(unwrap) — invariant documented\n    o.unwrap();\n}\n",
        )]);
        let graph = ItemGraph::build(&ws);
        assert_eq!(run(&ws, &graph, &cfg()).len(), 1);
    }

    #[test]
    fn indexing_only_when_configured() {
        let text = "pub fn entry(v: &[u32]) -> u32 {\n    v[0]\n}\n";
        let ws1 = ws(&[("crates/flow/src/a.rs", "sor-flow", text)]);
        let graph = ItemGraph::build(&ws1);
        assert!(run(&ws1, &graph, &cfg()).is_empty());
        let mut with_idx = cfg();
        with_idx.panic_include_indexing = true;
        assert_eq!(run(&ws1, &graph, &with_idx).len(), 1);
    }
}
