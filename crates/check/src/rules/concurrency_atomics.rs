//! `atomics`: orderings are minimal, justified, and consistent.
//!
//! Inventories every `Ordering::*` token in the audited crates
//! (`check.toml [concurrency] crates`), attributes it to the atomic
//! field it acts on (walking up a few lines for multi-line
//! `compare_exchange` calls), and fires three variants:
//!
//! - **counter** — `fetch_add`/`fetch_sub` with anything stronger than
//!   `Relaxed`: a pure counter needs no synchronization edges, so a
//!   stronger ordering must carry an `allow(atomics)` justification.
//! - **seqcst** — `SeqCst` on any other op: the lazy default is almost
//!   never the *chosen* one; pick the weakest correct ordering or
//!   justify it.
//! - **mixed** — one field accessed with an inconsistent ordering set.
//!   The classic release/acquire publish pair (`{Acquire, Release}`) is
//!   exempt; anything else (e.g. a `Release` store polled by a
//!   `Relaxed` load) gets a witness listing every access site.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::graph::Workspace;
use crate::report::Finding;

use super::allows;
use super::concurrency::receiver_before;

/// The five ordering variants, as they appear after `Ordering::`.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic op tokens, longest-match-first so `compare_exchange_weak`
/// wins over `compare_exchange`.
const OPS: [&str; 12] = [
    ".compare_exchange_weak(",
    ".compare_exchange(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".load(",
    ".store(",
    ".swap(",
];

/// Ops that implement pure counters.
const COUNTER_OPS: [&str; 2] = [".fetch_add(", ".fetch_sub("];

/// One `Ordering::*` use: which field, which op, which ordering, where.
struct Site {
    file: usize,
    line: usize,
    field: String,
    op: String,
    ordering: String,
    counter: bool,
}

/// Run the atomics audit.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    if cfg.concurrency_crates.is_empty() {
        return Vec::new();
    }
    let mut sites: Vec<Site> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !cfg.concurrency_crates.iter().any(|c| c == &file.krate) {
            continue;
        }
        for (idx, s) in file.stripped.iter().enumerate() {
            if file.in_test[idx] || !s.contains("Ordering::") {
                continue;
            }
            let orderings: Vec<&str> = s
                .match_indices("Ordering::")
                .filter_map(|(pos, _)| {
                    let rest = &s[pos + "Ordering::".len()..];
                    ORDERINGS.iter().find(|o| {
                        rest.starts_with(**o)
                            && !rest[o.len()..]
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                    })
                })
                .copied()
                .collect();
            if orderings.is_empty() {
                continue;
            }
            // The op may sit on this line or (multi-line call) above it.
            let Some((op_idx, op, op_pos)) =
                (0..=idx.min(5)).map(|back| idx - back).find_map(|j| {
                    let l = &file.stripped[j];
                    OPS.iter().find_map(|op| l.find(op).map(|p| (j, *op, p)))
                })
            else {
                continue;
            };
            let field = receiver_before(&file.stripped[op_idx], op_pos)
                .unwrap_or_else(|| "<unknown>".to_string());
            for o in orderings {
                sites.push(Site {
                    file: fi,
                    line: idx + 1,
                    field: format!("{}/{}", file.krate, field),
                    op: op.trim_start_matches('.').trim_end_matches('(').to_string(),
                    ordering: o.to_string(),
                    counter: COUNTER_OPS.contains(&op),
                });
            }
        }
    }

    let mut out = Vec::new();
    // Per-site variants.
    for s in &sites {
        let file = &ws.files[s.file];
        if allows(file, s.line, "atomics") {
            continue;
        }
        if s.counter && s.ordering != "Relaxed" {
            out.push(Finding {
                rule: "atomics".into(),
                file: file.rel.clone(),
                line: s.line,
                symbol: format!("{}:{}:counter", s.field, s.op),
                message: format!(
                    "atomic counter `{}` uses Ordering::{} on .{}(..) — Relaxed \
                     suffices for a pure counter; justify a stronger ordering with \
                     allow(atomics)",
                    s.field, s.ordering, s.op
                ),
                witness: Vec::new(),
            });
        } else if s.ordering == "SeqCst" {
            out.push(Finding {
                rule: "atomics".into(),
                file: file.rel.clone(),
                line: s.line,
                symbol: format!("{}:{}:seqcst", s.field, s.op),
                message: format!(
                    "Ordering::SeqCst on `{}`.{}(..) — SeqCst-by-default is a smell; \
                     pick the weakest correct ordering or justify with allow(atomics)",
                    s.field, s.op
                ),
                witness: Vec::new(),
            });
        }
    }
    // Per-field consistency.
    let mut by_field: BTreeMap<&str, Vec<&Site>> = BTreeMap::new();
    for s in &sites {
        by_field.entry(s.field.as_str()).or_default().push(s);
    }
    for (field, group) in by_field {
        let mut set: Vec<&str> = group.iter().map(|s| s.ordering.as_str()).collect();
        set.sort_unstable();
        set.dedup();
        if set.len() < 2 || set == ["Acquire", "Release"] {
            continue;
        }
        let anchor = group[0];
        let file = &ws.files[anchor.file];
        if allows(file, anchor.line, "atomics") {
            continue;
        }
        let witness: Vec<String> = group
            .iter()
            .map(|s| {
                format!(
                    "Ordering::{} on .{}(..) at {}:{}",
                    s.ordering,
                    s.op,
                    ws.files[s.file].rel.display(),
                    s.line
                )
            })
            .collect();
        out.push(Finding {
            rule: "atomics".into(),
            file: file.rel.clone(),
            line: anchor.line,
            symbol: format!("{field}:mixed"),
            message: format!(
                "atomic field `{}` is accessed with mixed orderings ({}) — unify \
                 them or document the protocol with allow(atomics)",
                field,
                set.join(", ")
            ),
            witness,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg() -> Config {
        Config::parse("[concurrency]\ncrates = [\"sor-core\"]\n").expect("cfg")
    }

    fn findings(text: &str) -> Vec<Finding> {
        let mut ws = Workspace::default();
        ws.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        run(&ws, &cfg())
    }

    #[test]
    fn relaxed_counter_is_clean() {
        let fs =
            findings("pub fn bump(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn seqcst_counter_fires_counter_variant() {
        let fs = findings(
            "pub fn bump(c: &AtomicU64) {\n    self.events.fetch_add(1, Ordering::SeqCst);\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].symbol, "sor-core/events:fetch_add:counter");
    }

    #[test]
    fn seqcst_load_fires_seqcst_variant() {
        let fs = findings("pub fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::SeqCst)\n}\n");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].symbol, "sor-core/c:load:seqcst");
    }

    #[test]
    fn mixed_orderings_fire_with_witness() {
        let fs = findings(
            "pub fn publish(f: &S) {\n    f.ready.store(1, Ordering::Release);\n}\npub fn poll(f: &S) -> u64 {\n    f.ready.load(Ordering::Relaxed)\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].symbol, "sor-core/ready:mixed");
        assert_eq!(fs[0].witness.len(), 2, "{:?}", fs[0].witness);
    }

    #[test]
    fn release_acquire_pair_is_exempt() {
        let fs = findings(
            "pub fn publish(f: &S) {\n    f.ready.store(1, Ordering::Release);\n}\npub fn poll(f: &S) -> u64 {\n    f.ready.load(Ordering::Acquire)\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn multiline_compare_exchange_attributes_the_field() {
        let fs = findings(
            "pub fn cas(f: &S) {\n    f.epoch.compare_exchange(\n        0,\n        1,\n        Ordering::SeqCst,\n        Ordering::SeqCst,\n    );\n}\n",
        );
        // two SeqCst orderings, one op, one field — two seqcst sites
        // (deduped to one fingerprint downstream) plus no mixed finding.
        assert!(fs
            .iter()
            .all(|f| f.symbol == "sor-core/epoch:compare_exchange:seqcst"));
        assert!(!fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn allow_at_site_suppresses() {
        let fs = findings(
            "pub fn f(c: &AtomicU64) -> u64 {\n    // sor-check: allow(atomics) — epoch flip must be totally ordered\n    c.load(Ordering::SeqCst)\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
