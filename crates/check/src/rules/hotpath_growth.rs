//! `growth-without-capacity`: collections grown in a loop must be
//! pre-sized.
//!
//! Within every function of a hot tree, a local constructed with a
//! growable default constructor (`Vec::new()`, `vec![]`,
//! `String::new()`, `HashMap::new()`, ...) and then `.push(..)` /
//! `.insert(..)` / `.push_str(..)`-ed at a strictly deeper lexical loop
//! depth than its construction pays repeated reallocation on the hot
//! path — construct it `with_capacity` (or `reserve` up front) instead.
//! Intra-function and lexical by design: the interprocedural story is
//! `alloc-in-hot`'s job.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::{body_spans, ident_after_let, loop_depths};
use crate::report::Finding;

use super::allows;
use super::hotpath::Hot;

/// Constructors of growable collections that support pre-sizing.
const GROWABLE_CTORS: [&str; 6] = [
    "Vec::new(",
    "vec![]",
    "String::new(",
    "HashMap::new(",
    "HashSet::new(",
    "VecDeque::new(",
];

/// Growth methods whose amortized cost a capacity hint removes.
const GROW_CALLS: [&str; 3] = [".push(", ".insert(", ".push_str("];

/// Run the growth-without-capacity rule.
pub fn run(ws: &Workspace, graph: &ItemGraph, hot: &Hot, cfg: &Config) -> Vec<Finding> {
    let _ = cfg;
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    // (file, item) → body span, for files that host hot-tree fns.
    let mut spans_of: Vec<Option<std::collections::BTreeMap<usize, (usize, usize)>>> =
        vec![None; ws.files.len()];
    for (f, fref) in graph.fns.iter().enumerate() {
        if !hot.in_tree[f] {
            continue;
        }
        let file = &ws.files[fref.file];
        let item = &file.items[fref.item];
        if allows(file, item.line, "growth-without-capacity") {
            continue;
        }
        let spans = spans_of[fref.file].get_or_insert_with(|| {
            body_spans(file)
                .into_iter()
                .map(|(i, o, c)| (i, (o, c)))
                .collect()
        });
        let Some(&(open, close)) = spans.get(&fref.item) else {
            continue;
        };
        let depth = loop_depths(&file.stripped);
        // Locals constructed without capacity: (name, 1-based decl line).
        let mut locals: Vec<(String, usize)> = Vec::new();
        for idx in (open - 1)..close.min(file.stripped.len()) {
            let s = &file.stripped[idx];
            let t = s.trim_start();
            if !t.starts_with("let ") || !GROWABLE_CTORS.iter().any(|c| s.contains(c)) {
                continue;
            }
            if let Some(name) = ident_after_let(t) {
                locals.push((name, idx + 1));
            }
        }
        for (name, decl_line) in locals {
            for idx in (decl_line)..close.min(file.stripped.len()) {
                let s = &file.stripped[idx];
                let line_no = idx + 1;
                let hit = GROW_CALLS
                    .iter()
                    .find(|c| s.contains(&format!("{name}{c}")));
                let Some(grow) = hit else { continue };
                if depth[idx] <= depth[decl_line - 1] {
                    continue; // same loop level as the construction
                }
                if allows(file, line_no, "growth-without-capacity") {
                    continue;
                }
                if !seen.insert((fref.file, fref.item, name.clone())) {
                    break;
                }
                let fn_path = graph.fn_path(ws, f);
                let shown = grow.trim_matches(['.', '(']);
                out.push(Finding {
                    rule: "growth-without-capacity".into(),
                    file: file.rel.clone(),
                    line: line_no,
                    symbol: format!("{fn_path}:{name}"),
                    message: format!(
                        "`{}` is grown with `.{}(..)` inside a loop but constructed \
                         without `with_capacity` in `{}` (hot tree) — pre-size it to \
                         avoid repeated reallocation",
                        name, shown, fn_path
                    ),
                    witness: vec![
                        format!(
                            "`{}` constructed without capacity at {}:{}",
                            name,
                            file.rel.display(),
                            decl_line
                        ),
                        format!(
                            "`{}.{}(..)` in a loop at {}:{} (loop depth {})",
                            name,
                            shown,
                            file.rel.display(),
                            line_no,
                            depth[idx]
                        ),
                    ],
                });
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::concurrency::Model;
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn findings(text: &str) -> Vec<Finding> {
        let mut w = Workspace::default();
        w.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        let cfg = Config::parse("[hotpath]\nentries = [\"entry\"]\n").expect("cfg");
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg);
        let hot = Hot::build(&w, &graph, &model, &cfg);
        run(&w, &graph, &hot, &cfg)
    }

    #[test]
    fn push_in_loop_without_capacity_is_flagged() {
        let fs = findings(
            "pub fn entry(n: usize) -> Vec<usize> {\n    let mut out = Vec::new();\n    for i in 0..n {\n        out.push(i);\n    }\n    out\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].symbol.ends_with("entry:out"), "{}", fs[0].symbol);
        assert_eq!(fs[0].witness.len(), 2, "{:?}", fs[0].witness);
    }

    #[test]
    fn with_capacity_is_clean() {
        let fs = findings(
            "pub fn entry(n: usize) -> Vec<usize> {\n    let mut out = Vec::with_capacity(n);\n    for i in 0..n {\n        out.push(i);\n    }\n    out\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn per_iteration_local_is_clean() {
        // `v` is rebuilt each iteration and pushed at its own loop
        // level: not repeated growth of one collection.
        let fs = findings(
            "pub fn entry(n: usize) {\n    for i in 0..n {\n        let mut v = Vec::new();\n        v.push(i);\n        let _ = v;\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
