//! `clone-in-loop`: no `.clone()` at loop depth ≥ 1 in a hot tree.
//!
//! A clone duplicates its receiver's heap storage; doing so once per
//! loop iteration — counting loops across function boundaries via the
//! hot tree's chain depth, so a depth-0 clone inside a helper called
//! from a loop still counts — is the single most common way the
//! ROADMAP-2 hot paths (FRT embedding, `sample_k`, the MWU oracle) go
//! quadratic in practice. The fix is almost always a borrow,
//! `std::mem::take`, or an `Arc` share.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::AllocKind;
use crate::report::Finding;

use super::allows;
use super::hotpath::{witness_to, Hot};

/// Run the clone-in-loop rule.
pub fn run(ws: &Workspace, graph: &ItemGraph, hot: &Hot, cfg: &Config) -> Vec<Finding> {
    let _ = cfg;
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for tree in &hot.trees {
        for (f, fref) in graph.fns.iter().enumerate() {
            if !tree.reached[f] {
                continue;
            }
            let file = &ws.files[fref.file];
            let item = &file.items[fref.item];
            if allows(file, item.line, "clone-in-loop") {
                continue;
            }
            // Deepest unallowed clone per receiver label.
            let mut deepest: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // label → (eff, line)
            for a in &item.facts.allocs {
                if a.kind != AllocKind::Clone {
                    continue;
                }
                let eff = tree.chain_depth[f].max(a.depth);
                if eff < 1 || allows(file, a.line, "clone-in-loop") {
                    continue;
                }
                let label = a.recv.clone().unwrap_or_else(|| "<expr>".to_string());
                let e = deepest.entry(label).or_insert((eff, a.line));
                if eff > e.0 {
                    *e = (eff, a.line);
                }
            }
            for (label, (eff, line)) in deepest {
                if !seen.insert((fref.file, fref.item, label.clone())) {
                    continue;
                }
                let fn_path = graph.fn_path(ws, f);
                let witness = witness_to(
                    ws,
                    graph,
                    tree,
                    f,
                    &format!(
                        "`{}.clone()` at {}:{} (loop depth {})",
                        label,
                        file.rel.display(),
                        line,
                        eff
                    ),
                );
                out.push(Finding {
                    rule: "clone-in-loop".into(),
                    file: file.rel.clone(),
                    line,
                    symbol: format!("{fn_path}:{label}.clone"),
                    message: format!(
                        "`{}.clone()` runs at effective loop depth {} in `{}`, on the \
                         hot path of `{}` — borrow, `std::mem::take`, or share via \
                         `Arc` instead of cloning per iteration",
                        label, eff, fn_path, tree.spec
                    ),
                    witness,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::concurrency::Model;
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn findings(text: &str) -> Vec<Finding> {
        let mut w = Workspace::default();
        w.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        let cfg = Config::parse("[hotpath]\nentries = [\"entry\"]\n").expect("cfg");
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg);
        let hot = Hot::build(&w, &graph, &model, &cfg);
        run(&w, &graph, &hot, &cfg)
    }

    #[test]
    fn lexical_clone_in_loop_is_flagged() {
        let fs = findings(
            "pub fn entry(xs: &[X]) {\n    for x in xs {\n        let y = x.clone();\n        let _ = y;\n    }\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].symbol.ends_with("entry:x.clone"), "{}", fs[0].symbol);
    }

    #[test]
    fn helper_clone_under_caller_loop_is_flagged() {
        let fs = findings(
            "pub fn entry(xs: &[X]) {\n    for x in xs {\n        helper(x);\n    }\n}\nfn helper(x: &X) {\n    let y = x.clone();\n    let _ = y;\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].symbol.ends_with("helper:x.clone"), "{}", fs[0].symbol);
    }

    #[test]
    fn clone_outside_any_loop_is_clean() {
        let fs = findings("pub fn entry(x: &X) {\n    let y = x.clone();\n    let _ = y;\n}\n");
        assert!(fs.is_empty(), "{fs:?}");
    }
}
