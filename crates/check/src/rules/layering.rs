//! `layering`: enforce the crate DAG declared in `check.toml [layers]`.
//!
//! Compact-routing systems live or die by what state each layer may
//! depend on (cf. Räcke–Schmid's compact oblivious routing, where the
//! scheme is *defined* by the information a node is allowed to hold);
//! this workspace's equivalent is the crate order `sor-graph →
//! sor-flow/sor-oblivious → sor-core → sor-te`. The rule scans every
//! analyzed line for references to workspace crates (`sor_flow::...`)
//! and reports any reference outside the transitive closure of the
//! declared direct dependencies. Undeclared crates are reported too, so
//! a new crate cannot ride outside the DAG by omission.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::graph::Workspace;
use crate::report::Finding;

use super::allows;

/// Run the layering rule.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    if cfg.layers.is_empty() {
        return Vec::new();
    }
    // underscore token → declared crate name
    let tokens: BTreeMap<String, &str> = cfg
        .layers
        .keys()
        .map(|k| (k.replace('-', "_"), k.as_str()))
        .collect();

    let mut out = Vec::new();
    let mut undeclared_reported: BTreeSet<&str> = BTreeSet::new();
    // (file, offending crate) pairs already reported — one finding per
    // file per illegal edge keeps reports readable.
    let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();

    for (fi, file) in ws.files.iter().enumerate() {
        let krate = file.krate.as_str();
        let Some(allowed) = cfg.allowed_deps(krate) else {
            if undeclared_reported.insert(krate) {
                out.push(Finding {
                    rule: "layering".into(),
                    file: file.rel.clone(),
                    line: 1,
                    symbol: krate.to_string(),
                    message: format!(
                        "crate `{krate}` is not declared in check.toml [layers]; every \
                         workspace crate must name its allowed dependencies"
                    ),
                    witness: Vec::new(),
                });
            }
            continue;
        };
        for (idx, s) in file.stripped.iter().enumerate() {
            if file.in_test[idx] {
                continue;
            }
            for token in idents(s) {
                let Some(&dep) = tokens.get(&token) else {
                    continue;
                };
                if dep == krate || allowed.iter().any(|a| a == dep) {
                    continue;
                }
                if allows(file, idx + 1, "layering") {
                    continue;
                }
                if !seen.insert((fi, dep)) {
                    continue;
                }
                out.push(Finding {
                    rule: "layering".into(),
                    file: file.rel.clone(),
                    line: idx + 1,
                    symbol: format!("{krate} -> {dep}"),
                    message: format!(
                        "`{krate}` may not reference `{dep}` (declared deps: {}); the \
                         crate DAG in check.toml is the layering contract",
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                    witness: Vec::new(),
                });
            }
        }
    }
    out
}

/// All identifier tokens of a stripped line.
fn idents(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars().chain(std::iter::once(' ')) {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg() -> Config {
        Config::parse("[layers]\n\"sor-graph\" = []\n\"sor-core\" = [\"sor-graph\"]\n")
            .expect("cfg")
    }

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, krate, text) in files {
            ws.files.push(parse_file(Path::new(rel), krate, text));
        }
        ws
    }

    #[test]
    fn upward_reference_is_flagged_once_per_file() {
        let ws = ws(&[(
            "crates/graph/src/lib.rs",
            "sor-graph",
            "use sor_core::Thing;\nfn f() { sor_core::other(); }\n",
        )]);
        let fs = run(&ws, &cfg());
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].symbol, "sor-graph -> sor-core");
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn declared_dependency_is_fine() {
        let ws = ws(&[(
            "crates/core/src/lib.rs",
            "sor-core",
            "use sor_graph::Graph;\n",
        )]);
        assert!(run(&ws, &cfg()).is_empty());
    }

    #[test]
    fn undeclared_crate_is_reported() {
        let ws = ws(&[("crates/new/src/lib.rs", "sor-new", "fn f() {}\n")]);
        let fs = run(&ws, &cfg());
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("not declared"));
    }

    #[test]
    fn allow_comment_suppresses() {
        let ws = ws(&[(
            "crates/graph/src/lib.rs",
            "sor-graph",
            "// sor-check: allow(layering) — doc example referencing the stack above\nuse sor_core::Thing;\n",
        )]);
        assert!(run(&ws, &cfg()).is_empty());
    }

    #[test]
    fn no_config_no_findings() {
        let ws = ws(&[(
            "crates/graph/src/lib.rs",
            "sor-graph",
            "use sor_core::Thing;\n",
        )]);
        assert!(run(&ws, &Config::default()).is_empty());
    }
}
