//! `lock-order`: the lock-acquisition-order graph must be a DAG.
//!
//! The shared [`Model`] extracts every `parking_lot`-style acquisition
//! site (`.lock()`, argument-less `.read()`/`.write()`) from functions
//! of the crates listed in `check.toml [concurrency] crates`, tracks
//! each guard's *lexical* scope, and closes the set of locks each
//! function may (transitively) acquire over the call graph. The
//! lock-order rule then records an edge `A → B` whenever `B` can be
//! acquired while a guard for `A` is live — either by a nested
//! acquisition in the same body or through a call made under the guard
//! — and reports a shortest witness cycle for every strongly-connected
//! tangle, i.e. every potential deadlock.
//!
//! Guard-scope heuristics (documented over-approximations):
//! - `let g = x.lock();` — live until the enclosing block closes or an
//!   explicit `drop(g)`.
//! - `for`/`while`/`if`/`match` header acquisitions — live until the
//!   construct's block closes (matches the Rust 2021 `if let`/`match`
//!   scrutinee temporary; plain-`if` conditions are over-approximated).
//! - any other chained temporary — live until the statement's `;`.
//!
//! Lock identity is `{crate}/{receiver-field}` — `self.cache.lock()` in
//! `sor-hop` is the lock `sor-hop/cache`. Sharded locks collapse onto
//! one identity per field, so a self-edge means "acquired while a guard
//! for the same lock (or a sibling shard) may be held".

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
pub(crate) use crate::items::receiver_before;
use crate::items::{body_spans, SourceFile};
use crate::report::Finding;

use super::allows;

/// Acquisition tokens. `.read()`/`.write()` are matched only with empty
/// argument lists, which filters out `io::Read`/`io::Write` calls.
pub(crate) const ACQUIRE_TOKENS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Is the call named `name` at `line` guard machinery rather than an
/// ordinary call? `drop` always is (it ends guard scopes); `lock` /
/// `read` / `write` only when the line carries a recorded acquisition
/// via the same method — so `w.write(buf)` / `out.flush()` stay
/// ordinary calls the held-lock rule may flag as expensive, while the
/// argument-less `.write()` RwLock acquisition itself is not its own
/// "expensive call under guard".
pub(crate) fn is_guard_call(acquires: &[Acquire], name: &str, line: usize) -> bool {
    if name == "drop" {
        return true;
    }
    ["lock", "read", "write"].contains(&name)
        && acquires.iter().any(|a| a.line == line && a.via == name)
}

/// One lexical lock-acquisition site inside a function body.
#[derive(Clone, Debug)]
pub struct Acquire {
    /// Lock identity, `{crate}/{receiver}`.
    pub lock: String,
    /// 1-based acquisition line.
    pub line: usize,
    /// Byte column of the acquisition token on that line.
    pub col: usize,
    /// 1-based last line on which the guard may still be live.
    pub scope_end: usize,
    /// Acquisition method name (`lock` / `read` / `write`), used to
    /// tell the acquisition call apart from same-named ordinary calls.
    pub via: String,
}

/// Lock facts shared by the concurrency rules.
#[derive(Debug)]
pub struct Model {
    /// `acquires[g]` — acquisition sites of `graph.fns[g]`, source order.
    pub acquires: Vec<Vec<Acquire>>,
    /// Locks function `g` may acquire, transitively over call edges.
    pub reach: Vec<BTreeSet<String>>,
    /// `graph.calls` filtered through the `[layers]` closure: name
    /// resolution over-approximates at the workspace tier, but an edge
    /// into a crate the caller may not even reference (e.g. an atomic
    /// `.load(..)` resolving to another crate's `Config::load`) is an
    /// artifact, not a call — the concurrency rules traverse this view.
    pub calls: Vec<Vec<usize>>,
}

impl Model {
    /// Extract acquisition sites and close them over the call graph.
    pub fn build(ws: &Workspace, graph: &ItemGraph, cfg: &Config) -> Model {
        let n = graph.fns.len();
        let mut closures: BTreeMap<&str, Option<BTreeSet<String>>> = BTreeMap::new();
        let calls: Vec<Vec<usize>> = graph
            .calls
            .iter()
            .enumerate()
            .map(|(g, cs)| {
                let gk = ws.files[graph.fns[g].file].krate.as_str();
                let allowed = closures
                    .entry(gk)
                    .or_insert_with(|| cfg.allowed_deps(gk).map(|v| v.into_iter().collect()));
                cs.iter()
                    .copied()
                    .filter(|&k| {
                        let kk = ws.files[graph.fns[k].file].krate.as_str();
                        kk == gk || allowed.as_ref().is_none_or(|s| s.contains(kk))
                    })
                    .collect()
            })
            .collect();
        let mut acquires: Vec<Vec<Acquire>> = vec![Vec::new(); n];
        if cfg.concurrency_crates.is_empty() {
            return Model {
                acquires,
                reach: vec![BTreeSet::new(); n],
                calls,
            };
        }
        // (file, item) → 1-based body span, for audited crates only.
        let mut span_of: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if !cfg.concurrency_crates.iter().any(|c| c == &file.krate) {
                continue;
            }
            for (item, open, close) in body_spans(file) {
                span_of.insert((fi, item), (open, close));
            }
        }
        for (g, fref) in graph.fns.iter().enumerate() {
            if let Some(&(open, close)) = span_of.get(&(fref.file, fref.item)) {
                acquires[g] = scan_body(&ws.files[fref.file], open, close);
            }
        }
        // Fixpoint: reach[g] = direct(g) ∪ ⋃ reach[callee].
        let mut reach: Vec<BTreeSet<String>> = acquires
            .iter()
            .map(|a| a.iter().map(|x| x.lock.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for g in 0..n {
                for &k in &calls[g] {
                    let add: Vec<String> = reach[k]
                        .iter()
                        .filter(|l| !reach[g].contains(l.as_str()))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        reach[g].extend(add);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Model {
            acquires,
            reach,
            calls,
        }
    }
}

/// Per-line brace depth of `lines`: `(before, after)` each line.
fn depths(lines: &[String]) -> (Vec<i32>, Vec<i32>) {
    let mut before = Vec::with_capacity(lines.len());
    let mut after = Vec::with_capacity(lines.len());
    let mut d = 0i32;
    for s in lines {
        before.push(d);
        for c in s.chars() {
            match c {
                '{' => d += 1,
                '}' => d -= 1,
                _ => {}
            }
        }
        after.push(d);
    }
    (before, after)
}

/// Scan the 1-based body span `[open, close]` for acquisitions.
fn scan_body(file: &SourceFile, open: usize, close: usize) -> Vec<Acquire> {
    let (before, after) = depths(&file.stripped);
    let mut out = Vec::new();
    for idx in (open - 1)..close.min(file.stripped.len()) {
        let s = file.stripped[idx].clone();
        for tok in ACQUIRE_TOKENS {
            for (pos, _) in s.match_indices(tok) {
                let recv = receiver_before(&s, pos).or_else(|| {
                    // `.lock()` opening a chain line: receiver is the
                    // previous non-blank line's trailing identifier.
                    file.stripped[(open - 1)..idx]
                        .iter()
                        .rev()
                        .find(|l| !l.trim().is_empty())
                        .and_then(|l| {
                            let t = l.trim_end();
                            receiver_before(t, t.len())
                        })
                });
                let Some(recv) = recv else { continue };
                let scope_end = guard_scope(file, &before, &after, idx, pos, close - 1);
                out.push(Acquire {
                    lock: format!("{}/{}", file.krate, recv),
                    line: idx + 1,
                    col: pos,
                    scope_end: scope_end + 1,
                    via: tok.trim_matches(['.', '(', ')']).to_string(),
                });
            }
        }
    }
    out
}

/// 0-based last line the guard acquired at `(l0, col)` may live.
fn guard_scope(
    file: &SourceFile,
    before: &[i32],
    after: &[i32],
    l0: usize,
    col: usize,
    fn_close: usize,
) -> usize {
    let lines = &file.stripped;
    let s = &lines[l0];
    let t = s.trim_start();
    let in_header = ["for ", "while ", "if ", "match "]
        .iter()
        .any(|k| t.starts_with(k))
        && s.find('{').is_none_or(|b| b > col);
    let base = before[l0];
    if in_header {
        // Until the construct's block closes (scrutinee-temporary rule).
        let mut opened = after[l0] > base;
        if !opened && s.contains('{') && s.contains('}') {
            return l0;
        }
        for m in (l0 + 1)..=fn_close.min(lines.len().saturating_sub(1)) {
            if before[m] > base || after[m] > base {
                opened = true;
            }
            if opened && after[m] <= base {
                return m;
            }
        }
        return fn_close;
    }
    if let Some(rest) = t.strip_prefix("let ") {
        // Named guard: until enclosing block close or explicit drop.
        let name: String = rest
            .trim_start()
            .trim_start_matches("mut ")
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        for m in (l0 + 1)..=fn_close.min(lines.len().saturating_sub(1)) {
            if !name.is_empty() && lines[m].contains(&format!("drop({name})")) {
                return m;
            }
            if after[m] < base {
                return m;
            }
        }
        return fn_close;
    }
    // Chained temporary: until the statement's `;` or block close.
    for m in l0..=fn_close.min(lines.len().saturating_sub(1)) {
        let rest = if m == l0 { &lines[m][col..] } else { &lines[m] };
        if rest.contains(';') {
            return m;
        }
        if after[m] < base {
            return m;
        }
    }
    fn_close
}

/// Does `line` call `name` (a `name(` occurrence) strictly after `col`?
pub(crate) fn call_after_col(line: &str, name: &str, col: usize) -> bool {
    let pat = format!("{name}(");
    for (pos, _) in line.match_indices(&pat) {
        let boundary = pos == 0
            || !line.as_bytes()[pos - 1].is_ascii_alphanumeric()
                && line.as_bytes()[pos - 1] != b'_';
        if boundary && pos > col {
            return true;
        }
    }
    false
}

/// One lock-order edge `from → to` with its establishing site.
#[derive(Clone, Debug)]
struct Edge {
    /// Function (graph index) whose body establishes the edge.
    g: usize,
    /// 1-based line of the nested acquisition or the call under guard.
    line: usize,
    /// Call chain below `g` reaching the direct acquirer (interprocedural
    /// edges only), as graph fn indices.
    via: Vec<usize>,
}

/// Run the lock-order rule: every cycle in the edge set is a finding.
pub fn run(ws: &Workspace, graph: &ItemGraph, model: &Model, cfg: &Config) -> Vec<Finding> {
    if cfg.concurrency_crates.is_empty() {
        return Vec::new();
    }
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (g, fref) in graph.fns.iter().enumerate() {
        let file = &ws.files[fref.file];
        let item = &file.items[fref.item];
        for a in &model.acquires[g] {
            // Nested acquisition in the same body.
            for b in &model.acquires[g] {
                if (b.line, b.col) > (a.line, a.col) && b.line <= a.scope_end {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert(Edge {
                            g,
                            line: b.line,
                            via: Vec::new(),
                        });
                }
            }
            // Locks reached through calls made while the guard is live.
            for call in &item.calls {
                if call.line < a.line
                    || call.line > a.scope_end
                    || is_guard_call(&model.acquires[g], &call.name, call.line)
                {
                    continue;
                }
                if call.line == a.line
                    && !call_after_col(&file.stripped[a.line - 1], &call.name, a.col)
                {
                    continue;
                }
                for &k in &model.calls[g] {
                    let kf = graph.fns[k];
                    if ws.files[kf.file].items[kf.item].name != call.name {
                        continue;
                    }
                    for l2 in &model.reach[k] {
                        let via = chain_to_lock(ws, graph, model, k, l2);
                        edges.entry((a.lock.clone(), l2.clone())).or_insert(Edge {
                            g,
                            line: call.line,
                            via,
                        });
                    }
                }
            }
        }
    }

    // Adjacency for cycle search.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (u, v) in edges.keys() {
        adj.entry(u.as_str()).or_default().insert(v.as_str());
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (u, v) in edges.keys() {
        let Some(cycle) = cycle_through(&adj, u, v) else {
            continue;
        };
        // Canonical rotation: start at the smallest lock name.
        let min = cycle
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.as_str())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let canon: Vec<String> = (0..cycle.len())
            .map(|i| cycle[(min + i) % cycle.len()].clone())
            .collect();
        let key = canon.join("→");
        if !seen.insert(key.clone()) {
            continue;
        }
        // Edges of the cycle, wrapped.
        let cycle_edges: Vec<(&String, &String, &Edge)> = (0..canon.len())
            .map(|i| {
                let a = &canon[i];
                let b = &canon[(i + 1) % canon.len()];
                (a, b, &edges[&(a.clone(), b.clone())])
            })
            .collect();
        // An allow on any establishing site (or its fn decl) breaks the
        // cycle for reporting purposes.
        let allowed = cycle_edges.iter().any(|(_, _, e)| {
            let fref = graph.fns[e.g];
            let file = &ws.files[fref.file];
            allows(file, e.line, "lock-order")
                || allows(file, file.items[fref.item].line, "lock-order")
        });
        if allowed {
            continue;
        }
        let witness: Vec<String> = cycle_edges
            .iter()
            .map(|(a, b, e)| {
                let fref = graph.fns[e.g];
                let file = &ws.files[fref.file];
                let mut w = format!(
                    "{a} → {b} in {} ({}:{})",
                    graph.fn_path(ws, e.g),
                    file.rel.display(),
                    e.line
                );
                if !e.via.is_empty() {
                    let chain: Vec<String> = e.via.iter().map(|&x| graph.fn_path(ws, x)).collect();
                    w.push_str(&format!(" via {}", chain.join(" → ")));
                }
                w
            })
            .collect();
        let (_, _, anchor) = cycle_edges[0];
        let afile = &ws.files[graph.fns[anchor.g].file];
        let message = if canon.len() == 1 {
            format!(
                "lock `{}` may be acquired while a guard for it is already live \
                 in `{}` — parking_lot locks are not reentrant; order shard \
                 indices or narrow the guard",
                canon[0],
                graph.fn_path(ws, anchor.g),
            )
        } else {
            format!(
                "inconsistent lock order: {} → {} — acquire these locks in one \
                 global order or drop a guard before crossing",
                canon.join(" → "),
                canon[0],
            )
        };
        out.push(Finding {
            rule: "lock-order".into(),
            file: afile.rel.clone(),
            line: anchor.line,
            symbol: key,
            message,
            witness,
        });
    }
    out
}

/// Shortest path `v → … → u` in the lock graph, returned as the cycle
/// node list `[u, v, …]` (without the closing repeat); `None` if `u` is
/// unreachable from `v`. `u == v` is the self-edge cycle `[u]`.
fn cycle_through(adj: &BTreeMap<&str, BTreeSet<&str>>, u: &str, v: &str) -> Option<Vec<String>> {
    if u == v {
        return Some(vec![u.to_string()]);
    }
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        if x == u {
            let mut path = vec![u.to_string()];
            let mut cur = u;
            while cur != v {
                cur = parent[cur];
                path.push(cur.to_string());
            }
            path.reverse(); // v … u
            let mut cycle = vec![u.to_string()];
            cycle.extend(path.into_iter().take_while(|n| n != u));
            return Some(cycle);
        }
        for &y in adj.get(x).into_iter().flatten() {
            if y != v && !parent.contains_key(y) {
                parent.insert(y, x);
                queue.push_back(y);
            }
        }
    }
    None
}

/// BFS from `start` to the nearest function that *directly* acquires
/// `lock`; returns the fn chain `[start, …, acquirer]`.
pub(crate) fn chain_to_lock(
    ws: &Workspace,
    graph: &ItemGraph,
    model: &Model,
    start: usize,
    lock: &str,
) -> Vec<usize> {
    let _ = ws;
    let mut parent: Vec<Option<usize>> = vec![None; graph.fns.len()];
    let mut visited = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(x) = queue.pop_front() {
        if model.acquires[x].iter().any(|a| a.lock == lock) {
            let mut chain = vec![x];
            let mut cur = x;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return chain;
        }
        for &y in &model.calls[x] {
            if !visited[y] {
                visited[y] = true;
                parent[y] = Some(x);
                queue.push_back(y);
            }
        }
    }
    vec![start]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg() -> Config {
        Config::parse("[concurrency]\ncrates = [\"sor-core\"]\n").expect("cfg")
    }

    fn ws(text: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        ws
    }

    #[test]
    fn receiver_walks_back_over_groups() {
        assert_eq!(
            receiver_before("self.shards[i].lock()", 14).as_deref(),
            Some("shards")
        );
        assert_eq!(receiver_before("x.lock()", 1).as_deref(), Some("x"));
        assert_eq!(receiver_before(".lock()", 0), None);
    }

    #[test]
    fn nested_guards_make_an_edge_and_inversion_cycles() {
        let ws = ws(
            "pub struct P;\nimpl P {\n    pub fn ab(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n    pub fn ba(&self) {\n        let b = self.beta.lock();\n        let a = self.alpha.lock();\n    }\n}\n",
        );
        let graph = ItemGraph::build(&ws);
        let model = Model::build(&ws, &graph, &cfg());
        let fs = run(&ws, &graph, &model, &cfg());
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].symbol, "sor-core/alpha→sor-core/beta");
        assert_eq!(fs[0].witness.len(), 2, "{:?}", fs[0].witness);
    }

    #[test]
    fn drop_ends_the_guard_scope() {
        let ws = ws(
            "pub struct P;\nimpl P {\n    pub fn ok(&self) {\n        let a = self.alpha.lock();\n        drop(a);\n        let b = self.beta.lock();\n    }\n    pub fn ba(&self) {\n        let b = self.beta.lock();\n        let a = self.alpha.lock();\n    }\n}\n",
        );
        let graph = ItemGraph::build(&ws);
        let model = Model::build(&ws, &graph, &cfg());
        // beta → alpha exists but alpha → beta does not: no cycle.
        assert!(run(&ws, &graph, &model, &cfg()).is_empty());
    }

    #[test]
    fn interprocedural_edge_through_a_call() {
        let ws = ws(
            "pub struct P;\nimpl P {\n    pub fn outer(&self) {\n        let b = self.beta.lock();\n        self.inner();\n    }\n    fn inner(&self) {\n        let a = self.alpha.lock();\n    }\n    pub fn ab(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n}\n",
        );
        let graph = ItemGraph::build(&ws);
        let model = Model::build(&ws, &graph, &cfg());
        let fs = run(&ws, &graph, &model, &cfg());
        // beta → alpha (via inner) plus alpha → beta (in `ab`): cycle.
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].witness.iter().any(|w| w.contains("via")),
            "{:?}",
            fs[0].witness
        );
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let ws = ws(
            "pub struct P;\nimpl P {\n    pub fn seq(&self) {\n        self.alpha.lock().insert(1);\n        self.beta.lock().insert(2);\n    }\n    pub fn ba(&self) {\n        let b = self.beta.lock();\n        let a = self.alpha.lock();\n    }\n}\n",
        );
        let graph = ItemGraph::build(&ws);
        let model = Model::build(&ws, &graph, &cfg());
        // sequential temporaries create no alpha → beta edge: no cycle.
        assert!(run(&ws, &graph, &model, &cfg()).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let mut w = Workspace::default();
        w.files.push(parse_file(
            Path::new("crates/te/src/a.rs"),
            "sor-te",
            "pub fn f(m: &M) {\n    let a = m.alpha.lock();\n    let b = m.beta.lock();\n}\n",
        ));
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg());
        assert!(model.acquires.iter().all(|a| a.is_empty()));
    }
}
