//! `alloc-in-hot` and the shared hot-path model + per-entry cost report.
//!
//! `check.toml [hotpath] entries` names the hot entry points (the
//! ROADMAP-2 builders, the sor-serve epoch loop, the sor-perf kernels).
//! [`Hot::build`] walks the layering-filtered call graph (the same
//! [`super::concurrency::Model::calls`] view the concurrency rules
//! traverse) breadth-first from each entry, remembering the shortest
//! witness chain to every reachable function and the maximum lexical
//! loop depth among the call sites along that chain. Combining the
//! chain depth with each allocation site's own loop depth (recorded by
//! `items.rs`) yields the site's *effective depth*: how many loops —
//! across function boundaries — stand between the entry and the
//! allocation.
//!
//! The `alloc-in-hot` rule reports every non-clone heap-allocation site
//! (`Vec::new`, `vec![`, `.collect()`, `.to_vec()`, ...) whose
//! effective depth reaches `[hotpath] alloc_min_depth` (default 1);
//! clones are the `clone-in-loop` rule's job. Shallower sites are not
//! findings but still count in the per-entry [`EntryCost`] report,
//! which `--hotpath-report` snapshots into the committed
//! `check-hotpath.json` so the arena refactor can show monotone
//! burn-down the same way sor-perf gates wall time.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::AllocKind;
use crate::report::{json_escape, Finding};

use super::allows;
use super::concurrency::Model;

/// One entry's BFS tree over the layering-filtered call graph.
pub struct EntryTree {
    /// The configured spec (`name` or `crate::name`).
    pub spec: String,
    /// BFS parent per fn (graph index); `None` for entries / unreached.
    pub parent: Vec<Option<usize>>,
    /// Membership per fn.
    pub reached: Vec<bool>,
    /// Max call-site loop depth along the shortest chain, per fn.
    pub chain_depth: Vec<usize>,
}

/// Hot-path facts shared by the four hot-path rules.
pub struct Hot {
    /// One tree per configured entry, config order.
    pub trees: Vec<EntryTree>,
    /// Union membership: is the fn in *some* hot tree?
    pub in_tree: Vec<bool>,
}

impl Hot {
    /// Resolve each `[hotpath]` entry spec and walk its call tree.
    pub fn build(ws: &Workspace, graph: &ItemGraph, model: &Model, cfg: &Config) -> Hot {
        let n = graph.fns.len();
        let mut in_tree = vec![false; n];
        let mut trees = Vec::new();
        // Per caller: callee name → max loop depth among its call sites.
        let call_depth: Vec<BTreeMap<&str, usize>> = graph
            .fns
            .iter()
            .map(|fref| {
                let mut m: BTreeMap<&str, usize> = BTreeMap::new();
                for c in &ws.files[fref.file].items[fref.item].calls {
                    let e = m.entry(c.name.as_str()).or_insert(0);
                    *e = (*e).max(c.depth);
                }
                m
            })
            .collect();
        for spec in &cfg.hotpath_entries {
            let (kspec, name) = match spec.split_once("::") {
                Some((k, n)) => (Some(k), n),
                None => (None, spec.as_str()),
            };
            let mut parent: Vec<Option<usize>> = vec![None; n];
            let mut reached = vec![false; n];
            let mut chain_depth = vec![0usize; n];
            let mut queue = VecDeque::new();
            for (i, fref) in graph.fns.iter().enumerate() {
                let file = &ws.files[fref.file];
                if file.items[fref.item].name == name && kspec.is_none_or(|k| file.krate == k) {
                    reached[i] = true;
                    queue.push_back(i);
                }
            }
            while let Some(g) = queue.pop_front() {
                for &k in &model.calls[g] {
                    if reached[k] {
                        continue;
                    }
                    let kf = graph.fns[k];
                    let kname = ws.files[kf.file].items[kf.item].name.as_str();
                    let edge = call_depth[g].get(kname).copied().unwrap_or(0);
                    reached[k] = true;
                    parent[k] = Some(g);
                    chain_depth[k] = chain_depth[g].max(edge);
                    queue.push_back(k);
                }
            }
            for (i, &r) in reached.iter().enumerate() {
                in_tree[i] |= r;
            }
            trees.push(EntryTree {
                spec: spec.clone(),
                parent,
                reached,
                chain_depth,
            });
        }
        Hot { trees, in_tree }
    }
}

/// The fn chain `entry → … → f` of `tree`, as graph indices.
pub(crate) fn chain_of(tree: &EntryTree, f: usize) -> Vec<usize> {
    let mut chain = vec![f];
    let mut cur = f;
    while let Some(p) = tree.parent[cur] {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
}

/// Witness steps for a site in fn `f`: the chain functions with their
/// declaration sites, then the site line itself.
pub(crate) fn witness_to(
    ws: &Workspace,
    graph: &ItemGraph,
    tree: &EntryTree,
    f: usize,
    site_desc: &str,
) -> Vec<String> {
    let mut w: Vec<String> = chain_of(tree, f)
        .iter()
        .map(|&j| {
            let jf = graph.fns[j];
            format!(
                "{} ({}:{})",
                graph.fn_path(ws, j),
                ws.files[jf.file].rel.display(),
                ws.files[jf.file].items[jf.item].line
            )
        })
        .collect();
    w.push(site_desc.to_string());
    w
}

/// Run the `alloc-in-hot` rule.
pub fn run(ws: &Workspace, graph: &ItemGraph, hot: &Hot, cfg: &Config) -> Vec<Finding> {
    let min_depth = cfg.alloc_min_depth();
    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for tree in &hot.trees {
        for (f, fref) in graph.fns.iter().enumerate() {
            if !tree.reached[f] {
                continue;
            }
            let file = &ws.files[fref.file];
            let item = &file.items[fref.item];
            if allows(file, item.line, "alloc-in-hot") {
                continue;
            }
            // Deepest unallowed site per token.
            let mut deepest: BTreeMap<&str, (usize, usize)> = BTreeMap::new(); // token → (eff, line)
            for a in &item.facts.allocs {
                if a.kind == AllocKind::Clone {
                    continue;
                }
                let eff = tree.chain_depth[f].max(a.depth);
                if eff < min_depth || allows(file, a.line, "alloc-in-hot") {
                    continue;
                }
                let e = deepest.entry(a.token.as_str()).or_insert((eff, a.line));
                if eff > e.0 {
                    *e = (eff, a.line);
                }
            }
            for (token, (eff, line)) in deepest {
                if !seen.insert((fref.file, fref.item, token.to_string())) {
                    continue;
                }
                let fn_path = graph.fn_path(ws, f);
                let witness = witness_to(
                    ws,
                    graph,
                    tree,
                    f,
                    &format!(
                        "`{}` at {}:{} (loop depth {})",
                        token,
                        file.rel.display(),
                        line,
                        eff
                    ),
                );
                out.push(Finding {
                    rule: "alloc-in-hot".into(),
                    file: file.rel.clone(),
                    line,
                    symbol: format!("{fn_path}:{token}"),
                    message: format!(
                        "`{}` allocates via `{}` at effective loop depth {} on the hot \
                         path of `{}` — hoist the allocation, reuse a buffer, or \
                         pre-size with `with_capacity`",
                        fn_path, token, eff, tree.spec
                    ),
                    witness,
                });
            }
        }
    }
    out
}

/// One aggregated witness row of the cost report: a `(function, token)`
/// group of deep allocation sites. Line-free so the committed snapshot
/// only churns when cost structure actually changes.
pub struct CostWitness {
    /// Function path (`crate::module::Type::fn`).
    pub func: String,
    /// Allocation token (`Vec::new`, `.collect`, `.clone()`, ...).
    pub token: String,
    /// Maximum effective loop depth among the grouped sites.
    pub depth: usize,
    /// Number of sites in the group.
    pub sites: usize,
    /// Shortest witness chain of function paths, entry first.
    pub chain: Vec<String>,
}

/// Per-entry cost summary.
pub struct EntryCost {
    /// The configured entry spec.
    pub entry: String,
    /// Reachable functions (the entry itself included).
    pub fns: usize,
    /// Non-clone heap-allocation sites in the tree.
    pub alloc_sites: usize,
    /// `.clone()` sites in the tree.
    pub clone_sites: usize,
    /// Maximum effective loop depth over every site in the tree.
    pub max_depth: usize,
    /// Deep sites (effective depth ≥ `alloc_min_depth`), grouped.
    pub witnesses: Vec<CostWitness>,
}

/// Build the per-entry cost report. Allows do *not* subtract from the
/// report: it is a cost inventory, not a finding list.
pub fn cost_report(ws: &Workspace, graph: &ItemGraph, hot: &Hot, cfg: &Config) -> Vec<EntryCost> {
    let min_depth = cfg.alloc_min_depth();
    let mut out = Vec::new();
    for tree in &hot.trees {
        let mut fns = 0usize;
        let mut alloc_sites = 0usize;
        let mut clone_sites = 0usize;
        let mut max_depth = 0usize;
        let mut groups: BTreeMap<(String, String), (usize, usize, usize)> = BTreeMap::new();
        for (f, fref) in graph.fns.iter().enumerate() {
            if !tree.reached[f] {
                continue;
            }
            fns += 1;
            let item = &ws.files[fref.file].items[fref.item];
            for a in &item.facts.allocs {
                if a.kind == AllocKind::Clone {
                    clone_sites += 1;
                } else {
                    alloc_sites += 1;
                }
                let eff = tree.chain_depth[f].max(a.depth);
                max_depth = max_depth.max(eff);
                if eff >= min_depth {
                    let key = (graph.fn_path(ws, f), a.token.clone());
                    let e = groups.entry(key).or_insert((eff, 0, f));
                    e.0 = e.0.max(eff);
                    e.1 += 1;
                }
            }
        }
        let witnesses = groups
            .into_iter()
            .map(|((func, token), (depth, sites, f))| CostWitness {
                func,
                token,
                depth,
                sites,
                chain: chain_of(tree, f)
                    .iter()
                    .map(|&j| graph.fn_path(ws, j))
                    .collect(),
            })
            .collect();
        out.push(EntryCost {
            entry: tree.spec.clone(),
            fns,
            alloc_sites,
            clone_sites,
            max_depth,
            witnesses,
        });
    }
    out
}

/// Render the cost report as a compact text table, one row per entry.
pub fn render_cost_table(costs: &[EntryCost]) -> String {
    let mut s = String::from(
        "hot-path cost report (entry: reachable fns / alloc sites / clone sites / max loop depth / deep groups):\n",
    );
    for c in costs {
        s.push_str(&format!(
            "  {:<40} {:>4} fns  {:>4} allocs  {:>4} clones  depth {}  {:>3} deep\n",
            c.entry,
            c.fns,
            c.alloc_sites,
            c.clone_sites,
            c.max_depth,
            c.witnesses.len()
        ));
    }
    s
}

/// Render the cost report as deterministic JSON (the committed
/// `check-hotpath.json`). Line-free by construction.
pub fn render_cost_json(costs: &[EntryCost]) -> String {
    let mut s = String::from("{\n  \"tool\": \"sor-check\",\n  \"version\": 1,\n  \"entries\": [");
    for (i, c) in costs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\n      \"entry\": \"{}\",\n      \"functions\": {},\n      \
             \"alloc_sites\": {},\n      \"clone_sites\": {},\n      \
             \"max_loop_depth\": {},\n      \"witnesses\": [",
            json_escape(&c.entry),
            c.fns,
            c.alloc_sites,
            c.clone_sites,
            c.max_depth
        ));
        for (j, w) in c.witnesses.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let chain: Vec<String> = w
                .chain
                .iter()
                .map(|p| format!("\"{}\"", json_escape(p)))
                .collect();
            s.push_str(&format!(
                "\n        {{\"fn\": \"{}\", \"token\": \"{}\", \"depth\": {}, \
                 \"sites\": {}, \"chain\": [{}]}}",
                json_escape(&w.func),
                json_escape(&w.token),
                w.depth,
                w.sites,
                chain.join(", ")
            ));
        }
        if !c.witnesses.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("]\n    }");
    }
    if !costs.is_empty() {
        s.push('\n');
        s.push_str("  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn ws(text: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.files.push(parse_file(
            Path::new("crates/core/src/a.rs"),
            "sor-core",
            text,
        ));
        ws
    }

    fn run_on(text: &str, cfg_text: &str) -> (Vec<Finding>, Vec<EntryCost>) {
        let w = ws(text);
        let cfg = Config::parse(cfg_text).expect("cfg");
        let graph = ItemGraph::build(&w);
        let model = Model::build(&w, &graph, &cfg);
        let hot = Hot::build(&w, &graph, &model, &cfg);
        (
            run(&w, &graph, &hot, &cfg),
            cost_report(&w, &graph, &hot, &cfg),
        )
    }

    #[test]
    fn allocation_under_loop_through_call_is_deep() {
        let (fs, costs) = run_on(
            "pub fn entry(n: usize) {\n    for i in 0..n {\n        helper(i);\n    }\n}\nfn helper(i: usize) {\n    let v = Vec::new();\n    let _ = (v, i);\n}\n",
            "[hotpath]\nentries = [\"entry\"]\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "alloc-in-hot");
        assert!(
            fs[0].symbol.ends_with("helper:Vec::new"),
            "{}",
            fs[0].symbol
        );
        // witness: entry decl, helper decl, site with depth.
        assert_eq!(fs[0].witness.len(), 3, "{:?}", fs[0].witness);
        assert!(
            fs[0].witness[2].contains("loop depth 1"),
            "{:?}",
            fs[0].witness
        );
        assert_eq!(costs.len(), 1);
        assert_eq!(costs[0].fns, 2);
        assert_eq!(costs[0].max_depth, 1);
    }

    #[test]
    fn entry_level_allocation_is_cost_not_finding() {
        let (fs, costs) = run_on(
            "pub fn entry() {\n    let v = Vec::new();\n    let _ = v;\n}\n",
            "[hotpath]\nentries = [\"entry\"]\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
        assert_eq!(costs[0].alloc_sites, 1);
        assert_eq!(costs[0].max_depth, 0);
        assert!(costs[0].witnesses.is_empty());
    }

    #[test]
    fn clones_are_left_to_clone_in_loop() {
        let (fs, costs) = run_on(
            "pub fn entry(x: &X) {\n    for _ in 0..3 {\n        let y = x.clone();\n        let _ = y;\n    }\n}\n",
            "[hotpath]\nentries = [\"entry\"]\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
        assert_eq!(costs[0].clone_sites, 1);
        assert_eq!(costs[0].witnesses.len(), 1);
    }

    #[test]
    fn justified_allow_suppresses_the_finding() {
        let (fs, costs) = run_on(
            "pub fn entry(n: usize) {\n    for _ in 0..n {\n        // sor-check: allow(alloc-in-hot) — tiny bounded scratch vector\n        let v = Vec::new();\n        let _ = v;\n    }\n}\n",
            "[hotpath]\nentries = [\"entry\"]\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
        // the cost inventory still counts it
        assert_eq!(costs[0].alloc_sites, 1);
    }

    #[test]
    fn cost_json_is_parseable_and_line_free() {
        let (_, costs) = run_on(
            "pub fn entry(n: usize) {\n    for i in 0..n {\n        let v = vec![i];\n        let _ = v;\n    }\n}\n",
            "[hotpath]\nentries = [\"entry\"]\n",
        );
        let json = render_cost_json(&costs);
        let parsed = crate::baseline::parse_json(&json).expect("valid json");
        let entries = parsed.get("entries").and_then(|e| e.as_arr()).expect("arr");
        assert_eq!(entries.len(), 1);
        assert!(!json.contains(":4"), "line numbers leaked: {json}");
    }
}
