//! The semantic rules, each built on the item graph.
//!
//! | id | meaning |
//! |----|---------|
//! | `layering` | crate references respect the DAG declared in `check.toml [layers]` |
//! | `panic-path` | no panic reachable from `pub` fns of the configured crates, with a shortest witness call chain |
//! | `unseeded-rng` | functions constructing an RNG take a seed/`Rng` parameter |
//! | `hash-order` | no `HashMap`/`HashSet` iteration order observable in sampler/solver code |
//! | `dead-api` | `pub` items are referenced somewhere outside their own crate |
//! | `lock-order` | lock acquisitions form a DAG across the call graph |
//! | `held-lock` | no expensive/blocking calls while a guard is live |
//! | `atomics` | atomic orderings are minimal, justified, consistent |
//! | `rayon-ready` | parallel targets reach no non-`Send` state |
//! | `alloc-in-hot` | no deep heap allocation reachable from a hot entry |
//! | `clone-in-loop` | no `.clone()` at loop depth ≥ 1 in a hot tree |
//! | `growth-without-capacity` | collections grown in a loop are pre-sized |
//! | `quadratic-scan` | no linear scans inside a loop over a collection |
//!
//! Every rule honors the same `sor-check: allow(<id>)` comment
//! mechanism as the lexical pass (same line, the line directly above,
//! or the declaration line of the owning item) — but unlike the lexical
//! pass, a semantic allow is valid only when it carries a justification
//! string after the closing parenthesis (`// sor-check: allow(id) —
//! reason`). A bare allow is ignored. Anything deliberately tolerated
//! long-term goes in `check-baseline.json` instead.

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::SourceFile;
use crate::parse_allow_ids;
use crate::report::Finding;

pub mod concurrency;
pub mod concurrency_atomics;
pub mod concurrency_held;
pub mod concurrency_rayon;
pub mod dead_api;
pub mod determinism;
pub mod hotpath;
pub mod hotpath_clone;
pub mod hotpath_growth;
pub mod hotpath_scan;
pub mod layering;
pub mod panics;

/// Run every semantic rule over a loaded workspace.
pub fn run_semantic(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    run_semantic_with_cost(ws, cfg).0
}

/// Like [`run_semantic`], also returning the per-entry hot-path cost
/// report (empty when `[hotpath] entries` is unconfigured).
pub fn run_semantic_with_cost(
    ws: &Workspace,
    cfg: &Config,
) -> (Vec<Finding>, Vec<hotpath::EntryCost>) {
    let graph = ItemGraph::build(ws);
    let model = concurrency::Model::build(ws, &graph, cfg);
    let hot = hotpath::Hot::build(ws, &graph, &model, cfg);
    let mut out = layering::run(ws, cfg);
    out.extend(panics::run(ws, &graph, cfg));
    out.extend(determinism::run(ws, cfg));
    out.extend(dead_api::run(ws, cfg));
    out.extend(concurrency::run(ws, &graph, &model, cfg));
    out.extend(concurrency_held::run(ws, &graph, &model, cfg));
    out.extend(concurrency_atomics::run(ws, cfg));
    out.extend(concurrency_rayon::run(ws, &graph, &model, cfg));
    out.extend(hotpath::run(ws, &graph, &hot, cfg));
    out.extend(hotpath_clone::run(ws, &graph, &hot, cfg));
    out.extend(hotpath_growth::run(ws, &graph, &hot, cfg));
    out.extend(hotpath_scan::run(ws, &graph, &hot, cfg));
    let cost = hotpath::cost_report(ws, &graph, &hot, cfg);
    (out, cost)
}

/// Does the text after `marker`'s closing parenthesis on `line` carry a
/// justification — at least three alphanumeric characters of prose?
/// `// sor-check: allow(atomics) — epoch flip needs total order` does;
/// a bare `// sor-check: allow(atomics)` does not.
fn justified(line: &str, marker: &str) -> bool {
    let Some(pos) = line.find(marker) else {
        return false;
    };
    let rest = &line[pos + marker.len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[close + 1..]
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(3)
        .count()
        >= 3
}

/// Does line `line_no` (1-based) of `file` carry a *justified*
/// allowlist comment for rule `id` — on the same line, the line
/// directly above, or as a file-wide `allow-file`?
pub(crate) fn allows(file: &SourceFile, line_no: usize, id: &str) -> bool {
    let idx = line_no.saturating_sub(1);
    let hit = |l: &str, marker: &str| -> bool {
        parse_allow_ids(l, marker).iter().any(|a| a == id) && justified(l, marker)
    };
    let at = |i: usize| -> bool { file.raw.get(i).is_some_and(|l| hit(l, "sor-check: allow(")) };
    if at(idx) || (idx > 0 && at(idx - 1)) {
        return true;
    }
    file.raw.iter().any(|l| hit(l, "sor-check: allow-file("))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn file(text: &str) -> SourceFile {
        parse_file(Path::new("crates/core/src/a.rs"), "sor-core", text)
    }

    #[test]
    fn justified_allow_is_honored() {
        let f = file(
            "// sor-check: allow(lock-order) — shards are index-ordered by construction\nfn f() {}\n",
        );
        assert!(allows(&f, 2, "lock-order"));
        assert!(!allows(&f, 2, "held-lock"));
    }

    #[test]
    fn bare_allow_is_ignored() {
        let f = file("// sor-check: allow(lock-order)\nfn f() {}\n");
        assert!(!allows(&f, 2, "lock-order"));
        // trailing punctuation alone is not a justification
        let g = file("// sor-check: allow(lock-order) --\nfn f() {}\n");
        assert!(!allows(&g, 2, "lock-order"));
    }

    #[test]
    fn allow_file_requires_justification_too() {
        let bare = file("// sor-check: allow-file(atomics)\nfn f() {}\n");
        assert!(!allows(&bare, 2, "atomics"));
        let just = file(
            "// sor-check: allow-file(atomics) — generated table, audited manually\nfn f() {}\n",
        );
        assert!(allows(&just, 2, "atomics"));
    }
}
