//! The semantic rules, each built on the item graph.
//!
//! | id | meaning |
//! |----|---------|
//! | `layering` | crate references respect the DAG declared in `check.toml [layers]` |
//! | `panic-path` | no panic reachable from `pub` fns of the configured crates, with a shortest witness call chain |
//! | `unseeded-rng` | functions constructing an RNG take a seed/`Rng` parameter |
//! | `hash-order` | no `HashMap`/`HashSet` iteration order observable in sampler/solver code |
//! | `dead-api` | `pub` items are referenced somewhere outside their own crate |
//!
//! Every rule honors the same `sor-check: allow(<id>)` comment
//! mechanism as the lexical pass (same line or the line directly
//! above), and anything deliberately tolerated long-term goes in
//! `check-baseline.json` instead.

use crate::config::Config;
use crate::graph::{ItemGraph, Workspace};
use crate::items::SourceFile;
use crate::parse_allow_ids;
use crate::report::Finding;

pub mod dead_api;
pub mod determinism;
pub mod layering;
pub mod panics;

/// Run every semantic rule over a loaded workspace.
pub fn run_semantic(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let graph = ItemGraph::build(ws);
    let mut out = layering::run(ws, cfg);
    out.extend(panics::run(ws, &graph, cfg));
    out.extend(determinism::run(ws, cfg));
    out.extend(dead_api::run(ws, cfg));
    out
}

/// Does line `line_no` (1-based) of `file` carry an allowlist comment
/// for rule `id`, on the same line, the line directly above, or as a
/// file-wide `allow-file`?
pub(crate) fn allows(file: &SourceFile, line_no: usize, id: &str) -> bool {
    let idx = line_no.saturating_sub(1);
    let at = |i: usize| -> bool {
        file.raw.get(i).is_some_and(|l| {
            parse_allow_ids(l, "sor-check: allow(")
                .iter()
                .any(|a| a == id)
        })
    };
    if at(idx) || (idx > 0 && at(idx - 1)) {
        return true;
    }
    file.raw.iter().any(|l| {
        parse_allow_ids(l, "sor-check: allow-file(")
            .iter()
            .any(|a| a == id)
    })
}
