//! `dead-api`: public items nobody outside their crate references.
//!
//! A `pub` item in a crate listed in `check.toml [dead-api] crates`
//! must have its name appear somewhere in another crate's code — src,
//! tests, benches, or the root package's `tests/` and `examples/` all
//! count as evidence of use. Items failing that are either missing test
//! coverage, leftovers to delete, or API that should be `pub(crate)`.
//!
//! Matching is by identifier, so the audit under-reports when two
//! crates declare same-named items (the shared name keeps both alive)
//! and cannot see uses that only go through glob re-exports plus
//! methods. Impl-block methods are out of scope for the same reason —
//! method names are too generic to attribute. Both limitations trade
//! recall for a near-zero false-positive rate, which is what lets the
//! baseline stay small.

use crate::config::Config;
use crate::graph::Workspace;
use crate::items::{ItemKind, Visibility};
use crate::report::Finding;

use super::allows;

/// Run the dead-API rule.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    if cfg.dead_api_crates.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for file in &ws.files {
        if !cfg.dead_api_crates.iter().any(|c| c == &file.krate) {
            continue;
        }
        for item in &file.items {
            if item.vis != Visibility::Public
                || item.self_ty.is_some()
                || item.in_trait_impl
                || (item.kind == ItemKind::Fn && item.name == "main")
            {
                continue;
            }
            let externally_used = ws
                .ident_crates
                .get(&item.name)
                .is_some_and(|users| users.iter().any(|u| u != &file.krate));
            if externally_used || allows(file, item.line, "dead-api") {
                continue;
            }
            let kind = match item.kind {
                ItemKind::Fn => "fn",
                ItemKind::Struct => "struct",
                ItemKind::Enum => "enum",
                ItemKind::Trait => "trait",
                ItemKind::Const => "const",
                ItemKind::Static => "static",
                ItemKind::TypeAlias => "type alias",
            };
            out.push(Finding {
                rule: "dead-api".into(),
                file: file.rel.clone(),
                line: item.line,
                symbol: format!("{}::{}", file.krate, item.path_in(&file.module)),
                message: format!(
                    "pub {kind} `{}` has no reference outside `{}` — delete it, demote \
                     it to pub(crate), or cover it from another crate",
                    item.name, file.krate
                ),
                witness: Vec::new(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use std::path::Path;

    fn cfg() -> Config {
        Config::parse("[dead-api]\ncrates = [\"sor-flow\"]\n").expect("cfg")
    }

    /// Build a workspace with the ident index populated the same way
    /// `graph::load_workspace` does it.
    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, krate, text) in files {
            let parsed = parse_file(Path::new(rel), krate, text);
            for line in &parsed.stripped {
                let mut cur = String::new();
                for c in line.chars().chain(std::iter::once(' ')) {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        cur.push(c);
                    } else if !cur.is_empty() {
                        ws.ident_crates
                            .entry(std::mem::take(&mut cur))
                            .or_default()
                            .insert(krate.to_string());
                    }
                }
            }
            ws.files.push(parsed);
        }
        ws
    }

    #[test]
    fn unreferenced_pub_item_is_dead() {
        let ws = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "pub fn orphan_entry_point() {}\npub struct OrphanType;\n",
        )]);
        let fs = run(&ws, &cfg());
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs
            .iter()
            .any(|f| f.symbol == "sor-flow::a::orphan_entry_point"));
        assert!(fs
            .iter()
            .any(|f| f.message.contains("pub struct `OrphanType`")));
    }

    #[test]
    fn cross_crate_reference_keeps_item_alive() {
        let ws = ws(&[
            (
                "crates/flow/src/a.rs",
                "sor-flow",
                "pub fn used_elsewhere() {}\n",
            ),
            (
                "crates/te/src/a.rs",
                "sor-te",
                "fn f() { used_elsewhere(); }\n",
            ),
        ]);
        assert!(run(&ws, &cfg()).is_empty());
    }

    #[test]
    fn same_crate_reference_does_not_count() {
        let ws = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "pub fn only_local() {}\nfn f() { only_local(); }\n",
        )]);
        assert_eq!(run(&ws, &cfg()).len(), 1);
    }

    #[test]
    fn private_items_methods_and_allows_are_skipped() {
        let ws = ws(&[(
            "crates/flow/src/a.rs",
            "sor-flow",
            "fn private() {}\npub(crate) fn internal() {}\nstruct S;\nimpl S {\n    pub fn method(&self) {}\n}\n// sor-check: allow(dead-api) — staged API for the next PR\npub fn staged() {}\n",
        )]);
        assert!(run(&ws, &cfg()).is_empty());
    }
}
