//! Property tests for the runtime invariant validators: every sampled
//! path system satisfies [`PathSystem::validate`] (endpoints, edge
//! validity, sparsity bound), and every `restricted`/`rounding` solution
//! passes the flow-conservation and capacity-respect checks of
//! `sor_flow::validate` — on random graphs, demands, and seeds.
//!
//! [`PathSystem::validate`]: sor_core::PathSystem::validate

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_core::sample::{demand_pairs, sample_k, sample_k_plus_cut};
use sor_flow::restricted::RestrictedEntry;
use sor_flow::validate::{check_flow_conservation, check_integral, check_restricted};
use sor_flow::{restricted_min_congestion, round_and_improve, Demand};
use sor_graph::{gen, Graph, NodeId, Path};
use sor_oblivious::KspRouting;

fn arb_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (2.5 * (n as f64).ln() / n as f64).min(0.9);
    gen::erdos_renyi_connected(n, p, &mut rng)
}

fn spread_pairs(n: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count.min(n / 2))
        .map(|i| (NodeId::from_usize(i), NodeId::from_usize(n - 1 - i)))
        .collect()
}

/// Entries routing `demand` units over each pair's sampled candidates.
fn entries_for<'a>(
    pairs: &[(NodeId, NodeId)],
    system: &'a sor_core::PathSystem,
    demand: f64,
) -> Vec<RestrictedEntry<'a>> {
    pairs
        .iter()
        .map(|&(s, t)| RestrictedEntry {
            s,
            t,
            demand,
            paths: system.paths(s, t),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `sample_k` output always passes `PathSystem::validate`, in both the
    /// boolean and the detailed form, including the `k`-sparsity bound.
    #[test]
    fn sample_k_output_validates(seed in 0u64..400, n in 6usize..14, k in 1usize..6) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a);
        let pairs = spread_pairs(n, 3);
        let sampled = sample_k(&base, &pairs, k, &mut rng);
        prop_assert!(sampled.system.validate(&g));
        prop_assert_eq!(sampled.system.validate_detailed(&g, Some(k)), Ok(()));
        // every requested pair is covered, and by at most k paths
        for &(s, t) in &pairs {
            let ps = sampled.system.paths(s, t);
            prop_assert!(!ps.is_empty() && ps.len() <= k);
        }
    }

    /// The `(k + cut)`-sample also validates — its sparsity bound is the
    /// per-pair draw count, not `k` itself.
    #[test]
    fn sample_k_plus_cut_output_validates(seed in 0u64..200, n in 6usize..12, k in 1usize..4) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc3);
        let pairs = spread_pairs(n, 2);
        let sampled = sample_k_plus_cut(&base, &g, &pairs, k, &mut rng);
        prop_assert_eq!(sampled.system.validate_detailed(&g, None), Ok(()));
        for &(s, t) in &pairs {
            prop_assert!(sampled.system.paths(s, t).len() <= sampled.draws(s, t));
        }
    }

    /// Fractional restricted solutions on random graphs conserve flow and
    /// respect the reported congestion/capacities.
    #[test]
    fn restricted_solutions_pass_validators(
        seed in 0u64..300,
        n in 6usize..12,
        k in 1usize..5,
        demand in 0.25f64..4.0,
    ) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let pairs = spread_pairs(n, 3);
        let system = sample_k(&base, &pairs, k, &mut rng).system;
        let entries = entries_for(&pairs, &system, demand);
        let sol = restricted_min_congestion(&g, &entries, 0.1);
        prop_assert_eq!(check_flow_conservation(&entries, &sol.weights), Ok(()));
        prop_assert_eq!(check_restricted(&g, &entries, &sol), Ok(()));
        // and tampering is caught: stealing flow breaks conservation
        let mut bad = sol.weights.clone();
        bad[0][0] += demand;
        prop_assert!(check_flow_conservation(&entries, &bad).is_err());
    }

    /// Integral (rounded) solutions conserve demand units and report
    /// consistent loads/congestion.
    #[test]
    fn rounded_solutions_pass_validators(
        seed in 0u64..300,
        n in 6usize..12,
        k in 2usize..5,
        units in 1u32..5,
    ) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1f);
        let pairs = spread_pairs(n, 2);
        let system = sample_k(&base, &pairs, k, &mut rng).system;
        let entries = entries_for(&pairs, &system, f64::from(units));
        let frac = restricted_min_congestion(&g, &entries, 0.1);
        let sol = round_and_improve(&g, &entries, &frac.weights, 8, &mut rng);
        prop_assert_eq!(check_integral(&g, &entries, &sol), Ok(()));
        for (j, row) in sol.counts.iter().enumerate() {
            let total: u32 = row.iter().sum();
            prop_assert_eq!(total, units, "entry {} routes {} of {} units", j, total, units);
        }
    }

    /// End-to-end: a demand's pairs, sampled and adapted, stay valid after
    /// edge failures shrink the system (`without_edges` keeps invariants).
    #[test]
    fn failure_shrunk_systems_validate(seed in 0u64..200, n in 8usize..14) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe1);
        let dm = Demand::from_pairs(spread_pairs(n, 3));
        let sampled = sample_k(&base, &demand_pairs(&dm), 3, &mut rng);
        let failed = [sor_graph::EdgeId(0)];
        let shrunk = sampled.system.without_edges(&failed);
        prop_assert_eq!(shrunk.validate_detailed(&g, Some(3)), Ok(()));
        for (_, _, paths) in shrunk.pairs() {
            for p in paths {
                prop_assert!(!p.contains_edge(failed[0]));
            }
        }
    }
}

/// Non-property smoke check kept outside `proptest!` so a failure prints
/// the validator's message directly.
#[test]
fn validator_messages_name_the_pair() {
    let g = gen::cycle_graph(6);
    let mut sys = sor_core::PathSystem::new();
    let p: Path = sor_graph::bfs_path(&g, NodeId(0), NodeId(3)).expect("connected");
    sys.insert(NodeId(0), NodeId(3), p);
    let err = sys
        .validate_detailed(&gen::cycle_graph(3), None)
        .expect_err("alien graph must fail");
    assert!(err.contains("v0→v3"), "{err}");
}
