//! Property-based tests for the semi-oblivious core: sampling, the
//! deletion process, bad patterns, bucketing.
//!
//! Failing cases are recorded in `props.proptest-regressions` (one
//! deduplicated `cc <hash>` line per minimal counterexample) and re-run
//! before new cases; see that file's header for the recording policy.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_core::patterns::{count_bad_patterns, is_bad_pattern, pattern_of_run};
use sor_core::process::deletion_process;
use sor_core::sample::{demand_pairs, sample_k};
use sor_core::special::{bucketize, dominating_special, is_special};
use sor_core::SemiObliviousRouting;
use sor_flow::Demand;
use sor_graph::{gen, Graph, NodeId};
use sor_oblivious::KspRouting;

fn arb_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = (2.5 * (n as f64).ln() / n as f64).min(0.9);
    gen::erdos_renyi_connected(n, p, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// A failed deletion-process run always witnesses a bad pattern
    /// (Lemma 5.12 as code), and a successful run never does.
    #[test]
    fn failed_runs_witness_bad_patterns(seed in 0u64..300, n in 6usize..12, k in 1usize..5) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x99);
        let dm = Demand::from_pairs([
            (NodeId(0), NodeId::from_usize(n - 1)),
            (NodeId(1), NodeId::from_usize(n - 2)),
            (NodeId(2), NodeId::from_usize(n - 3)),
        ]);
        let sampled = sample_k(&base, &demand_pairs(&dm), k, &mut rng);
        let tau = 0.8; // low threshold so failures occur regularly
        let out = deletion_process(&g, &sampled, &dm, tau);
        let theta = 1.0 / k as f64;
        let total_draws = dm.support_size() * k;
        let witness = pattern_of_run(&out.deleted_at, theta, total_draws);
        // Lemma 5.12 direction: every failed run witnesses a pattern. (At
        // the exact half-deleted boundary both weak success and a witness
        // can hold, so only the implications are asserted.)
        if !out.weak_success() {
            prop_assert!(witness.is_some(), "failed run must witness a pattern");
        }
        if witness.is_none() {
            prop_assert!(out.weak_success(), "witness-free run must be a success");
        }
        if let Some(pat) = witness {
            // the witness satisfies the bad-pattern predicate with the
            // run's own budget
            let total: u64 = pat.iter().sum();
            prop_assert!(is_bad_pattern(&pat, 1, (total_draws as u64) / 2, total.max(total_draws as u64)));
        }
    }

    /// The DP pattern counter is monotone in every parameter direction
    /// the union bound exploits.
    #[test]
    fn pattern_count_monotonicity(m in 2usize..6, min_nz in 1u64..4, total in 4u64..10) {
        let base = count_bad_patterns(m, min_nz, total / 2, total);
        // higher per-edge threshold → fewer patterns
        prop_assert!(count_bad_patterns(m, min_nz + 1, total / 2, total) <= base);
        // higher required sum → fewer patterns
        prop_assert!(count_bad_patterns(m, min_nz, total / 2 + 1, total) <= base);
        // more edges → at least as many patterns
        prop_assert!(count_bad_patterns(m + 1, min_nz, total / 2, total) >= base);
    }

    /// Bucketing conserves demand exactly and its dominating specials are
    /// special and dominating (Lemma 5.9's two requirements).
    #[test]
    fn bucketing_invariants(seed in 0u64..200, n in 6usize..12, entries in 2usize..6) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xaa);
        let dm = sor_flow::demand::random_one_demand(&g, entries, &mut rng);
        if dm.support_size() == 0 { return Ok(()); }
        let sampled = sample_k(&base, &demand_pairs(&dm), 3, &mut rng);
        let draws = |a: NodeId, b: NodeId| sampled.draws(a, b);
        let buckets = bucketize(&dm, draws, 6);
        let total: f64 = buckets.iter().map(Demand::size).sum();
        prop_assert!((total - dm.size()).abs() < 1e-9);
        for bucket in buckets.iter().filter(|b| b.support_size() > 0) {
            let dom = dominating_special(bucket, draws);
            // dominating: entrywise ≥ bucket
            for (&(_, _, a), &(_, _, b)) in bucket.entries().iter().zip(dom.entries()) {
                prop_assert!(b >= a - 1e-12);
            }
            // special: ratio is constant on the support
            let theta = dom.entries()[0].2 / draws(dom.entries()[0].0, dom.entries()[0].1) as f64;
            prop_assert!(is_special(&dom, &sampled, theta));
        }
    }

    /// Sampling more paths (same seed) yields a superset system, so the
    /// adapted congestion is monotone up to solver noise.
    #[test]
    fn sparsity_monotone(seed in 0u64..150, n in 6usize..11) {
        let g = arb_graph(n, seed);
        let base = KspRouting::new(g.clone(), 4);
        let dm = Demand::from_pairs([(NodeId(0), NodeId::from_usize(n - 1))]);
        let pairs = demand_pairs(&dm);
        let sys_small = sample_k(&base, &pairs, 2, &mut StdRng::seed_from_u64(seed)).system;
        let sys_large = sample_k(&base, &pairs, 6, &mut StdRng::seed_from_u64(seed)).system;
        // prefix property: the first 2 draws coincide, so small ⊆ large
        for (s, t, paths) in sys_small.pairs() {
            for p in paths {
                prop_assert!(sys_large.paths(s, t).contains(p));
            }
        }
        let c_small = SemiObliviousRouting::new(g.clone(), sys_small).congestion(&dm, 0.1);
        let c_large = SemiObliviousRouting::new(g, sys_large).congestion(&dm, 0.1);
        prop_assert!(c_large <= c_small * 1.3 + 1e-9,
            "larger system should not be much worse: {} vs {}", c_large, c_small);
    }
}

/// Lemma 5.14's probability calculus, Monte-Carlo: the probability that
/// two *disjoint* draw-subsets simultaneously exceed their thresholds is
/// at most the product of the individual Chernoff tails (negative
/// association / Lemma B.4), and the measured frequencies respect both
/// the individual and the product bounds.
#[test]
fn pattern_probability_product_bound() {
    use rand::Rng;
    use sor_core::negassoc::{chernoff_upper_tail, joint_tail};

    let k = 10usize; // draws per pair, uniform over 2 arcs
    let a = 8usize; // threshold: ≥ 8 of 10 on the "watched" arc
    let trials = 20_000usize;
    let mut rng = StdRng::seed_from_u64(31);
    let (mut hit1, mut hit2, mut hit_both) = (0usize, 0usize, 0usize);
    for _ in 0..trials {
        let x1: usize = (0..k).map(|_| usize::from(rng.gen_bool(0.5))).sum();
        let x2: usize = (0..k).map(|_| usize::from(rng.gen_bool(0.5))).sum();
        if x1 >= a {
            hit1 += 1;
        }
        if x2 >= a {
            hit2 += 1;
        }
        if x1 >= a && x2 >= a {
            hit_both += 1;
        }
    }
    let p1 = hit1 as f64 / trials as f64;
    let p2 = hit2 as f64 / trials as f64;
    let pb = hit_both as f64 / trials as f64;
    let tail = chernoff_upper_tail(k as f64 / 2.0, a as f64);
    assert!(p1 <= tail + 0.01, "measured {p1} above Chernoff {tail}");
    assert!(p2 <= tail + 0.01);
    let product = joint_tail(&[tail, tail]);
    assert!(
        pb <= product + 0.005,
        "joint frequency {pb} above product bound {product}"
    );
    // and the joint frequency factorizes for independent pairs
    assert!((pb - p1 * p2).abs() < 0.01);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Codec robustness: arbitrary single-byte corruptions of a serialized
    /// path system either parse to a *valid* system or return an error —
    /// never panic, never produce an invalid path.
    #[test]
    fn portable_corruption_never_panics(seed in 0u64..200, pos_frac in 0.0f64..1.0, byte in 0u8..128) {
        use sor_core::{system_from_text, system_to_text};
        let g = gen::cycle_graph(8);
        let base = KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = vec![(NodeId(0), NodeId(4)), (NodeId(1), NodeId(5))];
        let system = sample_k(&base, &pairs, 2, &mut rng).system;
        let mut text = system_to_text(&system).into_bytes();
        if !text.is_empty() {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let pos = ((pos_frac * text.len() as f64) as usize).min(text.len() - 1);
            text[pos] = byte;
        }
        if let Ok(text) = String::from_utf8(text) {
            if let Ok(sys) = system_from_text(&g, &text) {
                prop_assert!(sys.validate(&g), "corrupted parse produced invalid system");
            }
        }
    }
}
