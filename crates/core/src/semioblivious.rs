//! The semi-oblivious routing object: a path system plus demand-time rate
//! adaptation (Definitions 5.1 and 6.1).

use crate::path_system::PathSystem;
use rand::Rng;
use sor_flow::restricted::{restricted_min_congestion, RestrictedEntry, RestrictedSolution};
use sor_flow::rounding::{round_and_improve, IntegralSolution};
use sor_flow::Demand;
use sor_graph::Graph;

/// A semi-oblivious routing: the installed candidate paths, bound to their
/// graph. Routing a demand re-optimizes sending rates restricted to the
/// candidates (Stage 4) — fractionally via the MWU LP solver, or
/// integrally via randomized rounding + local search.
#[derive(Clone, Debug)]
pub struct SemiObliviousRouting {
    g: Graph,
    system: PathSystem,
}

impl SemiObliviousRouting {
    /// Bind a path system to its graph.
    pub fn new(g: Graph, system: PathSystem) -> Self {
        debug_assert!(system.validate(&g));
        SemiObliviousRouting { g, system }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The installed path system.
    pub fn system(&self) -> &PathSystem {
        &self.system
    }

    /// Sparsity of the installed system.
    pub fn sparsity(&self) -> usize {
        self.system.sparsity()
    }

    /// Whether every support pair of `demand` has at least one candidate
    /// path.
    pub fn covers(&self, demand: &Demand) -> bool {
        demand
            .entries()
            .iter()
            // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
            .all(|&(s, t, d)| d == 0.0 || self.system.covers(s, t))
    }

    fn entries<'a>(&'a self, demand: &Demand) -> Vec<RestrictedEntry<'a>> {
        demand
            .entries()
            .iter()
            .map(|&(s, t, d)| RestrictedEntry {
                s,
                t,
                demand: d,
                paths: self.system.paths(s, t),
            })
            .collect()
    }

    /// Optimal-up-to-`(1+O(ε))` fractional routing of `demand` restricted
    /// to the candidates. Panics if a demanded pair has no candidates
    /// (check [`SemiObliviousRouting::covers`] first when that can
    /// happen, e.g. after failures).
    pub fn route_fractional(&self, demand: &Demand, eps: f64) -> RestrictedSolution {
        let _span = sor_obs::span("core/route_fractional");
        sor_obs::counter_add!("core/route/requests");
        restricted_min_congestion(&self.g, &self.entries(demand), eps)
    }

    /// The paper's `cong(P, D)` (Definition 5.1), up to the solver's
    /// `(1+O(ε))`.
    pub fn congestion(&self, demand: &Demand, eps: f64) -> f64 {
        self.route_fractional(demand, eps).congestion
    }

    /// Integral routing of an integral `demand` (Definition 6.1):
    /// fractional adaptation, randomized rounding, local search.
    pub fn route_integral<R: Rng>(
        &self,
        demand: &Demand,
        eps: f64,
        rng: &mut R,
    ) -> IntegralSolution {
        assert!(
            demand.is_integral(),
            "integral routing needs integral demand"
        );
        let _span = sor_obs::span("core/route_integral");
        sor_obs::counter_add!("core/route/requests");
        let entries = self.entries(demand);
        let frac = restricted_min_congestion(&self.g, &entries, eps);
        round_and_improve(&self.g, &entries, &frac.weights, 30, rng)
    }

    /// Apply edge failures: drop candidate paths crossing `failed` and
    /// return the surviving semi-oblivious routing (the TE robustness
    /// operation — rates will be re-adapted on what remains, no new path
    /// installation needed).
    pub fn with_failures(&self, failed: &[sor_graph::EdgeId]) -> SemiObliviousRouting {
        SemiObliviousRouting {
            g: self.g.clone(),
            system: self.system.without_edges(failed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{demand_pairs, sample_k};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::{gen, NodeId};
    use sor_oblivious::ValiantHypercube;

    fn hypercube_routing(d: usize, k: usize, seed: u64) -> (SemiObliviousRouting, Demand) {
        let g = gen::hypercube(d);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let demand = sor_flow::demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&r, &demand_pairs(&demand), k, &mut rng);
        (SemiObliviousRouting::new(g, sampled.system), demand)
    }

    #[test]
    fn fractional_routing_covers_demand() {
        let (sor, demand) = hypercube_routing(4, 4, 1);
        assert!(sor.covers(&demand));
        let sol = sor.route_fractional(&demand, 0.2);
        assert!(sol.congestion.is_finite() && sol.congestion > 0.0);
        // Each pair's weights sum to its demand.
        for (w, &(_, _, d)) in sol.weights.iter().zip(demand.entries()) {
            let total: f64 = w.iter().sum();
            assert!((total - d).abs() < 1e-6);
        }
    }

    #[test]
    fn integral_routing_is_integral() {
        let (sor, demand) = hypercube_routing(3, 3, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let sol = sor.route_integral(&demand, 0.2, &mut rng);
        for (counts, &(_, _, d)) in sol.counts.iter().zip(demand.entries()) {
            assert_eq!(counts.iter().sum::<u32>() as f64, d);
        }
        assert!(sol.congestion >= 1.0 - 1e-9);
    }

    #[test]
    fn more_paths_never_hurt_much() {
        // Monotonicity sanity: an 8-sample should be at least as good as a
        // 1-sample on the same demand (same seeds → supersets).
        let g = gen::hypercube(4);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let demand = sor_flow::demand::random_permutation(&g, &mut rng);
        let pairs = demand_pairs(&demand);
        let mut rng1 = StdRng::seed_from_u64(10);
        let s1 = sample_k(&r, &pairs, 1, &mut rng1);
        let mut rng8 = StdRng::seed_from_u64(10);
        let s8 = sample_k(&r, &pairs, 8, &mut rng8);
        // With identical seeds the first draw coincides, so s8 ⊇ s1.
        let sor1 = SemiObliviousRouting::new(g.clone(), s1.system);
        let sor8 = SemiObliviousRouting::new(g, s8.system);
        let c1 = sor1.congestion(&demand, 0.2);
        let c8 = sor8.congestion(&demand, 0.2);
        assert!(
            c8 <= c1 * 1.25 + 1e-9,
            "8-sample ({c8}) much worse than 1-sample ({c1})"
        );
    }

    #[test]
    fn failures_shrink_but_survive() {
        let g = gen::cycle_graph(6);
        let r = sor_oblivious::KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(4);
        let demand = Demand::from_pairs([(NodeId(0), NodeId(3))]);
        let sampled = sample_k(&r, &demand_pairs(&demand), 12, &mut rng);
        let sor = SemiObliviousRouting::new(g, sampled.system);
        assert_eq!(sor.sparsity(), 2);
        let failed = sor.with_failures(&[sor_graph::EdgeId(0)]);
        assert_eq!(failed.sparsity(), 1);
        assert!(failed.covers(&demand));
        // congestion degrades but stays finite
        assert!(failed.congestion(&demand, 0.2) >= sor.congestion(&demand, 0.2) - 1e-9);
    }
}
