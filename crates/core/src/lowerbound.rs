//! The Section 8 lower-bound adversary on the two-star family.
//!
//! Every simple path between a left leaf and a right leaf of a
//! [`TwoStar`] crosses exactly one middle vertex, so an `s`-sparse path
//! system commits each leaf pair to a set of at most `s` middles. The
//! Lemma 8.1 pigeonhole finds a small middle set `S` and a large matching
//! of leaf pairs whose *every* candidate path crosses `S`; the matching,
//! read as a permutation demand, then forces congestion `≥ q/|S|` on the
//! system while the offline optimum stays `O(⌈q/r⌉)`.
//!
//! This module implements the adversary as an explicit search: group leaf
//! pairs by their middle sets, consider those sets (and a capped number of
//! pairwise unions) as candidate `S`, and extract a maximum bipartite
//! matching among the pairs confined to each candidate.

use crate::path_system::PathSystem;
use sor_flow::{max_concurrent_flow, Demand};
use sor_graph::gen::TwoStar;
use sor_graph::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The adversary's output: a hard permutation demand plus its certificate.
#[derive(Clone, Debug)]
pub struct AdversaryResult {
    /// The hard permutation demand (one unit per matched leaf pair).
    pub demand: Demand,
    /// The middle vertices all candidate paths of the demand cross.
    pub hitting_set: Vec<NodeId>,
    /// Number of matched pairs `q`.
    pub matched: usize,
    /// Lower bound on the congestion of *any* routing restricted to the
    /// path system: `q / |S|`.
    pub certified_congestion: f64,
    /// Offline optimal congestion of the demand (upper bound from the MWU
    /// solver).
    pub opt_upper: f64,
}

impl AdversaryResult {
    /// Certified competitive-ratio lower bound: forced congestion over
    /// offline optimum.
    pub fn ratio(&self) -> f64 {
        self.certified_congestion / self.opt_upper.max(1e-12)
    }
}

/// Maximum bipartite matching (Kuhn's augmenting paths) over an adjacency
/// list `adj[left] = rights`.
fn max_matching(nl: usize, nr: usize, adj: &[Vec<usize>]) -> Vec<(usize, usize)> {
    let mut match_r: Vec<Option<usize>> = vec![None; nr];
    let mut match_l: Vec<Option<usize>> = vec![None; nl];
    fn try_kuhn(
        u: usize,
        adj: &[Vec<usize>],
        seen: &mut [bool],
        match_r: &mut [Option<usize>],
        match_l: &mut [Option<usize>],
    ) -> bool {
        for &v in &adj[u] {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            let free_or_moved = match match_r[v] {
                None => true,
                Some(w) => try_kuhn(w, adj, seen, match_r, match_l),
            };
            if free_or_moved {
                match_r[v] = Some(u);
                match_l[u] = Some(v);
                return true;
            }
        }
        false
    }
    for u in 0..nl {
        let mut seen = vec![false; nr];
        try_kuhn(u, adj, &mut seen, &mut match_r, &mut match_l);
    }
    match_l
        .iter()
        .enumerate()
        .filter_map(|(u, v)| v.map(|v| (u, v)))
        .collect()
}

/// Run the adversary against a path system installed on a [`TwoStar`].
/// Pairs without candidate paths are skipped (an honest system covers all
/// leaf pairs). Returns `None` if no leaf pair is covered at all.
pub fn adversarial_demand(ts: &TwoStar, system: &PathSystem) -> Option<AdversaryResult> {
    let left: Vec<NodeId> = (0..ts.num_leaves()).map(|i| ts.left_leaf(i)).collect();
    let right: Vec<NodeId> = (0..ts.num_leaves()).map(|j| ts.right_leaf(j)).collect();
    adversary_core(ts.graph(), &left, &right, |v| ts.is_middle(v), system)
}

/// Run the Lemma 8.2 adversary against a path system installed on a
/// [`sor_graph::gen::TwoStarChain`]: each block is attacked independently (bridges do not
/// affect in-block simple paths) and the block with the best certified
/// *ratio* wins — one graph witnessing the lower bound at every scale.
pub fn adversarial_demand_chain(
    chain: &sor_graph::gen::TwoStarChain,
    system: &PathSystem,
) -> Option<AdversaryResult> {
    let mut best: Option<AdversaryResult> = None;
    for b in 0..chain.num_blocks() {
        let (r, m) = chain.spec(b);
        let left: Vec<NodeId> = (0..m).map(|i| chain.left_leaf(b, i)).collect();
        let right: Vec<NodeId> = (0..m).map(|j| chain.right_leaf(b, j)).collect();
        let middles: std::collections::HashSet<NodeId> =
            (0..r).map(|i| chain.middle(b, i)).collect();
        if let Some(res) = adversary_core(
            chain.graph(),
            &left,
            &right,
            |v| middles.contains(&v),
            system,
        ) {
            if best.as_ref().is_none_or(|b| res.ratio() > b.ratio()) {
                best = Some(res);
            }
        }
    }
    best
}

/// The shared pigeonhole/matching search (Lemma 8.1 body), generic over
/// which vertices count as middles so both the single gadget and chain
/// blocks can use it.
fn adversary_core(
    g: &sor_graph::Graph,
    left: &[NodeId],
    right: &[NodeId],
    is_middle: impl Fn(NodeId) -> bool,
    system: &PathSystem,
) -> Option<AdversaryResult> {
    let m = left.len();
    assert_eq!(m, right.len());
    // Middle-set signature of each covered leaf pair.
    let mut mids_of: BTreeMap<(usize, usize), BTreeSet<u32>> = BTreeMap::new();
    for (i, &l) in left.iter().enumerate() {
        for (j, &r) in right.iter().enumerate() {
            let paths = system.paths(l, r);
            if paths.is_empty() {
                continue;
            }
            let mut mids = BTreeSet::new();
            for p in paths {
                for &v in p.nodes() {
                    if is_middle(v) {
                        mids.insert(v.0);
                    }
                }
            }
            assert!(
                !mids.is_empty(),
                "a leaf-to-leaf path must cross a middle vertex"
            );
            mids_of.insert((i, j), mids);
        }
    }
    if mids_of.is_empty() {
        return None;
    }

    // Candidate hitting sets: the distinct signatures plus a capped number
    // of pairwise unions (richer S can trade |S| for a larger matching).
    let mut candidates: Vec<BTreeSet<u32>> = mids_of.values().cloned().collect();
    candidates.sort();
    candidates.dedup();
    let base = candidates.clone();
    const UNION_CAP: usize = 40;
    'outer: for (a_idx, a) in base.iter().enumerate() {
        for b in base.iter().skip(a_idx + 1) {
            if candidates.len() >= base.len() + UNION_CAP {
                break 'outer;
            }
            let u: BTreeSet<u32> = a.union(b).copied().collect();
            if !candidates.contains(&u) {
                candidates.push(u);
            }
        }
    }

    type BestCut = (f64, BTreeSet<u32>, Vec<(usize, usize)>);
    let mut best: Option<BestCut> = None;
    for s_set in &candidates {
        // Pairs fully confined to s_set.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (&(i, j), mids) in &mids_of {
            if mids.is_subset(s_set) {
                adj[i].push(j);
            }
        }
        let matching = max_matching(m, m, &adj);
        if matching.is_empty() {
            continue;
        }
        let ratio = matching.len() as f64 / s_set.len() as f64;
        if best
            .as_ref()
            .is_none_or(|(r, _, bm)| ratio > *r || (ratio == *r && matching.len() > bm.len()))
        {
            best = Some((ratio, s_set.clone(), matching));
        }
    }
    let (certified, s_set, matching) = best?;

    let demand = Demand::from_pairs(matching.iter().map(|&(i, j)| (left[i], right[j])));
    let opt = max_concurrent_flow(g, &demand, 0.1);
    Some(AdversaryResult {
        matched: matching.len(),
        hitting_set: s_set.iter().map(|&v| NodeId(v)).collect(),
        certified_congestion: certified,
        opt_upper: opt.congestion_upper,
        demand,
    })
}

/// Generic adversarial demand search: hill-climb over permutation
/// (matching) demands to maximize the competitive ratio of a *given*
/// semi-oblivious routing. Unlike [`adversarial_demand`] (which exploits
/// the two-star structure with a certificate), this is a black-box local
/// search usable on any graph — the executable counterpart of "an
/// adversary picks the worst demand in Stage 3". Returns the demand and
/// its measured ratio.
///
/// Moves: swap the targets of two pairs, redirect a pair to an unused
/// vertex, or drop/add a pair; greedy accept. `iters` total proposals.
pub fn search_hard_demand<R: rand::Rng>(
    sor: &crate::semioblivious::SemiObliviousRouting,
    num_pairs: usize,
    eps: f64,
    iters: usize,
    rng: &mut R,
) -> (Demand, f64) {
    use rand::seq::SliceRandom;
    let g = sor.graph();
    let n = g.num_nodes();
    assert!(2 * num_pairs <= n, "matching too large for the graph");

    let ratio_of = |d: &Demand| -> f64 {
        if d.support_size() == 0 || !sor.covers(d) {
            return 0.0;
        }
        let c = sor.congestion(d, eps);
        let opt = max_concurrent_flow(g, d, eps).congestion_upper;
        c / opt.max(1e-12)
    };

    // start from a random matching
    let random_matching = |rng: &mut R| -> Vec<(NodeId, NodeId)> {
        let mut nodes: Vec<NodeId> = g.nodes().collect();
        nodes.shuffle(rng);
        (0..num_pairs)
            .map(|i| (nodes[2 * i], nodes[2 * i + 1]))
            .collect()
    };
    let mut pairs = random_matching(rng);
    let mut best_d = Demand::from_pairs(pairs.iter().copied());
    let mut best_r = ratio_of(&best_d);
    // ratio of the *current* climb position (may sit below the global
    // best right after a restart)
    let mut cur_r = best_r;

    // Restart from a fresh random matching after this many proposals
    // without improvement: a single unlucky start can otherwise trap the
    // climb below the plain random-matching baseline.
    let stall_limit = (iters / 4).max(5);
    let mut stalled = 0usize;

    for _ in 0..iters {
        if stalled >= stall_limit {
            stalled = 0;
            let cand = random_matching(rng);
            let d = Demand::from_pairs(cand.iter().copied());
            if d.is_permutation() {
                cur_r = ratio_of(&d);
                pairs = cand;
                if cur_r > best_r {
                    best_r = cur_r;
                    best_d = d;
                }
            }
        }
        let mut cand = pairs.clone();
        match rng.gen_range(0..3) {
            0 if cand.len() >= 2 => {
                // swap targets of two pairs
                let i = rng.gen_range(0..cand.len());
                let j = rng.gen_range(0..cand.len());
                if i != j {
                    let (ti, tj) = (cand[i].1, cand[j].1);
                    cand[i].1 = tj;
                    cand[j].1 = ti;
                }
            }
            1 => {
                // redirect one endpoint to an unused vertex
                let used: std::collections::HashSet<NodeId> =
                    cand.iter().flat_map(|&(a, b)| [a, b]).collect();
                let free: Vec<NodeId> = g.nodes().filter(|v| !used.contains(v)).collect();
                if let Some(&v) = free.as_slice().choose(rng) {
                    let i = rng.gen_range(0..cand.len());
                    if rng.gen_bool(0.5) {
                        cand[i].0 = v;
                    } else {
                        cand[i].1 = v;
                    }
                }
            }
            _ => {
                // reverse a pair's direction
                let i = rng.gen_range(0..cand.len());
                cand[i] = (cand[i].1, cand[i].0);
            }
        }
        if cand.iter().any(|&(a, b)| a == b) {
            stalled += 1;
            continue;
        }
        let d = Demand::from_pairs(cand.iter().copied());
        if !d.is_permutation() {
            stalled += 1;
            continue;
        }
        let r = ratio_of(&d);
        if r > cur_r {
            cur_r = r;
            pairs = cand;
            stalled = 0;
            if r > best_r {
                best_r = r;
                best_d = d;
            }
        } else {
            stalled += 1;
        }
    }
    (best_d, best_r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_k;
    use crate::semioblivious::SemiObliviousRouting;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_oblivious::KspRouting;

    #[test]
    fn hard_demand_search_beats_random() {
        // On the two-star gadget with a sparse system, hill-climbing must
        // find a demand at least as bad as a random matching.
        let ts = TwoStar::new(3, 6);
        let g = ts.graph().clone();
        let base = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(11);
        let pairs = crate::sample::all_pairs(&g);
        let system = sample_k(&base, &pairs, 1, &mut rng).system;
        let sor = SemiObliviousRouting::new(g.clone(), system);
        let eps = 0.2;
        // random baseline
        let mut best_random: f64 = 0.0;
        for seed in 0..3 {
            let mut drng = StdRng::seed_from_u64(100 + seed);
            let d = sor_flow::demand::random_matching(&g, 3, &mut drng);
            if sor.covers(&d) && d.support_size() > 0 {
                let c = sor.congestion(&d, eps);
                let opt = max_concurrent_flow(&g, &d, eps).congestion_upper;
                best_random = best_random.max(c / opt.max(1e-12));
            }
        }
        let (hard, ratio) = search_hard_demand(&sor, 3, eps, 60, &mut rng);
        assert!(hard.is_permutation());
        assert!(
            ratio >= best_random - 1e-9,
            "search ({ratio}) should not lose to random ({best_random})"
        );
        assert!(ratio >= 1.0, "ratio {ratio} below 1");
    }

    /// Install a 1-sparse system on a TwoStar by sampling 1 path per leaf
    /// pair from a KSP routing with random-ish tie-breaking.
    fn one_sparse_system(ts: &TwoStar, seed: u64) -> PathSystem {
        let g = ts.graph().clone();
        let r = KspRouting::new(g, ts.num_middles());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::new();
        for i in 0..ts.num_leaves() {
            for j in 0..ts.num_leaves() {
                pairs.push((ts.left_leaf(i), ts.right_leaf(j)));
            }
        }
        sample_k(&r, &pairs, 1, &mut rng).system
    }

    #[test]
    fn adversary_finds_bad_permutation_for_sparse_system() {
        // r = 4 middles, m = 12 leaves, 1 path per pair: pigeonhole forces
        // ≥ 12/4 = 3 pairs through one middle… the adversary should
        // certify congestion ≥ 2 with OPT ≈ 1, i.e. ratio > 1.
        let ts = TwoStar::new(4, 12);
        let system = one_sparse_system(&ts, 3);
        let res = adversarial_demand(&ts, &system).expect("covered pairs exist");
        assert!(res.matched >= 2);
        assert!(
            res.certified_congestion >= 1.5,
            "certified {}",
            res.certified_congestion
        );
        assert!(res.ratio() > 1.2, "ratio {}", res.ratio());
        assert!(res.demand.is_permutation());
    }

    #[test]
    fn certificate_is_honest() {
        // The actual restricted routing congestion must be at least the
        // certificate.
        let ts = TwoStar::new(3, 9);
        let system = one_sparse_system(&ts, 5);
        let res = adversarial_demand(&ts, &system).expect("covered");
        let sor = SemiObliviousRouting::new(ts.graph().clone(), system);
        if sor.covers(&res.demand) {
            let actual = sor.congestion(&res.demand, 0.1);
            assert!(
                actual >= res.certified_congestion * 0.9,
                "actual {actual} below certificate {}",
                res.certified_congestion
            );
        }
    }

    #[test]
    fn dense_system_defeats_adversary() {
        // With all r middles available per pair the certificate can't
        // exceed q/r ≈ OPT, so the ratio stays near 1.
        let ts = TwoStar::new(4, 8);
        let g = ts.graph().clone();
        let r = KspRouting::new(g, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut pairs = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                pairs.push((ts.left_leaf(i), ts.right_leaf(j)));
            }
        }
        // sample enough to (almost surely) see every middle per pair
        let system = sample_k(&r, &pairs, 40, &mut rng).system;
        let res = adversarial_demand(&ts, &system).expect("covered");
        assert!(
            res.ratio() < 2.5,
            "dense system should not be very exploitable, got ratio {}",
            res.ratio()
        );
    }

    #[test]
    fn chain_adversary_attacks_the_weakest_block() {
        // Chain two gadgets of different scales with sparse systems:
        // the bigger-r block yields the bigger certified ratio, and the
        // chain adversary must find it.
        use sor_graph::gen::TwoStarChain;
        let chain = TwoStarChain::new(&[(2, 6), (5, 15)]);
        let g = chain.graph().clone();
        let r = KspRouting::new(g, 6);
        let mut rng = StdRng::seed_from_u64(8);
        let mut pairs = Vec::new();
        for b in 0..2 {
            let (_, m) = chain.spec(b);
            for i in 0..m {
                for j in 0..m {
                    pairs.push((chain.left_leaf(b, i), chain.right_leaf(b, j)));
                }
            }
        }
        let system = sample_k(&r, &pairs, 1, &mut rng).system;
        let res = adversarial_demand_chain(&chain, &system).expect("covered");
        assert!(res.ratio() > 2.0, "chain ratio {}", res.ratio());
        // the winning demand should live in the large block: its leaves
        // have ids ≥ the block-1 offset
        let min_node = res
            .demand
            .entries()
            .iter()
            .map(|&(s, _, _)| s.0)
            .min()
            .unwrap();
        let (off1, _) = chain.centers(1);
        assert!(
            min_node >= off1.0,
            "adversary should attack the sparser-covered large block"
        );
    }

    #[test]
    fn matching_is_a_matching() {
        let adj = vec![vec![0, 1], vec![0], vec![0]];
        let m = max_matching(3, 2, &adj);
        assert_eq!(m.len(), 2);
        let mut ls: Vec<_> = m.iter().map(|&(l, _)| l).collect();
        let mut rs: Vec<_> = m.iter().map(|&(_, r)| r).collect();
        ls.sort();
        rs.sort();
        ls.dedup();
        rs.dedup();
        assert_eq!(ls.len(), 2);
        assert_eq!(rs.len(), 2);
    }
}
