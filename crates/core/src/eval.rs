//! Competitiveness evaluation (Stage 5): compare the semi-oblivious
//! congestion against the offline optimum and against the base oblivious
//! routing.

use crate::semioblivious::SemiObliviousRouting;
use sor_flow::{max_concurrent_flow, Demand};
use sor_oblivious::routing::{oblivious_congestion, ObliviousRouting};

/// Evaluation of one demand.
#[derive(Clone, Debug)]
pub struct DemandEval {
    /// Semi-oblivious congestion `cong(P, D)` (fractional, MWU-solved).
    pub semi_cong: f64,
    /// Offline optimum, upper bound (achieved by an explicit routing).
    pub opt_upper: f64,
    /// Offline optimum, certified lower bound.
    pub opt_lower: f64,
    /// Congestion of the base oblivious routing on the same demand, if a
    /// base routing was supplied.
    pub oblivious_cong: Option<f64>,
}

impl DemandEval {
    /// Competitive ratio against the offline optimum, using the *upper*
    /// bound (the conservative / pessimistic ratio: a feasible routing
    /// exists with that congestion, so the true ratio is at least
    /// `semi_cong / opt_upper`).
    pub fn ratio_vs_opt(&self) -> f64 {
        self.semi_cong / self.opt_upper.max(1e-12)
    }

    /// Competitive ratio certified from the lower bound (never
    /// underestimates how competitive we are).
    pub fn certified_ratio(&self) -> f64 {
        self.semi_cong / self.opt_lower.max(1e-12)
    }

    /// Ratio against the base oblivious routing (Definition 5.1's
    /// "competitive with R"), if available.
    pub fn ratio_vs_oblivious(&self) -> Option<f64> {
        self.oblivious_cong.map(|c| self.semi_cong / c.max(1e-12))
    }
}

/// Aggregate over a demand set.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// One evaluation per demand, in input order.
    pub per_demand: Vec<DemandEval>,
}

impl EvalReport {
    /// Worst (max) ratio vs OPT-upper over the demand set — the empirical
    /// competitive ratio.
    pub fn worst_ratio(&self) -> f64 {
        self.per_demand
            .iter()
            .map(DemandEval::ratio_vs_opt)
            .fold(0.0, f64::max)
    }

    /// Mean ratio vs OPT-upper.
    pub fn mean_ratio(&self) -> f64 {
        if self.per_demand.is_empty() {
            return 0.0;
        }
        self.per_demand
            .iter()
            .map(DemandEval::ratio_vs_opt)
            .sum::<f64>()
            / self.per_demand.len() as f64
    }

    /// Worst ratio vs the base oblivious routing, if all entries have one.
    pub fn worst_ratio_vs_oblivious(&self) -> Option<f64> {
        self.per_demand
            .iter()
            .map(DemandEval::ratio_vs_oblivious)
            .try_fold(0.0f64, |acc, r| r.map(|x| acc.max(x)))
    }
}

/// Evaluate a semi-oblivious routing on a set of demands. `base` is the
/// oblivious routing the system was sampled from (pass `None` to skip the
/// vs-oblivious comparison). `eps` controls both MWU solvers.
pub fn evaluate<O: ObliviousRouting>(
    sor: &SemiObliviousRouting,
    demands: &[Demand],
    base: Option<&O>,
    eps: f64,
) -> EvalReport {
    let per_demand = demands
        .iter()
        .map(|d| {
            let semi = sor.congestion(d, eps);
            let opt = max_concurrent_flow(sor.graph(), d, eps);
            DemandEval {
                semi_cong: semi,
                opt_upper: opt.congestion_upper,
                opt_lower: opt.congestion_lower,
                oblivious_cong: base.map(|r| oblivious_congestion(r, d)),
            }
        })
        .collect();
    EvalReport { per_demand }
}

/// `evaluate` without a base routing (helps type inference at call sites
/// that pass `None`).
pub fn evaluate_vs_opt(sor: &SemiObliviousRouting, demands: &[Demand], eps: f64) -> EvalReport {
    evaluate::<sor_oblivious::KspRouting>(sor, demands, None, eps)
}

/// Integral evaluation (Section 6): the integral semi-oblivious congestion
/// (Definition 6.1, via rounding + local search) against the *exact*
/// integral offline optimum, computed by exhaustive search — tiny
/// instances only.
#[derive(Clone, Debug)]
pub struct IntegralEval {
    /// Integral semi-oblivious congestion.
    pub semi_int: f64,
    /// Exact integral offline optimum.
    pub opt_int: f64,
}

impl IntegralEval {
    /// The integral competitive ratio.
    pub fn ratio(&self) -> f64 {
        self.semi_int / self.opt_int.max(1e-12)
    }
}

/// Enumerate **every** permutation demand with exactly `k` disjoint pairs
/// over `nodes` — the quantifier "for all permutation demands" from the
/// theorem statements, made finite. Counts grow like `n!/(n−2k)!/k!`;
/// keep `nodes` and `k` tiny (the exhaustive tests use n ≤ 8, k ≤ 3).
pub fn enumerate_matching_demands(nodes: &[sor_graph::NodeId], k: usize) -> Vec<Demand> {
    // All ordered pairs, then all index-increasing vertex-disjoint
    // k-subsets: each unordered set of k ordered pairs appears exactly
    // once. C(n(n−1), k) — tiny inputs only.
    let mut cands: Vec<(sor_graph::NodeId, sor_graph::NodeId)> = Vec::new();
    for &a in nodes {
        for &b in nodes {
            if a != b {
                cands.push((a, b));
            }
        }
    }
    let mut out = Vec::new();
    let mut chosen: Vec<(sor_graph::NodeId, sor_graph::NodeId)> = Vec::new();
    fn rec(
        cands: &[(sor_graph::NodeId, sor_graph::NodeId)],
        from: usize,
        k: usize,
        chosen: &mut Vec<(sor_graph::NodeId, sor_graph::NodeId)>,
        out: &mut Vec<Demand>,
    ) {
        if chosen.len() == k {
            out.push(Demand::from_pairs(chosen.iter().copied()));
            return;
        }
        for i in from..cands.len() {
            let (s, t) = cands[i];
            if chosen
                .iter()
                .any(|&(a, b)| a == s || a == t || b == s || b == t)
            {
                continue;
            }
            chosen.push((s, t));
            rec(cands, i + 1, k, chosen, out);
            chosen.pop();
        }
    }
    rec(&cands, 0, k, &mut chosen, &mut out);
    out
}

/// Worst competitive ratio of `sor` over **every** `k`-pair permutation
/// demand on the given endpoints (exhaustive — the finite version of
/// Stage 3's adversary).
pub fn exhaustive_worst_ratio(
    sor: &SemiObliviousRouting,
    endpoints: &[sor_graph::NodeId],
    k: usize,
    eps: f64,
) -> (f64, usize) {
    let demands = enumerate_matching_demands(endpoints, k);
    let mut worst: f64 = 0.0;
    for d in &demands {
        if !sor.covers(d) {
            continue;
        }
        let c = sor.congestion(d, eps);
        let opt = max_concurrent_flow(sor.graph(), d, eps).congestion_upper;
        worst = worst.max(c / opt.max(1e-12));
    }
    (worst, demands.len())
}

/// Evaluate the integral pipeline on one integral demand against the
/// brute-force integral optimum. The exact solver enumerates all simple
/// paths per pair — keep graphs and demands tiny.
pub fn evaluate_integral<R: rand::Rng>(
    sor: &SemiObliviousRouting,
    demand: &Demand,
    eps: f64,
    rng: &mut R,
) -> IntegralEval {
    assert!(demand.is_integral());
    let semi = sor.route_integral(demand, eps, rng);
    let opt = sor_flow::exact::exact_integral_opt(sor.graph(), demand);
    IntegralEval {
        semi_int: semi.congestion,
        opt_int: opt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{demand_pairs, sample_k};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::gen;
    use sor_oblivious::ValiantHypercube;

    #[test]
    fn log_sample_on_hypercube_is_competitive() {
        // The headline: O(log n) sampled paths ⇒ small competitive ratio
        // on permutation demands (Theorem 2.3's measured analogue).
        let d = 5;
        let g = gen::hypercube(d);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(42);
        let demands: Vec<Demand> = (0..2)
            .map(|_| sor_flow::demand::random_permutation(&g, &mut rng))
            .collect();
        let mut pairs = Vec::new();
        for dm in &demands {
            pairs.extend(demand_pairs(dm));
        }
        pairs.sort();
        pairs.dedup();
        let sampled = sample_k(&r, &pairs, d, &mut rng); // k = log n
        let sor = SemiObliviousRouting::new(g, sampled.system);
        let report = evaluate(&sor, &demands, Some(&r), 0.15);
        assert!(
            report.worst_ratio() < 6.0,
            "log-sparsity ratio {} too large on Q_{d}",
            report.worst_ratio()
        );
        assert!(report.mean_ratio() >= 0.5);
        let vs_obl = report.worst_ratio_vs_oblivious().unwrap();
        assert!(vs_obl < 4.0, "vs-oblivious ratio {vs_obl}");
    }

    #[test]
    fn enumeration_counts_and_shapes() {
        let nodes: Vec<sor_graph::NodeId> = (0..4).map(sor_graph::NodeId).collect();
        // k=1 on 4 nodes: 4·3 = 12 ordered pairs
        let one = enumerate_matching_demands(&nodes, 1);
        assert_eq!(one.len(), 12);
        for d in &one {
            assert!(d.is_permutation());
            assert_eq!(d.support_size(), 1);
        }
        // k=2 on 4 nodes: 3 perfect-matching partitions × 2 directions each
        // per pair = 3·4 = 12
        let two = enumerate_matching_demands(&nodes, 2);
        assert_eq!(two.len(), 12);
        for d in &two {
            assert!(d.is_permutation());
            assert_eq!(d.support_size(), 2);
        }
    }

    #[test]
    fn exhaustive_all_demands_on_cycle() {
        // The paper's headline quantifier, exhaustively: ONE sampled
        // system must be competitive on EVERY 2-pair permutation demand.
        let g = gen::cycle_graph(6);
        let base = sor_oblivious::KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(9);
        let pairs = crate::sample::all_pairs(&g);
        let sampled = sample_k(&base, &pairs, 4, &mut rng);
        let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
        let nodes: Vec<sor_graph::NodeId> = g.nodes().collect();
        let (worst, count) = exhaustive_worst_ratio(&sor, &nodes, 2, 0.15);
        assert!(count > 50, "enumeration too small: {count}");
        assert!(
            worst < 2.6,
            "one installed system must serve all {count} demands; worst ratio {worst}"
        );
    }

    #[test]
    fn integral_eval_on_cycle() {
        // C8, 3 unit pairs, 2 candidate paths each: the integral ratio
        // must be finite and at least 1 (exact OPT is exact).
        let g = gen::cycle_graph(8);
        let base = sor_oblivious::KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let demand = Demand::from_pairs([
            (sor_graph::NodeId(0), sor_graph::NodeId(4)),
            (sor_graph::NodeId(1), sor_graph::NodeId(5)),
            (sor_graph::NodeId(2), sor_graph::NodeId(6)),
        ]);
        let sampled = sample_k(&base, &demand_pairs(&demand), 2, &mut rng);
        let sor = SemiObliviousRouting::new(g, sampled.system);
        let ev = evaluate_integral(&sor, &demand, 0.1, &mut rng);
        assert!(ev.opt_int >= 1.0);
        assert!(ev.ratio() >= 1.0 - 1e-9, "ratio {}", ev.ratio());
        assert!(ev.ratio() < 4.0, "ratio {}", ev.ratio());
    }

    #[test]
    fn report_aggregation() {
        let e1 = DemandEval {
            semi_cong: 2.0,
            opt_upper: 1.0,
            opt_lower: 0.9,
            oblivious_cong: Some(4.0),
        };
        let e2 = DemandEval {
            semi_cong: 3.0,
            opt_upper: 1.0,
            opt_lower: 1.0,
            oblivious_cong: Some(3.0),
        };
        let r = EvalReport {
            per_demand: vec![e1, e2],
        };
        assert!((r.worst_ratio() - 3.0).abs() < 1e-12);
        assert!((r.mean_ratio() - 2.5).abs() < 1e-12);
        assert!((r.worst_ratio_vs_oblivious().unwrap() - 1.0).abs() < 1e-12);
    }
}
