//! Negative association and Chernoff machinery (Appendix B), as numeric
//! functions.
//!
//! The Main Lemma's probability calculus rests on two facts: (i) the
//! per-pair sampling indicators are negatively associated (Lemmas B.2/B.3),
//! so (ii) Chernoff upper-tail bounds apply to disjoint subset sums and
//! multiply across disjoint subsets (Lemmas B.4–B.6). This module exposes
//! the bounds as functions — the E7 experiment overlays them on measured
//! failure rates — plus an empirical negative-correlation checker used by
//! tests.

/// Chernoff upper tail for a sum of 0/1 negatively associated variables
/// with mean `mu`: `P[X ≥ a] ≤ exp(a − mu − a·ln(a/mu))` for `a > mu`
/// (the `(e·mu/a)^a·e^{−mu}` form, Lemma B.5/B.6 combined); 1 otherwise.
pub fn chernoff_upper_tail(mu: f64, a: f64) -> f64 {
    assert!(mu >= 0.0 && a >= 0.0);
    // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
    if a <= mu || mu == 0.0 {
        // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
        return if mu == 0.0 && a > 0.0 { 0.0 } else { 1.0 };
    }
    (a - mu - a * (a / mu).ln()).exp().min(1.0)
}

/// The multiplied bound for `k` simultaneous lower-bounded disjoint subset
/// sums (Lemma B.4 + independence of the bounds): product of individual
/// tails.
pub fn joint_tail(tails: &[f64]) -> f64 {
    tails.iter().product::<f64>().min(1.0)
}

/// The union-bound failure estimate the Main Lemma assembles:
/// `#patterns · max-pattern-probability`, clamped to 1.
pub fn union_bound(count: f64, per_event: f64) -> f64 {
    (count * per_event).min(1.0)
}

/// The paper's predicted competitiveness shape for an `s`-sample on an
/// `n`-vertex graph (Theorem 2.5): `n^{Θ(1/s)}`, up to polylogs. Used to
/// overlay theory curves in the benches; the constant in the exponent is
/// normalized to 1.
pub fn predicted_ratio_shape(n: usize, s: usize) -> f64 {
    assert!(s >= 1);
    (n as f64).powf(1.0 / s as f64)
}

/// Empirical Pearson correlation between two samples (tests use this to
/// confirm the per-pair sampling indicators are not positively
/// correlated).
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chernoff_basic_shape() {
        // Tail decreases in a, increases in mu; trivial below the mean.
        assert_eq!(chernoff_upper_tail(5.0, 4.0), 1.0);
        let t1 = chernoff_upper_tail(5.0, 10.0);
        let t2 = chernoff_upper_tail(5.0, 20.0);
        assert!(t2 < t1 && t1 < 1.0);
        assert!(chernoff_upper_tail(1.0, 10.0) < chernoff_upper_tail(5.0, 10.0));
        assert_eq!(chernoff_upper_tail(0.0, 3.0), 0.0);
    }

    #[test]
    fn chernoff_dominates_simulation() {
        // Binomial(100, 0.05), mean 5: measured P[X ≥ 15] must be below
        // the bound.
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let x: u32 = (0..100).map(|_| u32::from(rng.gen_bool(0.05))).sum();
            if x >= 15 {
                hits += 1;
            }
        }
        let measured = hits as f64 / trials as f64;
        let bound = chernoff_upper_tail(5.0, 15.0);
        assert!(
            measured <= bound + 0.005,
            "measured {measured} exceeds Chernoff bound {bound}"
        );
    }

    #[test]
    fn joint_and_union() {
        assert!((joint_tail(&[0.1, 0.2]) - 0.02).abs() < 1e-12);
        assert_eq!(union_bound(1e9, 0.5), 1.0);
        assert!((union_bound(10.0, 1e-3) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn predicted_shape_decreases_exponentially_in_s() {
        let n = 1 << 10;
        let r1 = predicted_ratio_shape(n, 1);
        let r2 = predicted_ratio_shape(n, 2);
        let r4 = predicted_ratio_shape(n, 4);
        assert!((r1 - 1024.0).abs() < 1e-9);
        assert!((r2 - 32.0).abs() < 1e-9);
        assert!((r4 - r2.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn multinomial_counts_negatively_correlated() {
        // Sampling k paths among s options: indicator counts of two
        // distinct options are negatively correlated (the Lemma B.2/B.3
        // structure the proof relies on).
        let mut rng = StdRng::seed_from_u64(7);
        let (k, s, trials) = (8usize, 4usize, 5000usize);
        let mut xs = Vec::with_capacity(trials);
        let mut ys = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut counts = vec![0.0; s];
            for _ in 0..k {
                counts[rng.gen_range(0..s)] += 1.0;
            }
            xs.push(counts[0]);
            ys.push(counts[1]);
        }
        let c = correlation(&xs, &ys);
        assert!(c < 0.0, "expected negative correlation, got {c}");
        assert!(c > -0.8, "implausibly strong correlation {c}");
    }
}
