//! The dynamic deletion process of Section 5.3 — the executable heart of
//! the Main Lemma's proof.
//!
//! "Pretend to send packets on all candidate paths at once, and delete the
//! edges that get overcongested (together with all candidate paths
//! crossing that edge)": edges are scanned once in a fixed order; an edge
//! whose current load exceeds the threshold `τ` kills every surviving
//! draw crossing it. If at least half the total weight survives, *weak
//! routing* succeeds (Definition 5.4) — and Lemma 5.8 lifts weak routing
//! to full routing at one extra log factor.
//!
//! The Main Lemma proves the failure probability is `exp(-Ω(|D|))`;
//! experiment E7 measures exactly that curve by Monte Carlo over this
//! process.

use crate::sample::{demand_pairs, sample_k, SampledSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_flow::{Demand, EdgeLoads};
use sor_graph::{EdgeId, Graph, NodeId};
use sor_oblivious::routing::ObliviousRouting;

/// Outcome of one run of the deletion process.
#[derive(Clone, Debug)]
pub struct ProcessOutcome {
    /// Total initial weight (`= |D|` for weights `D(u,v)/N_{u,v}` per
    /// draw).
    pub total_weight: f64,
    /// Weight still alive after the scan.
    pub survived_weight: f64,
    /// Edges found overcongested, in scan order.
    pub overcongested: Vec<EdgeId>,
    /// Weight deleted while processing each edge (indexed by `EdgeId`) —
    /// the vector a bad pattern (Definition 5.11) abstracts.
    pub deleted_at: Vec<f64>,
    /// Loads of the surviving draws (every edge is ≤ τ·cap by
    /// construction).
    pub final_loads: EdgeLoads,
}

impl ProcessOutcome {
    /// Weak-routing success: at least half the weight survived.
    pub fn weak_success(&self) -> bool {
        self.survived_weight >= self.total_weight / 2.0 - 1e-12
    }

    /// Fraction of weight that survived.
    pub fn survival_fraction(&self) -> f64 {
        // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
        if self.total_weight == 0.0 {
            1.0
        } else {
            self.survived_weight / self.total_weight
        }
    }
}

/// Run the deletion process: each draw of pair `(u,v)` initially carries
/// weight `D(u,v) / N_{u,v}`; edges are scanned in `EdgeId` order with
/// congestion threshold `tau` (relative to capacity).
pub fn deletion_process(
    g: &Graph,
    sampled: &SampledSystem,
    demand: &Demand,
    tau: f64,
) -> ProcessOutcome {
    deletion_process_detailed(g, sampled, demand, tau).0
}

/// Like [`deletion_process`], additionally returning the per-draw alive
/// flags for every demanded pair (indices follow the draw order of
/// `sampled.raw`) — the certificate the weak-to-strong reduction consumes.
pub fn deletion_process_detailed(
    g: &Graph,
    sampled: &SampledSystem,
    demand: &Demand,
    tau: f64,
) -> (
    ProcessOutcome,
    std::collections::HashMap<(NodeId, NodeId), Vec<bool>>,
) {
    assert!(tau > 0.0);
    // Flatten draws with their weights; zero-demand pairs contribute
    // nothing.
    let mut weight_of_pair = std::collections::HashMap::new();
    for &(s, t, d) in demand.entries() {
        weight_of_pair.insert((s, t), d);
    }
    struct Draw<'a> {
        pair: (NodeId, NodeId),
        path: &'a sor_graph::Path,
        weight: f64,
        alive: bool,
    }
    let mut draws: Vec<Draw> = Vec::new();
    let mut total_weight = 0.0;
    for ((s, t), paths) in &sampled.raw {
        let d = *weight_of_pair.get(&(*s, *t)).unwrap_or(&0.0);
        // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
        if d == 0.0 || paths.is_empty() {
            continue;
        }
        let w = d / paths.len() as f64;
        for p in paths {
            draws.push(Draw {
                pair: (*s, *t),
                path: p,
                weight: w,
                alive: true,
            });
            total_weight += w;
        }
    }

    // Index: draws crossing each edge.
    let mut crossing: Vec<Vec<u32>> = vec![Vec::new(); g.num_edges()];
    let mut loads = EdgeLoads::for_graph(g);
    #[allow(clippy::cast_possible_truncation)]
    for (i, d) in draws.iter().enumerate() {
        for &e in d.path.edges() {
            // sor-check: allow(lossy-cast) — draw count < u32::MAX by construction
            crossing[e.index()].push(i as u32);
        }
        loads.add_path(d.path, d.weight);
    }

    let mut overcongested = Vec::new();
    let mut deleted_at = vec![0.0; g.num_edges()];
    for e in g.edge_ids() {
        let cong = loads.load(e) / g.cap(e);
        if cong > tau {
            overcongested.push(e);
            let mut deleted_here = 0.0;
            for &di in &crossing[e.index()] {
                // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
                let d = &mut draws[di as usize];
                if d.alive {
                    d.alive = false;
                    deleted_here += d.weight;
                    loads.add_path(d.path, -d.weight);
                }
            }
            deleted_at[e.index()] = deleted_here;
        }
    }

    let survived_weight = draws.iter().filter(|d| d.alive).map(|d| d.weight).sum();
    let mut alive_of: std::collections::HashMap<(NodeId, NodeId), Vec<bool>> =
        std::collections::HashMap::new();
    for d in &draws {
        alive_of.entry(d.pair).or_default().push(d.alive);
    }
    (
        ProcessOutcome {
            total_weight,
            survived_weight,
            overcongested,
            deleted_at,
            final_loads: loads,
        },
        alive_of,
    )
}

/// Monte-Carlo estimate of the weak-routing failure rate: for `trials`
/// independent `k`-samples of `routing` over the support of `demand`,
/// the fraction of runs where [`ProcessOutcome::weak_success`] fails.
pub fn weak_failure_rate<O: ObliviousRouting>(
    g: &Graph,
    routing: &O,
    demand: &Demand,
    k: usize,
    tau: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0);
    let pairs = demand_pairs(demand);
    let mut failures = 0usize;
    for t in 0..trials {
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
        let sampled = sample_k(routing, &pairs, k, &mut rng);
        let outcome = deletion_process(g, &sampled, demand, tau);
        if !outcome.weak_success() {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

/// Route the demand through the survivors of a deletion-process run:
/// every alive draw keeps its weight, giving a (partial) routing whose
/// congestion is ≤ τ and which routes `survived_weight` of the demand —
/// Lemma 5.10's certificate, as data.
pub fn surviving_routing(
    g: &Graph,
    sampled: &SampledSystem,
    demand: &Demand,
    tau: f64,
) -> (Demand, EdgeLoads) {
    let outcome = deletion_process(g, sampled, demand, tau);
    let survived = outcome.survival_fraction();
    let routed: Vec<(NodeId, NodeId, f64)> = demand
        .entries()
        .iter()
        .map(|&(s, t, d)| (s, t, d * survived))
        .collect();
    (Demand::from_triples(routed), outcome.final_loads)
}

/// The Lemma 5.8 weak-to-strong reduction, executable: repeatedly run the
/// deletion process on the *remaining* demand; pairs keeping at least a
/// quarter of their draws alive are routed **in full** over their
/// surviving draws (weight `D(u,v)/alive` each) and removed; the rest
/// carries to the next round. When the remaining demand is down to
/// `tail_fraction` of the original it is routed greedily over all draws
/// (the Lemma 5.16/5.17 tail bookkeeping: a tiny demand cannot congest
/// much). Returns the accumulated loads and the number of rounds, or
/// `None` if a round makes no progress within `max_rounds` (the sample
/// was not weakly competitive at threshold `tau`).
///
/// Each successful round removes a constant fraction of the remaining
/// pairs, so rounds = O(log |supp D|) — the log factor Lemma 5.8 pays —
/// and every round adds at most ~4·tau congestion.
pub fn weak_to_strong(
    g: &Graph,
    sampled: &SampledSystem,
    demand: &Demand,
    tau: f64,
    tail_fraction: f64,
    max_rounds: usize,
) -> Option<(EdgeLoads, usize)> {
    assert!(tau > 0.0 && (0.0..1.0).contains(&tail_fraction));
    let mut loads = EdgeLoads::for_graph(g);
    let mut remaining = demand.clone();
    let target_tail = demand.size() * tail_fraction;
    let mut rounds = 0usize;
    while remaining.size() > target_tail && remaining.support_size() > 0 {
        if rounds >= max_rounds {
            return None;
        }
        rounds += 1;
        let (_, alive_of) = deletion_process_detailed(g, sampled, &remaining, tau);
        let mut kept: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut routed_any = false;
        for &(s, t, d) in remaining.entries() {
            // A pair without flags was never sampled; it simply carries
            // to the next round like any non-competitive pair.
            let flags = alive_of.get(&(s, t));
            let draws = flags.and_then(|_| {
                sampled
                    .raw
                    .iter()
                    .find(|(pair, _)| *pair == (s, t))
                    .map(|(_, draws)| draws)
            });
            let alive = flags.map(|f| f.iter().filter(|&&a| a).count()).unwrap_or(0);
            let total = flags.map(Vec::len).unwrap_or(0);
            if let (Some(flags), Some(draws)) = (flags, draws) {
                if total > 0 && alive * 4 >= total {
                    // route this pair fully over its surviving draws
                    let per_draw = d / alive as f64;
                    for (p, &ok) in draws.iter().zip(flags) {
                        if ok {
                            loads.add_path(p, per_draw);
                        }
                    }
                    routed_any = true;
                    continue;
                }
            }
            kept.push((s, t, d));
        }
        if !routed_any {
            return None;
        }
        remaining = Demand::from_triples(kept);
    }
    // Tail: spread each leftover pair over all of its draws.
    for &(s, t, d) in remaining.entries() {
        let (_, draws) = sampled.raw.iter().find(|(pair, _)| *pair == (s, t))?;
        let per_draw = d / draws.len() as f64;
        for p in draws {
            loads.add_path(p, per_draw);
        }
    }
    Some((loads, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use sor_graph::gen;
    use sor_oblivious::{KspRouting, ValiantHypercube};

    #[test]
    fn no_deletions_when_threshold_high() {
        let g = gen::hypercube(4);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let demand = sor_flow::demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&r, &demand_pairs(&demand), 4, &mut rng);
        let out = deletion_process(&g, &sampled, &demand, 1e6);
        assert!(out.overcongested.is_empty());
        assert!(out.weak_success());
        assert!((out.survival_fraction() - 1.0).abs() < 1e-12);
        assert!((out.total_weight - demand.size()).abs() < 1e-9);
    }

    #[test]
    fn everything_dies_when_threshold_tiny() {
        let g = gen::cycle_graph(6);
        let r = KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(2);
        let demand = Demand::from_pairs([(NodeId(0), NodeId(3))]);
        let sampled = sample_k(&r, &demand_pairs(&demand), 4, &mut rng);
        let out = deletion_process(&g, &sampled, &demand, 1e-9);
        assert!(!out.weak_success());
        assert_eq!(out.survival_fraction(), 0.0);
        assert!(!out.overcongested.is_empty());
    }

    #[test]
    fn final_loads_respect_threshold() {
        let g = gen::hypercube(4);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let demand = sor_flow::demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&r, &demand_pairs(&demand), 3, &mut rng);
        let tau = 1.5;
        let out = deletion_process(&g, &sampled, &demand, tau);
        // After the scan every edge is at most its load when processed;
        // edges processed while overcongested were zeroed, and later
        // deletions only decrease loads. So final congestion ≤ τ… except
        // an edge may sit above τ if it was *below* τ when scanned and
        // never re-checked — the paper's process has the same one-pass
        // semantics, and the guarantee is only about edges at scan time.
        // What must hold: overcongested edges end with zero load.
        for &e in &out.overcongested {
            assert!(out.final_loads.load(e) < 1e-9);
        }
    }

    #[test]
    fn weak_failure_rate_decreases_with_k() {
        // The power of a few random choices, in process form: more sampled
        // paths ⇒ (weakly) fewer weak-routing failures at a fixed τ.
        let g = gen::hypercube(5);
        let r = ValiantHypercube::new(g.clone());
        let mut drng = StdRng::seed_from_u64(4);
        let demand = sor_flow::demand::random_permutation(&g, &mut drng);
        let tau = 2.0;
        let f1 = weak_failure_rate(&g, &r, &demand, 1, tau, 10, 100);
        let f6 = weak_failure_rate(&g, &r, &demand, 6, tau, 10, 100);
        assert!(
            f6 <= f1 + 1e-12,
            "failure rate should not increase with sparsity: k=1 → {f1}, k=6 → {f6}"
        );
    }

    #[test]
    fn survivors_route_claimed_fraction() {
        let g = gen::hypercube(4);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let demand = sor_flow::demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&r, &demand_pairs(&demand), 4, &mut rng);
        let (routed, loads) = surviving_routing(&g, &sampled, &demand, 2.0);
        assert!(routed.size() <= demand.size() + 1e-9);
        assert!(loads.congestion(&g).is_finite());
    }

    #[test]
    fn weak_to_strong_routes_everything() {
        // Hypercube, permutation demand, generous sparsity: the reduction
        // must route the full demand with congestion O(tau * rounds).
        let g = gen::hypercube(5);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(8);
        let demand = sor_flow::demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&r, &demand_pairs(&demand), 6, &mut rng);
        let tau = 2.0;
        let (loads, rounds) = weak_to_strong(&g, &sampled, &demand, tau, 0.01, 20)
            .expect("good sample should be weakly competitive");
        assert!(rounds >= 1);
        let cong = loads.congestion(&g);
        // every round adds <= ~4*tau (pairs routed over >= quarter of
        // their draws, each draw loaded <= 4x its process weight) + tail
        let bound = 4.0 * tau * rounds as f64 + 1.0;
        assert!(
            cong <= bound,
            "weak-to-strong congestion {cong} above {bound} ({rounds} rounds)"
        );
        // volume check: total load >= demand size (every unit crosses >= 1 edge)
        assert!(loads.total() >= demand.size() * 0.9);
    }

    #[test]
    fn weak_to_strong_fails_gracefully_at_tiny_tau() {
        let g = gen::cycle_graph(8);
        let r = KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(9);
        let demand = Demand::from_pairs([(NodeId(0), NodeId(4)), (NodeId(1), NodeId(5))]);
        let sampled = sample_k(&r, &demand_pairs(&demand), 2, &mut rng);
        // tau so small every draw overcongests: no round can progress
        assert!(weak_to_strong(&g, &sampled, &demand, 1e-6, 0.01, 5).is_none());
    }

    #[test]
    fn detailed_flags_match_summary() {
        let g = gen::hypercube(4);
        let r = ValiantHypercube::new(g.clone());
        let mut rng = StdRng::seed_from_u64(10);
        let demand = sor_flow::demand::random_permutation(&g, &mut rng);
        let sampled = sample_k(&r, &demand_pairs(&demand), 3, &mut rng);
        let (out, alive_of) = deletion_process_detailed(&g, &sampled, &demand, 1.2);
        let mut survived = 0.0;
        for &(s, t, d) in demand.entries() {
            if let Some(flags) = alive_of.get(&(s, t)) {
                let w = d / flags.len() as f64;
                survived += w * flags.iter().filter(|&&a| a).count() as f64;
            }
        }
        assert!((survived - out.survived_weight).abs() < 1e-9);
    }

    #[test]
    fn deleted_at_accounts_for_losses() {
        let g = gen::cycle_graph(8);
        let r = KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(6);
        let mut demand = Demand::new();
        for _ in 0..6 {
            let s = NodeId(rng.gen_range(0..8));
            let t = NodeId(rng.gen_range(0..8));
            if s != t {
                demand.add(s, t, 1.0);
            }
        }
        let sampled = sample_k(&r, &demand_pairs(&demand), 2, &mut rng);
        let out = deletion_process(&g, &sampled, &demand, 0.5);
        let deleted: f64 = out.deleted_at.iter().sum();
        assert!(
            (deleted - (out.total_weight - out.survived_weight)).abs() < 1e-9,
            "deletion bookkeeping inconsistent"
        );
    }

    use sor_graph::NodeId;
}
