//! Path systems (Definition 2.1): the combinatorial object a semi-oblivious
//! routing *is*.

use sor_graph::{EdgeId, Graph, NodeId, Path};
use std::collections::BTreeMap;

/// A collection of candidate simple paths per ordered vertex pair.
///
/// `s`-sparsity (Definition 2.1) is `max |P_{u,v}|`. Stored paths are
/// deduplicated per pair — the paper samples *with replacement*, but a path
/// system is a set of paths, so duplicates only lower the effective
/// sparsity. Iteration order is deterministic (pairs sorted by id, paths in
/// insertion order), which keeps all seeded experiments reproducible.
///
/// `PartialEq` compares the exact stored structure — same pairs, same
/// paths, same order — which is the round-trip contract the compact
/// snapshot codec (`sor-compact`) certifies against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathSystem {
    paths: BTreeMap<(u32, u32), Vec<Path>>,
}

impl PathSystem {
    /// Empty system.
    pub fn new() -> Self {
        PathSystem::default()
    }

    /// Add a candidate path for `(s, t)`; duplicates are ignored. Returns
    /// whether the path was new. Panics if the path does not run `s → t`.
    pub fn insert(&mut self, s: NodeId, t: NodeId, path: Path) -> bool {
        assert_eq!(path.source(), s, "path source mismatch");
        assert_eq!(path.target(), t, "path target mismatch");
        let v = self.paths.entry((s.0, t.0)).or_default();
        if v.contains(&path) {
            false
        } else {
            v.push(path);
            true
        }
    }

    /// Candidate paths for `(s, t)` (empty slice if the pair is absent).
    pub fn paths(&self, s: NodeId, t: NodeId) -> &[Path] {
        self.paths
            .get(&(s.0, t.0))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the pair has at least one candidate path.
    pub fn covers(&self, s: NodeId, t: NodeId) -> bool {
        !self.paths(s, t).is_empty()
    }

    /// Iterator over `(s, t, paths)`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, &[Path])> {
        self.paths
            .iter()
            .map(|(&(s, t), v)| (NodeId(s), NodeId(t), v.as_slice()))
    }

    /// Number of covered pairs.
    pub fn num_pairs(&self) -> usize {
        self.paths.len()
    }

    /// Total number of stored paths.
    pub fn total_paths(&self) -> usize {
        self.paths.values().map(Vec::len).sum()
    }

    /// The sparsity `max_{u,v} |P_{u,v}|` (0 for the empty system).
    pub fn sparsity(&self) -> usize {
        self.paths.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Maximum hop length over all stored paths (the system's worst-case
    /// dilation).
    pub fn dilation(&self) -> usize {
        self.paths
            .values()
            .flat_map(|v| v.iter().map(Path::hops))
            .max()
            .unwrap_or(0)
    }

    /// Remove every path that crosses any of `failed` edges (the TE
    /// failure-robustness operation: candidate sets shrink, rates are then
    /// re-adapted on the survivors). Pairs left with no paths are removed.
    pub fn without_edges(&self, failed: &[EdgeId]) -> PathSystem {
        let mut out = PathSystem::new();
        for (&(s, t), v) in &self.paths {
            let kept: Vec<Path> = v
                .iter()
                .filter(|p| !failed.iter().any(|&e| p.contains_edge(e)))
                .cloned()
                .collect();
            if !kept.is_empty() {
                out.paths.insert((s, t), kept);
            }
        }
        out
    }

    /// Union of two systems (per-pair path union, deduplicated).
    pub fn union(&self, other: &PathSystem) -> PathSystem {
        let mut out = self.clone();
        for (&(s, t), v) in &other.paths {
            for p in v {
                out.insert(NodeId(s), NodeId(t), p.clone());
            }
        }
        out
    }

    /// Check every stored path against the graph (tests / debug).
    pub fn validate(&self, g: &Graph) -> bool {
        self.validate_detailed(g, None).is_ok()
    }

    /// Like [`PathSystem::validate`], but reports *which* invariant broke.
    ///
    /// Checked invariants (Definition 2.1):
    /// * every pair has a non-empty path list (empty pairs are removed, not
    ///   stored),
    /// * every path runs `s → t` for its pair,
    /// * every path is a valid simple path of `g` (edges in bounds and
    ///   consecutive),
    /// * paths within a pair are distinct (a path system is a *set*),
    /// * with `sparsity_bound = Some(s)`, no pair holds more than `s`
    ///   paths — the `s`-sparsity promise a `k`-sample must keep.
    pub fn validate_detailed(
        &self,
        g: &Graph,
        sparsity_bound: Option<usize>,
    ) -> Result<(), String> {
        for (s, t, ps) in self.pairs() {
            if ps.is_empty() {
                return Err(format!("pair {s}→{t} stores an empty path list"));
            }
            if let Some(bound) = sparsity_bound {
                if ps.len() > bound {
                    return Err(format!(
                        "pair {s}→{t} holds {} paths, exceeding the sparsity bound {bound}",
                        ps.len()
                    ));
                }
            }
            for (i, p) in ps.iter().enumerate() {
                if p.source() != s || p.target() != t {
                    return Err(format!(
                        "pair {s}→{t} path {i} runs {}→{} instead",
                        p.source(),
                        p.target()
                    ));
                }
                if !p.validate(g) {
                    return Err(format!(
                        "pair {s}→{t} path {i} is not a simple path of the graph \
                         (out-of-bounds or non-consecutive edges)"
                    ));
                }
                if ps[..i].contains(p) {
                    return Err(format!("pair {s}→{t} stores path {i} twice"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_graph::{bfs_path, gen, yen_ksp};

    #[test]
    fn insert_dedup_and_sparsity() {
        let g = gen::cycle_graph(6);
        let mut sys = PathSystem::new();
        let ps = yen_ksp(&g, NodeId(0), NodeId(3), 2, &g.unit_lengths());
        assert!(sys.insert(NodeId(0), NodeId(3), ps[0].clone()));
        assert!(!sys.insert(NodeId(0), NodeId(3), ps[0].clone()));
        assert!(sys.insert(NodeId(0), NodeId(3), ps[1].clone()));
        assert_eq!(sys.sparsity(), 2);
        assert_eq!(sys.num_pairs(), 1);
        assert_eq!(sys.total_paths(), 2);
        assert!(sys.validate(&g));
        assert_eq!(sys.dilation(), 3);
    }

    #[test]
    fn without_edges_drops_crossing_paths() {
        let g = gen::cycle_graph(4);
        let mut sys = PathSystem::new();
        for p in yen_ksp(&g, NodeId(0), NodeId(2), 2, &g.unit_lengths()) {
            sys.insert(NodeId(0), NodeId(2), p);
        }
        assert_eq!(sys.sparsity(), 2);
        // kill edge 0 (0-1): the clockwise path dies
        let cut = sys.without_edges(&[EdgeId(0)]);
        assert_eq!(cut.sparsity(), 1);
        // kill both first edges of both paths: pair disappears
        let dead = sys.without_edges(&[EdgeId(0), EdgeId(3)]);
        assert_eq!(dead.num_pairs(), 0);
    }

    #[test]
    fn union_merges() {
        let g = gen::cycle_graph(6);
        let ps = yen_ksp(&g, NodeId(0), NodeId(3), 2, &g.unit_lengths());
        let mut a = PathSystem::new();
        a.insert(NodeId(0), NodeId(3), ps[0].clone());
        let mut b = PathSystem::new();
        b.insert(NodeId(0), NodeId(3), ps[1].clone());
        b.insert(
            NodeId(1),
            NodeId(4),
            bfs_path(&g, NodeId(1), NodeId(4)).unwrap(),
        );
        let u = a.union(&b);
        assert_eq!(u.num_pairs(), 2);
        assert_eq!(u.paths(NodeId(0), NodeId(3)).len(), 2);
    }

    #[test]
    fn validate_detailed_reports_broken_invariant() {
        let g = gen::cycle_graph(6);
        let mut sys = PathSystem::new();
        for p in yen_ksp(&g, NodeId(0), NodeId(3), 2, &g.unit_lengths()) {
            sys.insert(NodeId(0), NodeId(3), p);
        }
        assert_eq!(sys.validate_detailed(&g, None), Ok(()));
        assert_eq!(sys.validate_detailed(&g, Some(2)), Ok(()));
        // sparsity bound violation names the pair and the bound
        let err = sys.validate_detailed(&g, Some(1)).unwrap_err();
        assert!(err.contains("sparsity bound 1"), "{err}");
        // a path over a *different* graph is caught as out-of-bounds
        let g2 = gen::cycle_graph(3);
        let mut alien = PathSystem::new();
        alien.insert(
            NodeId(0),
            NodeId(3),
            bfs_path(&g, NodeId(0), NodeId(3)).unwrap(),
        );
        let err = alien.validate_detailed(&g2, None).unwrap_err();
        assert!(err.contains("not a simple path"), "{err}");
        assert!(!alien.validate(&g2));
    }

    #[test]
    #[should_panic(expected = "source mismatch")]
    fn rejects_wrong_endpoints() {
        let g = gen::cycle_graph(4);
        let p = bfs_path(&g, NodeId(0), NodeId(2)).unwrap();
        PathSystem::new().insert(NodeId(1), NodeId(2), p);
    }

    use sor_graph::{EdgeId, NodeId};
}
