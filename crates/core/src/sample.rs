//! Samples of an oblivious routing (Definition 5.2) — the paper's entire
//! construction.
//!
//! * [`sample_k`]: `k` i.i.d. draws (with replacement) from `R`'s `(s, t)`
//!   path distribution for every requested pair — the `s`-sample used for
//!   1-demands (Theorems 2.3/2.5).
//! * [`sample_k_plus_cut`]: `k + mincut(s, t)` draws per pair — the
//!   `(s + cut)`-sample required for arbitrary demands (Corollary 6.2 /
//!   Lemma 2.7; Section 2.1 explains why per-pair cut scaling is
//!   necessary).
//!
//! Both return a [`SampledSystem`] carrying the deduplicated
//! [`PathSystem`] *and* the raw multiset of draws: the dynamic deletion
//! process (Section 5.3) analyses the multiset, while routing uses the
//! set.

use crate::path_system::PathSystem;
use rand::Rng;
use sor_graph::{st_min_cut, Graph, NodeId, Path};
use sor_oblivious::routing::ObliviousRouting;

/// The result of sampling an oblivious routing over a set of pairs.
#[derive(Clone, Debug)]
pub struct SampledSystem {
    /// Deduplicated candidate paths per pair (what gets installed).
    pub system: PathSystem,
    /// The raw draws per pair, with multiplicity, in draw order — the
    /// object the Main Lemma's process manipulates.
    pub raw: Vec<((NodeId, NodeId), Vec<Path>)>,
}

impl SampledSystem {
    /// Number of raw draws for a pair (the `N_{u,v}` of Section 5.3).
    pub fn draws(&self, s: NodeId, t: NodeId) -> usize {
        self.raw
            .iter()
            .find(|((a, b), _)| *a == s && *b == t)
            .map(|(_, v)| v.len())
            .unwrap_or(0)
    }
}

/// Draw `k` paths with replacement from `routing`'s distribution for every
/// pair in `pairs`.
pub fn sample_k<O: ObliviousRouting, R: Rng + ?Sized>(
    routing: &O,
    pairs: &[(NodeId, NodeId)],
    k: usize,
    rng: &mut R,
) -> SampledSystem {
    assert!(k >= 1);
    sample_counts(routing, pairs.iter().map(|&p| (p, k)), rng)
}

/// Draw `k + ⌈mincut(s, t)⌉` paths with replacement per pair — the
/// `(k + cut)`-sample of Corollary 6.2.
pub fn sample_k_plus_cut<O: ObliviousRouting, R: Rng + ?Sized>(
    routing: &O,
    g: &Graph,
    pairs: &[(NodeId, NodeId)],
    k: usize,
    rng: &mut R,
) -> SampledSystem {
    assert!(k >= 1);
    let with_counts: Vec<((NodeId, NodeId), usize)> = pairs
        .iter()
        .map(|&(s, t)| {
            #[allow(clippy::cast_possible_truncation)]
            // sor-check: allow(lossy-cast) — ceil of a small non-negative cut value
            let cut = st_min_cut(g, s, t).ceil() as usize;
            ((s, t), k + cut)
        })
        .collect();
    sample_counts(routing, with_counts.into_iter(), rng)
}

/// Ablation variant of [`sample_k`]: keep drawing until `k` *distinct*
/// paths are installed per pair (or the support is exhausted after
/// `50·k` draws). The paper samples with replacement for analysis
/// convenience; without-replacement can only produce a superset of some
/// with-replacement sample, so it never hurts — this function lets tests
/// and ablations quantify by how much.
pub fn sample_k_distinct<O: ObliviousRouting, R: Rng + ?Sized>(
    routing: &O,
    pairs: &[(NodeId, NodeId)],
    k: usize,
    rng: &mut R,
) -> SampledSystem {
    assert!(k >= 1);
    let mut system = PathSystem::new();
    let mut raw = Vec::new();
    for &(s, t) in pairs {
        assert!(s != t, "self-pair in sample request");
        let _pair_span = sor_obs::span("sample/pair");
        let mut draws = Vec::new();
        let mut attempts = 0;
        while system.paths(s, t).len() < k && attempts < 50 * k {
            attempts += 1;
            let p = routing.sample_path(s, t, rng);
            sor_obs::counter_add!("core/sample/draws");
            if system.insert(s, t, p.clone()) {
                draws.push(p);
            } else {
                sor_obs::counter_add!("core/sample/duplicates");
            }
        }
        raw.push(((s, t), draws));
    }
    let out = SampledSystem { system, raw };
    validate_sample(routing.graph(), &out);
    out
}

/// Shared implementation: per-pair draw counts.
fn sample_counts<O: ObliviousRouting, R: Rng + ?Sized>(
    routing: &O,
    pairs: impl Iterator<Item = ((NodeId, NodeId), usize)>,
    rng: &mut R,
) -> SampledSystem {
    let mut system = PathSystem::new();
    let mut raw = Vec::new();
    for ((s, t), count) in pairs {
        assert!(s != t, "self-pair in sample request");
        let _pair_span = sor_obs::span("sample/pair");
        let mut draws = Vec::with_capacity(count);
        for _ in 0..count {
            let p = routing.sample_path(s, t, rng);
            sor_obs::counter_add!("core/sample/draws");
            sor_obs::observe_into!("core/path/hops", &sor_obs::POW2_BUCKETS, p.hops() as f64);
            if !system.insert(s, t, p.clone()) {
                sor_obs::counter_add!("core/sample/duplicates");
            }
            draws.push(p);
        }
        raw.push(((s, t), draws));
    }
    let out = SampledSystem { system, raw };
    validate_sample(routing.graph(), &out);
    out
}

/// Debug/`validate`-feature self-check: a sampled system must satisfy the
/// path-system invariants, and its sparsity can never exceed the largest
/// per-pair draw count.
fn validate_sample(g: &Graph, sampled: &SampledSystem) {
    if !(cfg!(debug_assertions) || cfg!(feature = "validate")) {
        return;
    }
    let max_draws = sampled.raw.iter().map(|(_, v)| v.len()).max();
    if let Err(msg) = sampled.system.validate_detailed(g, max_draws) {
        // sor-check: allow(unwrap, panic-path) — validator failure means a sampler bug, not recoverable state
        panic!("sampled path system violates its invariants: {msg}");
    }
}

/// The support pairs of a demand, in deterministic order — the usual pair
/// set to sample for.
pub fn demand_pairs(demand: &sor_flow::Demand) -> Vec<(NodeId, NodeId)> {
    demand.entries().iter().map(|&(s, t, _)| (s, t)).collect()
}

/// All ordered pairs of a graph (for full-mesh sampling on small graphs).
pub fn all_pairs(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut v = Vec::with_capacity(g.num_nodes() * (g.num_nodes() - 1));
    for s in g.nodes() {
        for t in g.nodes() {
            if s != t {
                v.push((s, t));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::gen;
    use sor_oblivious::{KspRouting, ValiantHypercube};

    #[test]
    fn sample_k_shape() {
        let g = gen::hypercube(4);
        let r = ValiantHypercube::new(g);
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = [(NodeId(0), NodeId(15)), (NodeId(1), NodeId(14))];
        let s = sample_k(&r, &pairs, 5, &mut rng);
        assert_eq!(s.raw.len(), 2);
        assert_eq!(s.draws(NodeId(0), NodeId(15)), 5);
        assert!(s.system.sparsity() <= 5);
        assert!(s.system.covers(NodeId(1), NodeId(14)));
        assert!(s.system.validate(r.graph()));
    }

    #[test]
    fn dedup_below_k_when_support_small() {
        // KSP with k=1 has a single support path; 5 draws still give
        // sparsity 1.
        let r = KspRouting::new(gen::path_graph(4), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_k(&r, &[(NodeId(0), NodeId(3))], 5, &mut rng);
        assert_eq!(s.system.sparsity(), 1);
        assert_eq!(s.draws(NodeId(0), NodeId(3)), 5);
    }

    #[test]
    fn cut_scaling() {
        // Dumbbell with 3 bridges: cross pair has mincut 3 → k + 3 draws.
        let g = gen::dumbbell(4, 3);
        let r = KspRouting::new(g.clone(), 8);
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_k_plus_cut(&r, &g, &[(NodeId(0), NodeId(4))], 2, &mut rng);
        assert_eq!(s.draws(NodeId(0), NodeId(4)), 5);
        // intra-clique pair: both endpoints carry a bridge, so the
        // mincut is min-degree 4 → 2 + 4 = 6 draws
        let s2 = sample_k_plus_cut(&r, &g, &[(NodeId(1), NodeId(2))], 2, &mut rng);
        assert_eq!(s2.draws(NodeId(1), NodeId(2)), 6);
    }

    #[test]
    fn distinct_sampling_fills_or_exhausts() {
        let g = gen::cycle_graph(6);
        // support size 2 per pair: asking for 4 distinct yields exactly 2
        let r = KspRouting::new(g.clone(), 2);
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_k_distinct(&r, &[(NodeId(0), NodeId(3))], 4, &mut rng);
        assert_eq!(s.system.paths(NodeId(0), NodeId(3)).len(), 2);
        // rich support: asking for 3 distinct yields 3
        let g2 = gen::hypercube(4);
        let v = ValiantHypercube::new(g2);
        let s2 = sample_k_distinct(&v, &[(NodeId(0), NodeId(15))], 3, &mut rng);
        assert_eq!(s2.system.paths(NodeId(0), NodeId(15)).len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::hypercube(3);
        let r = ValiantHypercube::new(g);
        let pairs = [(NodeId(0), NodeId(7))];
        let a = sample_k(&r, &pairs, 4, &mut StdRng::seed_from_u64(9));
        let b = sample_k(&r, &pairs, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.raw[0].1, b.raw[0].1);
    }

    #[test]
    fn helpers() {
        let g = gen::cycle_graph(4);
        assert_eq!(all_pairs(&g).len(), 12);
        let d = sor_flow::Demand::from_pairs([(NodeId(0), NodeId(2))]);
        assert_eq!(demand_pairs(&d), vec![(NodeId(0), NodeId(2))]);
    }

    use sor_graph::NodeId;
}
