//! # sor-core
//!
//! The paper's contribution: **sparse semi-oblivious routing by sampling
//! few paths from a competitive oblivious routing**.
//!
//! Pipeline (Section 2.1's five stages):
//!
//! 1. a graph is given ([`sor_graph`]),
//! 2. a *path system* is designed before any demand is seen —
//!    [`PathSystem`], constructed by [`sample`]-ing an oblivious routing
//!    (Definition 5.2),
//! 3. an adversarial demand is revealed ([`sor_flow::Demand`]),
//! 4. sending rates are re-optimized restricted to the candidate paths —
//!    [`SemiObliviousRouting`] delegating to the MWU solver in
//!    [`sor_flow::restricted`] (fractional, Definition 5.1) or the
//!    rounding pipeline (integral, Definition 6.1),
//! 5. the congestion is compared against the offline optimum — [`eval`].
//!
//! The analysis machinery is executable too:
//!
//! * [`process`] — the dynamic deletion process of Section 5.3,
//! * [`patterns`] — bad patterns (Definition 5.11) and their counting
//!   bound (Lemma 5.13),
//! * [`negassoc`] — Chernoff bounds for negatively associated variables
//!   (Appendix B) as numeric functions,
//! * [`special`] — special demands and the power-of-two bucketing
//!   reduction (Definition 5.5 / Lemma 5.9),
//! * [`lowerbound`] — the Section 8 two-star adversary,
//! * [`completion`] — completion-time competitive routing from
//!   hop-constrained samples (Section 7).
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sor_core::sample::{demand_pairs, sample_k};
//! use sor_core::SemiObliviousRouting;
//! use sor_flow::{demand, max_concurrent_flow};
//! use sor_graph::gen;
//! use sor_oblivious::ValiantHypercube;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let g = gen::hypercube(4);
//! let base = ValiantHypercube::new(g.clone());
//! // Stage 2: install 4 sampled candidate paths per pair, demand-obliviously.
//! let dm = demand::random_permutation(&g, &mut rng);
//! let sampled = sample_k(&base, &demand_pairs(&dm), 4, &mut rng);
//! let sor = SemiObliviousRouting::new(g.clone(), sampled.system);
//! assert!(sor.sparsity() <= 4);
//! // Stage 4: the demand is revealed; re-optimize rates on the candidates.
//! let semi = sor.congestion(&dm, 0.2);
//! // Stage 5: compare with the offline optimum.
//! let opt = max_concurrent_flow(&g, &dm, 0.2);
//! assert!(semi / opt.congestion_upper < 6.0);
//! ```

#![forbid(unsafe_code)]

pub mod completion;
pub mod eval;
pub mod lowerbound;
pub mod negassoc;
pub mod path_system;
pub mod patterns;
pub mod portable;
pub mod process;
pub mod sample;
pub mod semioblivious;
pub mod special;

pub use eval::{evaluate, DemandEval, EvalReport};
pub use path_system::PathSystem;
pub use portable::{system_from_text, system_to_text};
pub use sample::{sample_k, sample_k_distinct, sample_k_plus_cut, SampledSystem};
pub use semioblivious::SemiObliviousRouting;
