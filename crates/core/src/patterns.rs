//! Bad patterns (Definition 5.11) and their counting bound (Lemma 5.13).
//!
//! A bad pattern abstracts a failed run of the deletion process: an
//! `m`-tuple `(c_1, …, c_m)` of nonnegative integers where every nonzero
//! entry exceeds the congestion threshold and the entries sum to at least
//! half the total number of draws. Lemma 5.12 maps every failed run to a
//! bad pattern it witnesses; Lemma 5.13 bounds how many bad patterns exist
//! (so a union bound over them is affordable); Lemma 5.14 bounds each
//! pattern's probability. This module makes the first two executable for
//! small parameters so tests can check them against brute force.

/// Extract the bad pattern witnessed by a run of the deletion process
/// (Lemma 5.12): floor the per-edge deleted weights, normalized by the
/// per-draw weight `theta`. Returns `None` if the run was not a failure
/// (deleted < half the total).
pub fn pattern_of_run(deleted_at: &[f64], theta: f64, total_draws: usize) -> Option<Vec<u64>> {
    assert!(theta > 0.0);
    let deleted: f64 = deleted_at.iter().sum();
    if deleted < theta * total_draws as f64 / 2.0 - 1e-12 {
        return None;
    }
    Some(
        deleted_at
            .iter()
            .map(
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                // sor-check: allow(lossy-cast) — floor of a non-negative bounded ratio
                |&w| (w / theta + 1e-9).floor() as u64,
            )
            .collect(),
    )
}

/// Whether a tuple is a bad pattern for threshold `min_nonzero` (every
/// nonzero entry ≥ `min_nonzero`) and budget `min_sum` (entries sum to at
/// least `min_sum`, capped at `total`).
pub fn is_bad_pattern(pattern: &[u64], min_nonzero: u64, min_sum: u64, total: u64) -> bool {
    let sum: u64 = pattern.iter().sum();
    sum >= min_sum && sum <= total && pattern.iter().all(|&c| c == 0 || c >= min_nonzero)
}

/// Exact count of bad patterns over `m` edges with entries in
/// `{0} ∪ [min_nonzero, total]`, summing to a value in `[min_sum, total]`.
/// Dynamic programming; intended for small parameters (tests, overlays).
pub fn count_bad_patterns(m: usize, min_nonzero: u64, min_sum: u64, total: u64) -> u128 {
    assert!(min_nonzero >= 1);
    // dp[s] = number of tuples over the edges processed so far with sum s.
    #[allow(clippy::cast_possible_truncation)]
    // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
    let cap = total as usize;
    let mut dp = vec![0u128; cap + 1];
    dp[0] = 1;
    for _ in 0..m {
        let mut next = dp.clone(); // entry 0
        for (s, &ways) in dp.iter().enumerate() {
            if ways == 0 {
                continue;
            }
            #[allow(clippy::cast_possible_truncation)]
            // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
            let mut c = min_nonzero as usize;
            while s + c <= cap {
                next[s + c] += ways;
                c += 1;
            }
        }
        dp = next;
    }
    dp.iter()
        .enumerate()
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        .filter(|&(s, _)| s as u64 >= min_sum)
        .map(|(_, &w)| w)
        .sum()
}

/// The Lemma 5.13-style analytic bound: at most `K = ⌊total/min_nonzero⌋`
/// nonzero entries, so the count is at most
/// `Σ_{j≤K} C(m, j) · C(total, j)` (choose the nonzero positions, then the
/// values by stars-and-bars majorization). Loose but union-bound-friendly.
pub fn pattern_count_bound(m: usize, min_nonzero: u64, total: u64) -> f64 {
    #[allow(clippy::cast_possible_truncation)]
    // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
    let k = (total / min_nonzero.max(1)) as usize;
    let mut bound = 0.0f64;
    for j in 0..=k.min(m) {
        #[allow(clippy::cast_possible_truncation)]
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        let t = total as usize;
        bound += binom_f64(m, j) * binom_f64(t, j);
    }
    bound.max(1.0)
}

fn binom_f64(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut r = 1.0f64;
    for i in 0..k {
        r *= (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_of_run_thresholds() {
        // 10 draws of weight 0.5 → total weight 5; failure needs ≥ 2.5
        // deleted.
        let ok = pattern_of_run(&[1.0, 0.0, 1.0], 0.5, 10);
        assert!(ok.is_none(), "only 2.0 < 2.5 deleted");
        let fail = pattern_of_run(&[1.5, 0.0, 1.0], 0.5, 10).expect("failed run");
        assert_eq!(fail, vec![3, 0, 2]);
    }

    #[test]
    fn bad_pattern_predicate() {
        assert!(is_bad_pattern(&[3, 0, 2], 2, 5, 10));
        assert!(!is_bad_pattern(&[3, 1, 2], 2, 5, 10)); // entry 1 < min_nonzero
        assert!(!is_bad_pattern(&[2, 0, 2], 2, 5, 10)); // sum 4 < 5
        assert!(!is_bad_pattern(&[8, 0, 8], 2, 5, 10)); // sum 16 > total
    }

    #[test]
    fn dp_count_matches_brute_force() {
        // m=3 edges, entries in {0} ∪ [2, 6], sum in [3, 6].
        let m = 3;
        let (min_nz, min_sum, total) = (2u64, 3u64, 6u64);
        let mut brute = 0u128;
        for a in 0..=total {
            for b in 0..=total {
                for c in 0..=total {
                    if is_bad_pattern(&[a, b, c], min_nz, min_sum, total) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(count_bad_patterns(m, min_nz, min_sum, total), brute);
    }

    #[test]
    fn analytic_bound_dominates_exact_count() {
        for &(m, min_nz, total) in &[(4usize, 2u64, 8u64), (6, 3, 9), (5, 2, 6)] {
            let exact = count_bad_patterns(m, min_nz, total / 2, total);
            let bound = pattern_count_bound(m, min_nz, total);
            assert!(
                bound >= exact as f64,
                "bound {bound} < exact {exact} for m={m}, min_nz={min_nz}, total={total}"
            );
        }
    }

    #[test]
    fn counts_shrink_with_threshold() {
        // Raising the per-edge threshold (fewer admissible nonzero values)
        // cannot increase the pattern count — the mechanism by which
        // higher congestion thresholds make the union bound affordable.
        let a = count_bad_patterns(5, 2, 5, 10);
        let b = count_bad_patterns(5, 4, 5, 10);
        assert!(b <= a);
    }
}
