//! Plain-text serialization of path systems — the "install the candidate
//! paths on the switches" artifact.
//!
//! Format (one system per file, paths referenced by edge ids of the
//! accompanying graph):
//!
//! ```text
//! system <num_pairs>
//! pair <s> <t> <num_paths>
//! path <e1> <e2> …        # one line per candidate path, edge ids in order
//! ```
//!
//! Deserialization *revalidates* every path against the graph (endpoint
//! and simplicity checks via [`sor_graph::Path::from_edges`]), so a
//! corrupted file cannot produce an ill-formed system.

use crate::path_system::PathSystem;
use sor_graph::{EdgeId, Graph, NodeId, Path};

/// Serialize a path system to the text format (pairs in deterministic
/// order).
pub fn system_to_text(sys: &PathSystem) -> String {
    let mut out = String::new();
    out.push_str(&format!("system {}\n", sys.num_pairs()));
    for (s, t, paths) in sys.pairs() {
        out.push_str(&format!("pair {} {} {}\n", s.0, t.0, paths.len()));
        for p in paths {
            out.push_str("path");
            for e in p.edges() {
                out.push_str(&format!(" {}", e.0));
            }
            out.push('\n');
        }
    }
    out
}

/// Parse and validate a path system against `g`.
pub fn system_from_text(g: &Graph, text: &str) -> Result<PathSystem, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty input")?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("system") {
        return Err("expected 'system <pairs>' header".into());
    }
    let num_pairs: usize = parts
        .next()
        .ok_or("missing pair count")?
        .parse()
        .map_err(|_| "bad pair count")?;

    let mut sys = PathSystem::new();
    for _ in 0..num_pairs {
        let pair_line = lines.next().ok_or("unexpected end of file: pair")?;
        let mut parts = pair_line.split_whitespace();
        if parts.next() != Some("pair") {
            return Err(format!("expected 'pair s t k', got '{pair_line}'"));
        }
        let s: u32 = parts
            .next()
            .ok_or("missing s")?
            .parse()
            .map_err(|_| "bad s")?;
        let t: u32 = parts
            .next()
            .ok_or("missing t")?
            .parse()
            .map_err(|_| "bad t")?;
        let k: usize = parts
            .next()
            .ok_or("missing path count")?
            .parse()
            .map_err(|_| "bad path count")?;
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        if s as usize >= g.num_nodes() || t as usize >= g.num_nodes() {
            return Err(format!("pair {s}→{t}: endpoint out of range"));
        }
        for _ in 0..k {
            let path_line = lines.next().ok_or("unexpected end of file: path")?;
            let mut parts = path_line.split_whitespace();
            if parts.next() != Some("path") {
                return Err(format!("expected 'path e…', got '{path_line}'"));
            }
            let mut edges = Vec::new();
            for tok in parts {
                let e: u32 = tok.parse().map_err(|_| format!("bad edge id '{tok}'"))?;
                // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
                if e as usize >= g.num_edges() {
                    return Err(format!("edge id {e} out of range"));
                }
                edges.push(EdgeId(e));
            }
            let path = Path::from_edges(g, NodeId(s), edges)
                .ok_or_else(|| format!("pair {s}→{t}: invalid path (not simple/connected)"))?;
            if path.target() != NodeId(t) {
                return Err(format!(
                    "pair {s}→{t}: path ends at {}, not {t}",
                    path.target()
                ));
            }
            sys.insert(NodeId(s), NodeId(t), path);
        }
    }
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_k;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::gen;
    use sor_oblivious::KspRouting;

    fn sample_system(g: &Graph) -> PathSystem {
        let r = KspRouting::new(g.clone(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = vec![
            (NodeId(0), NodeId::from_usize(g.num_nodes() - 1)),
            (NodeId(1), NodeId(2)),
        ];
        sample_k(&r, &pairs, 3, &mut rng).system
    }

    #[test]
    fn round_trip() {
        let g = gen::grid(3, 4);
        let sys = sample_system(&g);
        let text = system_to_text(&sys);
        let back = system_from_text(&g, &text).expect("round trip");
        assert_eq!(back.num_pairs(), sys.num_pairs());
        assert_eq!(back.total_paths(), sys.total_paths());
        for (s, t, paths) in sys.pairs() {
            let bp = back.paths(s, t);
            assert_eq!(bp.len(), paths.len());
            for p in paths {
                assert!(bp.contains(p));
            }
        }
    }

    #[test]
    fn validation_rejects_corruption() {
        let g = gen::grid(3, 4);
        let sys = sample_system(&g);
        let text = system_to_text(&sys);
        // corrupt: bump every edge id on path lines out of range
        let bad = text.replace("path ", "path 9999 ");
        assert!(system_from_text(&g, &bad).is_err());
        // corrupt: wrong target (swap a pair's t to s+0... make unreachable)
        let bad2 = text.replacen("pair 1 2", "pair 1 3", 1);
        assert!(system_from_text(&g, &bad2).is_err());
        // truncated file
        let half = &text[..text.len() / 2];
        assert!(system_from_text(&g, half).is_err());
    }

    #[test]
    fn cross_graph_validation() {
        // A system serialized against one graph must not validate against
        // a graph where those edge ids connect different vertices.
        let g = gen::grid(3, 4);
        let sys = sample_system(&g);
        let text = system_to_text(&sys);
        let other = gen::cycle_graph(12);
        assert!(system_from_text(&other, &text).is_err());
    }
}
