//! Completion-time-competitive semi-oblivious routing (Section 7).
//!
//! Lemmas 2.8/2.9: sample candidate paths from *hop-constrained* oblivious
//! routings at geometrically growing hop scales `h = 1, 2, 4, …, diam`;
//! the union is a (quadratically sparser-budgeted) path system that is
//! competitive for `congestion + dilation`. At demand time, each scale's
//! sub-system is rate-adapted independently and the scale with the best
//! `congestion + dilation` wins — the executable version of "for a demand
//! whose optimal routing has dilation between `h_i` and `h_{i+1}`, use the
//! scale-`i` sample".

use crate::path_system::PathSystem;
use crate::sample::sample_k;
use crate::semioblivious::SemiObliviousRouting;
use rand::Rng;
use sor_flow::Demand;
use sor_graph::{diameter, Graph, NodeId};
use sor_hop::HopRouting;

/// The per-scale sampled systems.
#[derive(Clone, Debug)]
pub struct CompletionRouting {
    g: Graph,
    /// `(hop bound h, sampled system from the h-hop routing)`, increasing
    /// in `h`.
    scales: Vec<(usize, PathSystem)>,
}

/// Result of routing a demand for the completion-time objective.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletionResult {
    /// Congestion of the chosen routing.
    pub congestion: f64,
    /// Dilation (max hops over paths carrying weight).
    pub dilation: usize,
    /// The hop scale that won.
    pub scale: usize,
}

impl CompletionResult {
    /// The completion-time objective `congestion + dilation` (\[LMR94\]:
    /// schedules of length O(C + D) exist).
    pub fn completion_time(&self) -> f64 {
        self.congestion + self.dilation as f64
    }
}

impl CompletionRouting {
    /// Build: for each `h ∈ {1, 2, 4, …, ≥ diam}`, construct an `h`-hop
    /// routing with `trees` trees and sample `k` candidate paths per pair.
    pub fn build<R: Rng + ?Sized>(
        g: &Graph,
        pairs: &[(NodeId, NodeId)],
        k: usize,
        trees: usize,
        rng: &mut R,
    ) -> Self {
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        let diam = diameter(g) as usize;
        let mut scales = Vec::new();
        let mut h = 1usize;
        loop {
            let routing = HopRouting::build(g.clone(), h, trees, rng);
            let sampled = sample_k(&routing, pairs, k, rng);
            scales.push((h, sampled.system));
            if h >= diam {
                break;
            }
            h *= 2;
        }
        CompletionRouting {
            g: g.clone(),
            scales,
        }
    }

    /// Number of hop scales.
    pub fn num_scales(&self) -> usize {
        self.scales.len()
    }

    /// The sampled system of the scale with hop bound `h`, if present.
    pub fn scale_system(&self, h: usize) -> Option<&PathSystem> {
        self.scales.iter().find(|(hh, _)| *hh == h).map(|(_, s)| s)
    }

    /// Union of all per-scale systems — the installed path system; its
    /// sparsity is `O(k · log diam)` (Lemma 2.8's quadratic budget comes
    /// from also scaling `k` with `log`, which callers choose).
    pub fn union_system(&self) -> PathSystem {
        self.scales
            .iter()
            .fold(PathSystem::new(), |acc, (_, s)| acc.union(s))
    }

    /// Sparsity of the union system.
    pub fn sparsity(&self) -> usize {
        self.union_system().sparsity()
    }

    /// Integral routing at the winning scale: pick the best scale
    /// fractionally (as [`CompletionRouting::route`]), then round that
    /// scale's rates to per-unit path assignments (Lemma 2.8's integral
    /// statement). Returns the integral result plus one route per unit of
    /// demand, ready for the packet scheduler.
    pub fn route_integral<R: Rng>(
        &self,
        demand: &Demand,
        eps: f64,
        rng: &mut R,
    ) -> Option<(CompletionResult, Vec<sor_graph::Path>)> {
        assert!(demand.is_integral());
        let frac = self.route(demand, eps)?;
        let system = self.scale_system(frac.scale)?.clone();
        let sor = SemiObliviousRouting::new(self.g.clone(), system);
        let integral = sor.route_integral(demand, eps, rng);
        let mut routes = Vec::new();
        let mut dilation = 0usize;
        for (counts, &(s, t, _)) in integral.counts.iter().zip(demand.entries()) {
            for (i, &c) in counts.iter().enumerate() {
                for _ in 0..c {
                    let p = sor.system().paths(s, t)[i].clone();
                    dilation = dilation.max(p.hops());
                    routes.push(p);
                }
            }
        }
        Some((
            CompletionResult {
                congestion: integral.congestion,
                dilation,
                scale: frac.scale,
            },
            routes,
        ))
    }

    /// Route `demand` at the best scale for `congestion + dilation`.
    /// Scales whose system misses a demanded pair are skipped; `None` if
    /// every scale misses some pair.
    pub fn route(&self, demand: &Demand, eps: f64) -> Option<CompletionResult> {
        let mut best: Option<CompletionResult> = None;
        for (h, system) in &self.scales {
            let sor = SemiObliviousRouting::new(self.g.clone(), system.clone());
            if !sor.covers(demand) {
                continue;
            }
            let sol = sor.route_fractional(demand, eps);
            let mut dilation = 0usize;
            for (w, &(s, t, _)) in sol.weights.iter().zip(demand.entries()) {
                for (i, &wi) in w.iter().enumerate() {
                    if wi > 1e-9 {
                        dilation = dilation.max(sor.system().paths(s, t)[i].hops());
                    }
                }
            }
            let cand = CompletionResult {
                congestion: sol.congestion,
                dilation,
                scale: *h,
            };
            if best
                .as_ref()
                .is_none_or(|b| cand.completion_time() < b.completion_time())
            {
                best = Some(cand);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::demand_pairs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::gen;

    #[test]
    fn scales_cover_diameter() {
        let g = gen::cycle_graph(16); // diameter 8
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = [(NodeId(0), NodeId(1))];
        let cr = CompletionRouting::build(&g, &pairs, 2, 2, &mut rng);
        // h = 1, 2, 4, 8
        assert_eq!(cr.num_scales(), 4);
    }

    #[test]
    fn routes_with_bounded_dilation() {
        let g = gen::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let demand = sor_flow::demand::random_matching(&g, 4, &mut rng);
        let pairs = demand_pairs(&demand);
        let cr = CompletionRouting::build(&g, &pairs, 3, 4, &mut rng);
        let res = cr.route(&demand, 0.2).expect("covered");
        assert!(res.congestion > 0.0 && res.congestion.is_finite());
        // hop cap of the largest scale bounds any candidate's dilation:
        // stretch(4) · max(h_max, hopdist) with hopdist ≤ diam = 6.
        assert!(res.dilation <= 4 * 8);
        assert!(res.completion_time() >= 1.0);
    }

    #[test]
    fn adjacent_demand_prefers_small_scale() {
        // Demands between adjacent cycle vertices: the 1-hop scale routes
        // them with dilation ≈ 1–4 and congestion 1; larger scales can
        // only be worse on C+D.
        let g = gen::cycle_graph(12);
        let mut rng = StdRng::seed_from_u64(3);
        let demand = Demand::from_pairs([
            (NodeId(0), NodeId(1)),
            (NodeId(4), NodeId(5)),
            (NodeId(8), NodeId(9)),
        ]);
        let pairs = demand_pairs(&demand);
        let cr = CompletionRouting::build(&g, &pairs, 2, 3, &mut rng);
        let res = cr.route(&demand, 0.15).expect("covered");
        assert!(
            res.dilation <= 6,
            "adjacent pairs routed with dilation {}",
            res.dilation
        );
        assert!(res.completion_time() < 12.0);
    }

    #[test]
    fn integral_routing_matches_demand_units() {
        let g = gen::cycle_graph(10);
        let mut rng = StdRng::seed_from_u64(5);
        let demand =
            Demand::from_triples([(NodeId(0), NodeId(1), 2.0), (NodeId(5), NodeId(6), 1.0)]);
        let pairs = demand_pairs(&demand);
        let cr = CompletionRouting::build(&g, &pairs, 2, 3, &mut rng);
        let (res, routes) = cr.route_integral(&demand, 0.15, &mut rng).expect("covered");
        assert_eq!(routes.len(), 3, "one route per unit");
        assert!(res.congestion >= 1.0 - 1e-9);
        let max_hops = routes.iter().map(|p| p.hops()).max().unwrap();
        assert_eq!(res.dilation, max_hops);
        for p in &routes {
            assert!(p.validate(&g));
        }
    }

    use sor_graph::NodeId;
}
