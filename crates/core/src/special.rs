//! Special demands and the power-of-two bucketing reduction
//! (Definition 5.5, Lemma 5.9).
//!
//! The Main Lemma only handles demands where the ratio `D(u,v) / N_{u,v}`
//! (demand over number of sampled paths) is a fixed constant `θ` on the
//! support — otherwise the Chernoff variables in the deletion process have
//! wildly different scales. Lemma 5.9 recovers arbitrary demands by
//! splitting the support into logarithmically many buckets with
//! near-constant ratio and routing each bucket as if its ratio were the
//! bucket maximum. Experiment E11 ablates this machinery.

use crate::sample::SampledSystem;
use sor_flow::Demand;

/// Whether `demand` is `θ`-special w.r.t. the sample's draw counts:
/// `D(u,v) / N_{u,v} ∈ {0, θ}` for every pair.
pub fn is_special(demand: &Demand, sampled: &SampledSystem, theta: f64) -> bool {
    demand.entries().iter().all(|&(s, t, d)| {
        // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
        if d == 0.0 {
            return true;
        }
        let n = sampled.draws(s, t);
        n > 0 && (d / n as f64 - theta).abs() <= 1e-9 * theta.max(1.0)
    })
}

/// Split `demand` into buckets of near-constant ratio `D(u,v) / N(u,v)`:
/// bucket `b` holds the pairs with ratio in `(max_ratio·2^{-(b+1)},
/// max_ratio·2^{-b}]`. Pairs with ratio below `max_ratio·2^{-num_buckets}`
/// land in one final "tail" bucket (their total contribution is tiny, per
/// the Lemma 5.17 tail argument).
pub fn bucketize(
    demand: &Demand,
    draws: impl Fn(sor_graph::NodeId, sor_graph::NodeId) -> usize,
    num_buckets: usize,
) -> Vec<Demand> {
    assert!(num_buckets >= 1);
    let ratios: Vec<f64> = demand
        .entries()
        .iter()
        .map(|&(s, t, d)| {
            let n = draws(s, t);
            assert!(n > 0, "demanded pair {s}→{t} has no sampled paths");
            d / n as f64
        })
        .collect();
    let max_ratio = ratios.iter().copied().fold(0.0, f64::max);
    // sor-check: allow(float-eq) — 0.0 is an exact sentinel here, not a computed value
    if max_ratio == 0.0 {
        return vec![Demand::new()];
    }
    let mut buckets: Vec<Vec<(sor_graph::NodeId, sor_graph::NodeId, f64)>> =
        vec![Vec::new(); num_buckets + 1];
    for (&(s, t, d), &r) in demand.entries().iter().zip(&ratios) {
        // bucket index: smallest b with r > max_ratio · 2^{-(b+1)}
        let mut b = 0usize;
        let mut bound = max_ratio / 2.0;
        while r <= bound && b < num_buckets {
            b += 1;
            bound /= 2.0;
        }
        buckets[b].push((s, t, d));
    }
    buckets.into_iter().map(Demand::from_triples).collect()
}

/// The special demand *dominating* a bucket: every pair's amount is raised
/// to `θ · N(u,v)` where `θ` is the bucket's maximum ratio. Routing the
/// dominating demand with congestion `c` routes the bucket with congestion
/// ≤ `c` (congestion is monotone in demands).
pub fn dominating_special(
    bucket: &Demand,
    draws: impl Fn(sor_graph::NodeId, sor_graph::NodeId) -> usize,
) -> Demand {
    let theta = bucket
        .entries()
        .iter()
        .map(|&(s, t, d)| d / draws(s, t) as f64)
        .fold(0.0, f64::max);
    Demand::from_triples(
        bucket
            .entries()
            .iter()
            .map(|&(s, t, _)| (s, t, theta * draws(s, t) as f64)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_k;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sor_graph::{gen, NodeId};
    use sor_oblivious::KspRouting;

    #[test]
    fn special_detection() {
        let g = gen::cycle_graph(6);
        let r = KspRouting::new(g, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = [(NodeId(0), NodeId(3)), (NodeId(1), NodeId(4))];
        let sampled = sample_k(&r, &pairs, 4, &mut rng);
        // each pair drew 4 paths; demand 2 per pair → θ = 0.5
        let d = Demand::from_triples([(NodeId(0), NodeId(3), 2.0), (NodeId(1), NodeId(4), 2.0)]);
        assert!(is_special(&d, &sampled, 0.5));
        assert!(!is_special(&d, &sampled, 0.25));
        let skew = Demand::from_triples([(NodeId(0), NodeId(3), 2.0), (NodeId(1), NodeId(4), 1.0)]);
        assert!(!is_special(&skew, &sampled, 0.5));
    }

    #[test]
    fn bucketize_partitions_demand() {
        let d = Demand::from_triples([
            (NodeId(0), NodeId(1), 8.0),
            (NodeId(0), NodeId(2), 4.0),
            (NodeId(0), NodeId(3), 1.0),
            (NodeId(0), NodeId(4), 0.01),
        ]);
        let buckets = bucketize(&d, |_, _| 4, 6);
        let total: f64 = buckets.iter().map(Demand::size).sum();
        assert!((total - d.size()).abs() < 1e-9, "buckets lose demand");
        // the two heavy pairs land in distinct-or-adjacent buckets; the
        // 0.01 pair is far down
        let heavy_bucket = buckets
            .iter()
            .position(|b| b.entries().iter().any(|&(_, t, _)| t == NodeId(1)))
            .unwrap();
        let tiny_bucket = buckets
            .iter()
            .position(|b| b.entries().iter().any(|&(_, t, _)| t == NodeId(4)))
            .unwrap();
        assert!(tiny_bucket > heavy_bucket);
    }

    #[test]
    fn bucket_ratios_within_factor_two() {
        let d = Demand::from_triples([
            (NodeId(0), NodeId(1), 5.0),
            (NodeId(0), NodeId(2), 3.0),
            (NodeId(0), NodeId(3), 2.9),
            (NodeId(0), NodeId(4), 0.7),
        ]);
        let buckets = bucketize(&d, |_, _| 2, 8);
        for b in buckets.iter().take(8) {
            let ratios: Vec<f64> = b.entries().iter().map(|&(_, _, a)| a / 2.0).collect();
            if ratios.len() >= 2 {
                let mx = ratios.iter().copied().fold(0.0, f64::max);
                let mn = ratios.iter().copied().fold(f64::INFINITY, f64::min);
                assert!(mx / mn <= 2.0 + 1e-9, "bucket spans ratio {mx}/{mn}");
            }
        }
    }

    #[test]
    fn dominating_special_dominates_and_is_special() {
        let g = gen::cycle_graph(6);
        let r = KspRouting::new(g, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = [(NodeId(0), NodeId(3)), (NodeId(1), NodeId(4))];
        let sampled = sample_k(&r, &pairs, 4, &mut rng);
        let bucket =
            Demand::from_triples([(NodeId(0), NodeId(3), 2.0), (NodeId(1), NodeId(4), 1.2)]);
        let dom = dominating_special(&bucket, |s, t| sampled.draws(s, t));
        assert!(is_special(&dom, &sampled, 0.5));
        for (&(_, _, a), &(_, _, b)) in bucket.entries().iter().zip(dom.entries()) {
            assert!(b >= a - 1e-12);
        }
    }
}
