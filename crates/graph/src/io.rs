//! Plain-text serialization of graphs.
//!
//! Installing a semi-oblivious path system on real hardware means shipping
//! the topology and candidate paths to controllers; this module provides
//! the minimal, dependency-free interchange format the workspace uses
//! (and the `sor` CLI exposes). Format:
//!
//! ```text
//! graph <n> <m>
//! edge <u> <v> <cap>     # m lines, in EdgeId order
//! ```

use crate::graph::{Graph, NodeId};

/// Serialize a graph to the text format.
pub fn graph_to_text(g: &Graph) -> String {
    let mut out = String::with_capacity(16 * g.num_edges() + 32);
    out.push_str(&format!("graph {} {}\n", g.num_nodes(), g.num_edges()));
    for e in g.edges() {
        out.push_str(&format!("edge {} {} {}\n", e.u.0, e.v.0, e.cap));
    }
    out
}

/// Parse a graph from the text format. Edge ids are assigned in file
/// order, so a round trip preserves every id.
pub fn graph_from_text(text: &str) -> Result<Graph, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty input")?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("graph") {
        return Err("expected 'graph <n> <m>' header".into());
    }
    let n: usize = parts
        .next()
        .ok_or("missing n")?
        .parse()
        .map_err(|_| "bad n")?;
    let m: usize = parts
        .next()
        .ok_or("missing m")?
        .parse()
        .map_err(|_| "bad m")?;
    let mut g = Graph::new(n);
    for (i, line) in lines.enumerate() {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("edge") {
            return Err(format!("line {}: expected 'edge u v cap'", i + 2));
        }
        let u: u32 = parts
            .next()
            .ok_or("missing u")?
            .parse()
            .map_err(|_| format!("line {}: bad u", i + 2))?;
        let v: u32 = parts
            .next()
            .ok_or("missing v")?
            .parse()
            .map_err(|_| format!("line {}: bad v", i + 2))?;
        let cap: f64 = parts
            .next()
            .ok_or("missing cap")?
            .parse()
            .map_err(|_| format!("line {}: bad cap", i + 2))?;
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        if u as usize >= n || v as usize >= n {
            return Err(format!("line {}: endpoint out of range", i + 2));
        }
        if u == v {
            return Err(format!("line {}: self-loop", i + 2));
        }
        if !(cap.is_finite() && cap > 0.0) {
            return Err(format!("line {}: bad capacity", i + 2));
        }
        g.add_edge(NodeId(u), NodeId(v), cap);
    }
    if g.num_edges() != m {
        return Err(format!(
            "header promised {m} edges, file has {}",
            g.num_edges()
        ));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip_preserves_everything() {
        for g in [gen::hypercube(3), gen::abilene(), gen::two_star(2, 3)] {
            let text = graph_to_text(&g);
            let h = graph_from_text(&text).expect("round trip");
            assert_eq!(h.num_nodes(), g.num_nodes());
            assert_eq!(h.num_edges(), g.num_edges());
            for (a, b) in g.edges().iter().zip(h.edges()) {
                assert_eq!(a.u, b.u);
                assert_eq!(a.v, b.v);
                assert!((a.cap - b.cap).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tolerates_comments_and_blank_lines() {
        let text = "# a graph\n\ngraph 2 1\n# the only edge\nedge 0 1 2.5\n";
        let g = graph_from_text(text).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!((g.cap(crate::EdgeId(0)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed() {
        assert!(graph_from_text("").is_err());
        assert!(graph_from_text("graph 2").is_err());
        assert!(graph_from_text("graph 2 1\nedge 0 5 1.0").is_err()); // range
        assert!(graph_from_text("graph 2 1\nedge 0 0 1.0").is_err()); // loop
        assert!(graph_from_text("graph 2 1\nedge 0 1 -1").is_err()); // cap
        assert!(graph_from_text("graph 2 2\nedge 0 1 1").is_err()); // count
        assert!(graph_from_text("graph 2 1\nfoo 0 1 1").is_err()); // keyword
    }
}
