//! Typed numeric units for the routing domain.
//!
//! The three quantities this workspace mixes constantly — edge
//! **capacity**, traffic **rate** (demand / load), and **congestion**
//! (their quotient) — are all `f64` underneath, which makes it easy to
//! feed a load where a capacity belongs and never hear about it. These
//! newtypes make the unit part of the type: a [`Congestion`] can only be
//! built directly from a checked value or by dividing a [`Rate`] by a
//! [`Capacity`], and each constructor validates the invariants the rest
//! of the workspace assumes (finite, sign-correct).
//!
//! All three expose `.get()` and f64 comparison interop so adoption can
//! be incremental: code that still works in raw `f64` converts at the
//! boundary instead of being rewritten wholesale.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

/// Edge capacity: finite and strictly positive (zero-capacity edges are
/// rejected at graph construction).
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Capacity(f64);

/// A traffic rate (demand or load on an edge): finite and non-negative.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Rate(f64);

/// Congestion = load / capacity: non-negative, possibly `+inf` for the
/// "no feasible routing" sentinel, never NaN.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Congestion(f64);

impl Capacity {
    /// A validated capacity. Panics unless `value` is finite and `> 0`.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value > 0.0,
            "capacity must be positive and finite, got {value}"
        );
        Capacity(value)
    }

    /// The unit capacity (one parallel edge in the paper's model).
    pub const UNIT: Capacity = Capacity(1.0);

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Rate {
    /// A validated rate. Panics unless `value` is finite and `>= 0`.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "rate must be non-negative and finite, got {value}"
        );
        Rate(value)
    }

    /// The zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Congestion {
    /// A validated congestion value. Panics on NaN or negative input;
    /// `+inf` is allowed (the "infeasible" sentinel used by solvers).
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(
            !value.is_nan() && value >= 0.0,
            "congestion must be non-negative and not NaN, got {value}"
        );
        Congestion(value)
    }

    /// Zero congestion (empty routing).
    pub const ZERO: Congestion = Congestion(0.0);

    /// The infeasible sentinel.
    pub const INFINITE: Congestion = Congestion(f64::INFINITY);

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The larger of two congestion values (max-congestion aggregation).
    #[inline]
    pub fn max(self, other: Congestion) -> Congestion {
        Congestion(self.0.max(other.0))
    }
}

/// load / capacity — the defining identity of congestion.
impl Div<Capacity> for Rate {
    type Output = Congestion;
    #[inline]
    fn div(self, cap: Capacity) -> Congestion {
        // cap > 0 and rate >= 0 are constructor invariants, so the
        // quotient is automatically a valid congestion.
        Congestion(self.0 / cap.0)
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl AddAssign for Rate {
    #[inline]
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}

/// Scaling a rate by a dimensionless factor (e.g. a path weight).
impl Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, factor: f64) -> Rate {
        Rate::new(self.0 * factor)
    }
}

macro_rules! f64_interop {
    ($($t:ident),*) => {$(
        impl PartialEq<f64> for $t {
            #[inline]
            fn eq(&self, other: &f64) -> bool {
                self.0 == *other
            }
        }
        impl PartialEq<$t> for f64 {
            #[inline]
            fn eq(&self, other: &$t) -> bool {
                *self == other.0
            }
        }
        impl PartialOrd<f64> for $t {
            #[inline]
            fn partial_cmp(&self, other: &f64) -> Option<std::cmp::Ordering> {
                self.0.partial_cmp(other)
            }
        }
        impl PartialOrd<$t> for f64 {
            #[inline]
            fn partial_cmp(&self, other: &$t) -> Option<std::cmp::Ordering> {
                self.partial_cmp(&other.0)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }
        impl From<$t> for f64 {
            #[inline]
            fn from(v: $t) -> f64 {
                v.0
            }
        }
    )*};
}

f64_interop!(Capacity, Rate, Congestion);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congestion_is_rate_over_capacity() {
        let c = Rate::new(3.0) / Capacity::new(2.0);
        assert_eq!(c, Congestion::new(1.5));
        assert_eq!(c.get(), 1.5);
        assert!(c > 1.0 && c < 2.0);
        assert!(1.0 < c);
    }

    #[test]
    fn rate_arithmetic() {
        let mut r = Rate::new(1.0) + Rate::new(0.5);
        r += Rate::new(0.5);
        assert_eq!(r, 2.0);
        assert_eq!(r * 2.0, Rate::new(4.0));
        let total: Rate = [Rate::new(1.0), Rate::new(2.0)].into_iter().sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn max_and_sentinels() {
        assert_eq!(Congestion::ZERO.max(Congestion::new(2.0)), 2.0);
        assert!(Congestion::INFINITE > Congestion::new(1e300));
        assert_eq!(Capacity::UNIT.get(), 1.0);
        assert_eq!(Rate::ZERO.get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn capacity_rejects_zero() {
        Capacity::new(0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be non-negative")]
    fn rate_rejects_negative() {
        Rate::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "not NaN")]
    fn congestion_rejects_nan() {
        Congestion::new(f64::NAN);
    }

    #[test]
    fn infinity_congestion_allowed() {
        assert_eq!(Congestion::new(f64::INFINITY), Congestion::INFINITE);
    }
}
