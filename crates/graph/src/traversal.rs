//! Unweighted traversal: BFS distances, connectivity, hop metrics.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::path::Path;
use std::collections::VecDeque;

/// Sentinel for "unreachable" in hop-distance vectors.
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `src` to every vertex ([`UNREACHABLE`] where there is
/// no path).
pub fn bfs_dists(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    dist[src.index()] = 0;
    let mut q = VecDeque::with_capacity(g.num_nodes());
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for &(_, v) in g.incident(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// BFS parent-edge array from `src`: for each reached vertex other than
/// `src`, the edge through which it was first discovered.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<Option<EdgeId>> {
    let mut parent = vec![None; g.num_nodes()];
    let mut seen = vec![false; g.num_nodes()];
    seen[src.index()] = true;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        for &(e, v) in g.incident(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = Some(e);
                q.push_back(v);
            }
        }
    }
    parent
}

/// A shortest path by hops from `s` to `t`, or `None` if disconnected.
pub fn bfs_path(g: &Graph, s: NodeId, t: NodeId) -> Option<Path> {
    if s == t {
        return Some(Path::trivial(s));
    }
    let parent = bfs_parents(g, s);
    parent[t.index()]?;
    let mut rev_edges = Vec::new();
    let mut cur = t;
    while cur != s {
        // sor-check: allow(unwrap, panic-path) — t's reachability checked above, so every hop has a parent
        let e = parent[cur.index()].expect("walked past the BFS root");
        rev_edges.push(e);
        cur = g.edge(e).other(cur);
    }
    rev_edges.reverse();
    Path::from_edges(g, s, rev_edges)
}

/// Whether the graph is connected. Single-vertex graphs are connected.
pub fn is_connected(g: &Graph) -> bool {
    let d = bfs_dists(g, NodeId(0));
    d.iter().all(|&x| x != UNREACHABLE)
}

/// Hop diameter (max over all pairs of hop distance). Panics if the graph
/// is disconnected. O(n·m) — intended for the small/medium experiment
/// graphs, not giant instances.
pub fn diameter(g: &Graph) -> u32 {
    let mut best = 0;
    for s in g.nodes() {
        let d = bfs_dists(g, s);
        for &x in &d {
            assert!(x != UNREACHABLE, "diameter of a disconnected graph");
            best = best.max(x);
        }
    }
    best
}

/// All-pairs hop distances as a dense row-major matrix (`n × n`).
pub fn all_pairs_hops(g: &Graph) -> Vec<Vec<u32>> {
    g.nodes().map(|s| bfs_dists(g, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bfs_on_path_graph() {
        let g = gen::path_graph(5);
        let d = bfs_dists(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = Graph::new(3);
        g.add_unit_edge(NodeId(0), NodeId(1));
        let d = bfs_dists(&g, NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
        assert!(!is_connected(&g));
    }

    #[test]
    fn bfs_path_is_shortest() {
        let g = gen::cycle_graph(6);
        let p = bfs_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.hops(), 3);
        assert!(p.validate(&g));
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(3));
    }

    #[test]
    fn bfs_path_trivial() {
        let g = gen::cycle_graph(4);
        let p = bfs_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn diameter_of_cycle() {
        assert_eq!(diameter(&gen::cycle_graph(8)), 4);
        assert_eq!(diameter(&gen::cycle_graph(9)), 4);
    }

    #[test]
    fn diameter_of_hypercube() {
        assert_eq!(diameter(&gen::hypercube(4)), 4);
    }

    #[test]
    fn all_pairs_consistent_with_single_source() {
        let g = gen::grid(3, 4);
        let ap = all_pairs_hops(&g);
        for s in g.nodes() {
            assert_eq!(ap[s.index()], bfs_dists(&g, s));
        }
    }
}
