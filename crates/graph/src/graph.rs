//! The undirected multigraph type and its identifiers.

use crate::units::Capacity;
use std::fmt;

/// Index of a vertex in a [`Graph`]. Stored as `u32` to keep adjacency
/// structures compact (the perf guides for this domain recommend narrow
/// indices over `usize` in hot containers).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Index of an (undirected) edge in a [`Graph`]. Parallel edges get
/// distinct `EdgeId`s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The vertex index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        self.0 as usize
    }

    /// The checked typed constructor from a container index: the sanctioned
    /// way to build ids from `usize` arithmetic (a bare `idx as u32` is a
    /// `lossy-cast` lint violation under `sor-check`).
    #[inline]
    pub fn from_usize(idx: usize) -> NodeId {
        // sor-check: allow(unwrap, panic-path) — checked-constructor contract: overflow past u32 ids is unrecoverable
        NodeId(idx.try_into().expect("node index exceeds u32 range"))
    }
}

impl EdgeId {
    /// The edge index as a `usize`, for container indexing.
    #[inline]
    pub fn index(self) -> usize {
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        self.0 as usize
    }

    /// The checked typed constructor from a container index; see
    /// [`NodeId::from_usize`].
    #[inline]
    pub fn from_usize(idx: usize) -> EdgeId {
        // sor-check: allow(unwrap, panic-path) — checked-constructor contract: overflow past u32 ids is unrecoverable
        EdgeId(idx.try_into().expect("edge index exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One undirected edge record: endpoints and capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRec {
    /// First endpoint (no orientation is implied).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Capacity; `1.0` corresponds to one unit edge in the paper's
    /// parallel-edge model. Must be positive.
    pub cap: f64,
}

impl EdgeRec {
    /// The endpoint of this edge that is not `x`.
    ///
    /// Panics in debug builds if `x` is not an endpoint. For self-loops
    /// (disallowed by [`Graph::add_edge`]) this would be ambiguous.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        debug_assert!(x == self.u || x == self.v, "node {x} not on edge");
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }
}

/// An undirected multigraph with positive edge capacities.
///
/// Vertices are `0..n`. Edges are appended in insertion order and never
/// removed; algorithms that need edge deletion (e.g. the dynamic deletion
/// process of Section 5.3) carry their own alive-masks instead, which keeps
/// `EdgeId`s stable across the whole workspace.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    edges: Vec<EdgeRec>,
    /// adjacency: for each vertex, the incident `(edge, other endpoint)`
    /// pairs in insertion order.
    adj: Vec<Vec<(EdgeId, NodeId)>>,
}

impl Graph {
    /// An empty graph on `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "graph must have at least one vertex");
        // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
        let max_n = u32::MAX as usize;
        assert!(n < max_n, "vertex count exceeds u32 index space");
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges (parallel edges counted separately).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::from_usize)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_usize)
    }

    /// All edge records, indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[EdgeRec] {
        &self.edges
    }

    /// The record of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeRec {
        &self.edges[e.index()]
    }

    /// Capacity of edge `e` as a raw `f64` (legacy accessor; prefer
    /// [`Graph::capacity`] in new code).
    #[inline]
    pub fn cap(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].cap
    }

    /// Capacity of edge `e` as a typed [`Capacity`]. Always valid:
    /// [`Graph::add_edge`] rejects non-positive and non-finite values.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> Capacity {
        Capacity::new(self.edges[e.index()].cap)
    }

    /// Add an undirected edge `{u, v}` with capacity `cap`; returns its id.
    ///
    /// Self-loops are rejected (they can never appear on a simple path) and
    /// capacities must be positive and finite.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cap: f64) -> EdgeId {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "endpoint out of range"
        );
        assert!(u != v, "self-loops are not allowed");
        assert!(
            cap.is_finite() && cap > 0.0,
            "capacity must be positive and finite"
        );
        let id = EdgeId::from_usize(self.edges.len());
        self.edges.push(EdgeRec { u, v, cap });
        self.adj[u.index()].push((id, v));
        self.adj[v.index()].push((id, u));
        id
    }

    /// Add a unit-capacity edge (one parallel edge in the paper's model).
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        self.add_edge(u, v, 1.0)
    }

    /// Incident `(edge, neighbor)` pairs of `u`. Parallel edges show up
    /// once per copy.
    #[inline]
    pub fn incident(&self, u: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adj[u.index()]
    }

    /// Degree of `u`, counting parallel edges separately.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Sum of capacities of edges incident to `u` (the "capacitated degree").
    pub fn cap_degree(&self, u: NodeId) -> f64 {
        self.adj[u.index()].iter().map(|&(e, _)| self.cap(e)).sum()
    }

    /// Total capacity over all edges.
    pub fn total_cap(&self) -> f64 {
        self.edges.iter().map(|e| e.cap).sum()
    }

    /// Smallest capacity over all edges (`+inf` for an edgeless graph).
    pub fn min_cap(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.cap)
            .fold(f64::INFINITY, f64::min)
    }

    /// Uniform edge lengths (all `1.0`), the default metric for shortest
    /// paths when nothing else is specified.
    pub fn unit_lengths(&self) -> Vec<f64> {
        vec![1.0; self.edges.len()]
    }

    /// Lengths `1/cap(e)`, the standard "inverse capacity" metric used when
    /// seeding congestion-aware constructions.
    pub fn inv_cap_lengths(&self) -> Vec<f64> {
        self.edges.iter().map(|e| 1.0 / e.cap).collect()
    }

    /// A copy of the graph with the given edges removed (failure
    /// modeling). Edge ids are re-assigned in the copy — do not mix
    /// `EdgeId`s across the two graphs.
    pub fn without_edges(&self, remove: &[EdgeId]) -> Graph {
        let mut g = Graph::new(self.n);
        for (i, e) in self.edges.iter().enumerate() {
            if !remove.contains(&EdgeId::from_usize(i)) {
                g.add_edge(e.u, e.v, e.cap);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_triangle() {
        let mut g = Graph::new(3);
        let e0 = g.add_unit_edge(NodeId(0), NodeId(1));
        let e1 = g.add_unit_edge(NodeId(1), NodeId(2));
        let e2 = g.add_edge(NodeId(2), NodeId(0), 2.5);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.cap(e0), 1.0);
        assert_eq!(g.cap(e2), 2.5);
        assert_eq!(g.edge(e1).other(NodeId(1)), NodeId(2));
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!((g.total_cap() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Graph::new(2);
        let a = g.add_unit_edge(NodeId(0), NodeId(1));
        let b = g.add_unit_edge(NodeId(0), NodeId(1));
        assert_ne!(a, b);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_unit_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_zero_capacity() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    fn cap_degree_sums_incident_capacities() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 2.0);
        g.add_edge(NodeId(0), NodeId(2), 3.0);
        assert!((g.cap_degree(NodeId(0)) - 5.0).abs() < 1e-12);
        assert!((g.cap_degree(NodeId(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inv_cap_lengths() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 4.0);
        assert_eq!(g.inv_cap_lengths(), vec![0.25]);
        assert_eq!(g.unit_lengths(), vec![1.0]);
    }
}
