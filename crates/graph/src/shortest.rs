//! Weighted shortest paths (Dijkstra) under arbitrary per-edge lengths.
//!
//! Lengths are supplied externally as a `&[f64]` indexed by [`EdgeId`]; the
//! congestion-aware constructions (Räcke MWU, hop-penalized trees)
//! repeatedly re-run Dijkstra under evolving metrics, so lengths are not
//! stored on the graph.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry: (distance, node). `BinaryHeap` is a max-heap, so the
/// ordering is reversed.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; distances are finite non-NaN by
        // construction, and total_cmp keeps the order total regardless.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// The result of a single-source Dijkstra run: distances and parent edges.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    /// Source of the run.
    pub source: NodeId,
    /// `dist[v]` = length of the shortest `source`-`v` path
    /// (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` = edge through which `v` is reached on some shortest
    /// path (None for the source and unreachable vertices).
    pub parent: Vec<Option<EdgeId>>,
}

impl ShortestPathTree {
    /// Extract the tree path from the source to `t`, or `None` if `t` is
    /// unreachable.
    pub fn path_to(&self, g: &Graph, t: NodeId) -> Option<Path> {
        if t == self.source {
            return Some(Path::trivial(t));
        }
        self.parent[t.index()]?;
        let mut rev = Vec::new();
        let mut cur = t;
        while cur != self.source {
            let e = self.parent[cur.index()]?;
            rev.push(e);
            cur = g.edge(e).other(cur);
        }
        rev.reverse();
        Path::from_edges(g, self.source, rev)
    }
}

/// Dijkstra from `src` under per-edge `lengths` (must be nonnegative and
/// indexed by `EdgeId`).
pub fn dijkstra(g: &Graph, src: NodeId, lengths: &[f64]) -> ShortestPathTree {
    assert_eq!(lengths.len(), g.num_edges(), "length vector size mismatch");
    debug_assert!(
        lengths.iter().all(|&l| l >= 0.0 && !l.is_nan()),
        "negative or NaN edge length"
    );
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for &(e, v) in g.incident(u) {
            if done[v.index()] {
                continue;
            }
            let nd = d + lengths[e.index()];
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some(e);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPathTree {
        source: src,
        dist,
        parent,
    }
}

/// Shortest `s`-`t` path under `lengths`, or `None` if disconnected.
pub fn shortest_path(g: &Graph, s: NodeId, t: NodeId, lengths: &[f64]) -> Option<Path> {
    dijkstra(g, s, lengths).path_to(g, t)
}

/// All-pairs shortest-path distances under `lengths` (n Dijkstra runs).
pub fn all_pairs_dist(g: &Graph, lengths: &[f64]) -> Vec<Vec<f64>> {
    g.nodes().map(|s| dijkstra(g, s, lengths).dist).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::traversal::bfs_dists;

    #[test]
    fn matches_bfs_on_unit_lengths() {
        let g = gen::grid(4, 4);
        let len = g.unit_lengths();
        for s in g.nodes() {
            let t = dijkstra(&g, s, &len);
            let b = bfs_dists(&g, s);
            for v in g.nodes() {
                assert!((t.dist[v.index()] - b[v.index()] as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn prefers_light_detour() {
        // 0-1 direct cost 10; 0-2-1 costs 1+1.
        let mut g = Graph::new(3);
        g.add_unit_edge(NodeId(0), NodeId(1)); // e0 len 10
        g.add_unit_edge(NodeId(0), NodeId(2)); // e1 len 1
        g.add_unit_edge(NodeId(2), NodeId(1)); // e2 len 1
        let p = shortest_path(&g, NodeId(0), NodeId(1), &[10.0, 1.0, 1.0]).unwrap();
        assert_eq!(p.hops(), 2);
        assert_eq!(p.nodes()[1], NodeId(2));
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let mut g = Graph::new(2);
        let _heavy = g.add_unit_edge(NodeId(0), NodeId(1));
        let light = g.add_unit_edge(NodeId(0), NodeId(1));
        let p = shortest_path(&g, NodeId(0), NodeId(1), &[5.0, 1.0]).unwrap();
        assert_eq!(p.edges(), &[light]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new(3);
        g.add_unit_edge(NodeId(0), NodeId(1));
        assert!(shortest_path(&g, NodeId(0), NodeId(2), &g.unit_lengths()).is_none());
    }

    #[test]
    fn path_to_source_is_trivial() {
        let g = gen::cycle_graph(5);
        let t = dijkstra(&g, NodeId(3), &g.unit_lengths());
        assert_eq!(t.path_to(&g, NodeId(3)).unwrap().hops(), 0);
    }

    #[test]
    fn zero_length_edges_ok() {
        let mut g = Graph::new(3);
        g.add_unit_edge(NodeId(0), NodeId(1));
        g.add_unit_edge(NodeId(1), NodeId(2));
        let t = dijkstra(&g, NodeId(0), &[0.0, 0.0]);
        assert_eq!(t.dist[2], 0.0);
        assert!(t.path_to(&g, NodeId(2)).unwrap().validate(&g));
    }
}
