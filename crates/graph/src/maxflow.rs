//! Dinic's max-flow and s-t min-cut on the undirected capacity graph.
//!
//! Used for the `(s + mincut)`-sampling rule (Definition 5.2 / Corollary
//! 6.2): the number of sampled paths between a pair must scale with the
//! pair's minimum cut for arbitrary-demand guarantees.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

const EPS: f64 = 1e-9;

/// Internal arc for Dinic: `to`, residual capacity, index of reverse arc.
struct Arc {
    to: u32,
    cap: f64,
    rev: u32,
}

struct Dinic {
    arcs: Vec<Vec<Arc>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut arcs: Vec<Vec<Arc>> = (0..n).map(|_| Vec::new()).collect();
        // An undirected edge of capacity c becomes the arc pair
        // (u→v, c) / (v→u, c), each the other's residual. This is the
        // standard encoding: pushing f over u→v leaves c−f forward and
        // c+f "backward", which is exactly undirected residual capacity.
        for e in g.edges() {
            let (u, v, c) = (e.u.index(), e.v.index(), e.cap);
            // Arc counts are bounded by 2·edges < u32::MAX (checked by
            // EdgeId::from_usize at edge insertion).
            let iu = EdgeId::from_usize(arcs[u].len()).0;
            let iv = EdgeId::from_usize(arcs[v].len()).0;
            arcs[u].push(Arc {
                to: e.v.0,
                cap: c,
                rev: iv,
            });
            arcs[v].push(Arc {
                to: e.u.0,
                cap: c,
                rev: iu,
            });
        }
        Dinic {
            arcs,
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for a in &self.arcs[u] {
                // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
                if a.cap > EPS && self.level[a.to as usize] < 0 {
                    // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
                    self.level[a.to as usize] = self.level[u] + 1;
                    // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
                    q.push_back(a.to as usize);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: f64) -> f64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.arcs[u].len() {
            let i = self.iter[u];
            let (to, cap, rev) = {
                let a = &self.arcs[u][i];
                // sor-check: allow(lossy-cast) — widening conversion cannot truncate on supported targets
                (a.to as usize, a.cap, a.rev as usize)
            };
            if cap > EPS && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, f.min(cap));
                if d > EPS {
                    self.arcs[u][i].cap -= d;
                    self.arcs[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }

    fn run(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Maximum `s`-`t` flow value in the undirected capacity graph.
pub fn max_flow(g: &Graph, s: NodeId, t: NodeId) -> f64 {
    assert!(s != t, "max flow needs distinct endpoints");
    Dinic::new(g).run(s.index(), t.index())
}

/// The `s`-`t` minimum cut value (`= max_flow` by duality). The paper's
/// `mincut(s, t)` for unit-capacity multigraphs is the number of
/// edge-disjoint `s`-`t` paths.
pub fn st_min_cut(g: &Graph, s: NodeId, t: NodeId) -> f64 {
    max_flow(g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::Graph;

    #[test]
    fn path_graph_unit_cut() {
        let g = gen::path_graph(5);
        assert!((st_min_cut(&g, NodeId(0), NodeId(4)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_cut_is_two() {
        let g = gen::cycle_graph(7);
        assert!((st_min_cut(&g, NodeId(0), NodeId(3)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn complete_graph_cut() {
        // K5: min cut between any pair = degree = 4.
        let g = gen::complete_graph(5);
        assert!((st_min_cut(&g, NodeId(0), NodeId(3)) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_edges_add_up() {
        let mut g = Graph::new(2);
        g.add_unit_edge(NodeId(0), NodeId(1));
        g.add_unit_edge(NodeId(0), NodeId(1));
        g.add_unit_edge(NodeId(0), NodeId(1));
        assert!((max_flow(&g, NodeId(0), NodeId(1)) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn capacities_respected() {
        // s -2.5- a -1.0- t and s -0.5- t : max flow 1.5.
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 2.5);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 0.5);
        assert!((max_flow(&g, NodeId(0), NodeId(2)) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn hypercube_cut_equals_degree() {
        // In Q_d the min cut between any two vertices is d.
        let g = gen::hypercube(4);
        assert!((st_min_cut(&g, NodeId(0), NodeId(15)) - 4.0).abs() < 1e-6);
        assert!((st_min_cut(&g, NodeId(0), NodeId(1)) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_cut_is_zero() {
        let mut g = Graph::new(4);
        g.add_unit_edge(NodeId(0), NodeId(1));
        g.add_unit_edge(NodeId(2), NodeId(3));
        assert!(max_flow(&g, NodeId(0), NodeId(2)).abs() < 1e-9);
    }

    #[test]
    fn two_star_bridge_cut() {
        // The lower-bound family: cut between leaves of opposite stars is 1,
        // while the cut between the two centers is the middle-vertex count.
        let ts = gen::TwoStar::new(4, 3);
        let g = ts.graph();
        assert!((st_min_cut(g, ts.left_leaf(0), ts.right_leaf(0)) - 1.0).abs() < 1e-6);
        assert!((st_min_cut(g, ts.center1(), ts.center2()) - 4.0).abs() < 1e-6);
    }
}
