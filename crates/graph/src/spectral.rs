//! Spectral diagnostics: the second eigenvalue of the normalized
//! adjacency / the spectral gap.
//!
//! Random-regular graphs are expanders w.h.p.; the experiments that claim
//! "on an expander…" use this module to *certify* the sample they drew
//! (gap bounded away from 0) instead of trusting the generator.

use crate::graph::Graph;

/// Estimate `λ₂`, the second-largest eigenvalue of the lazy random-walk
/// matrix `W = (I + D^{-1}A)/2`, by power iteration on the space
/// orthogonal to the stationary distribution. Deterministic: starts from
/// a fixed deflated vector. Returns a value in `[1/2, 1]`; the *spectral
/// gap* is `1 − λ₂`.
///
/// The lazy walk keeps the spectrum in `[0, 1]`, so power iteration
/// converges to `λ₂` after deflation regardless of bipartiteness.
pub fn lambda2(g: &Graph, iters: usize) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "spectral gap of a single vertex is undefined");
    // capacitated degrees for the walk; stationary ∝ cap_degree
    let deg: Vec<f64> = g.nodes().map(|v| g.cap_degree(v)).collect();
    let total: f64 = deg.iter().sum();
    assert!(total > 0.0, "graph has no edges");
    let pi: Vec<f64> = deg.iter().map(|d| d / total).collect();

    // deflate: remove the π-component (left eigenvector pairing:
    // ⟨x, 1⟩_π = Σ π_i x_i)
    let deflate = |x: &mut [f64]| {
        let c: f64 = x.iter().zip(&pi).map(|(xi, pi)| xi * pi).sum();
        for v in x.iter_mut() {
            *v -= c;
        }
    };

    // fixed pseudo-random-ish start vector
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * 0.7548776662 + 0.31) % 1.0) - 0.5)
        .collect();
    deflate(&mut x);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        // y = W x with W = (I + D^{-1} A)/2 (A capacitated)
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for u in g.nodes() {
            let mut acc = 0.0;
            for &(e, v) in g.incident(u) {
                acc += g.cap(e) * x[v.index()];
            }
            y[u.index()] = 0.5 * x[u.index()] + 0.5 * acc / deg[u.index()].max(1e-300);
        }
        deflate(&mut y);
        let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return 0.5; // x was (numerically) in the span of π
        }
        // Rayleigh-style estimate: ‖Wx‖/‖x‖ with x normalized each step
        lambda = norm / x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    lambda.clamp(0.0, 1.0)
}

/// Spectral gap `1 − λ₂` of the lazy walk. Larger ⇒ better expander;
/// `O(1/n²)`-ish for paths/cycles, `Ω(1)` for random regular graphs.
pub fn spectral_gap(g: &Graph, iters: usize) -> f64 {
    1.0 - lambda2(g, iters)
}

/// Cheeger-style certificate used by tests: the conductance of a sweep
/// cut of the estimated second eigenvector would bound the gap; we only
/// expose the cheap directional check — is the gap at least `threshold`?
pub fn is_expander(g: &Graph, threshold: f64) -> bool {
    spectral_gap(g, 200) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_has_large_gap() {
        // K_n lazy walk: λ₂ = 1/2 − 1/(2(n−1)) ≈ 1/2 ⇒ gap ≈ 1/2.
        let g = gen::complete_graph(10);
        let gap = spectral_gap(&g, 300);
        assert!(gap > 0.45, "K10 gap {gap}");
    }

    #[test]
    fn cycle_gap_shrinks_with_n() {
        let small = spectral_gap(&gen::cycle_graph(8), 600);
        let large = spectral_gap(&gen::cycle_graph(32), 600);
        assert!(
            large < small,
            "C32 gap {large} should be below C8 gap {small}"
        );
        assert!(large < 0.05, "C32 gap {large} should be tiny");
    }

    #[test]
    fn random_regular_is_expander() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::random_regular(64, 4, &mut rng);
        assert!(
            is_expander(&g, 0.05),
            "4-regular random graph should be an expander (gap {})",
            spectral_gap(&g, 200)
        );
    }

    #[test]
    fn path_is_not_an_expander() {
        let g = gen::path_graph(40);
        assert!(!is_expander(&g, 0.05));
    }

    #[test]
    fn lambda_in_range() {
        for g in [gen::grid(4, 4), gen::hypercube(4), gen::star(6)] {
            let l = lambda2(&g, 200);
            assert!((0.0..=1.0).contains(&l), "λ₂ = {l} out of range");
        }
    }
}
