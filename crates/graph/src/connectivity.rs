//! Structural connectivity: bridges, articulation points, and failure-set
//! admissibility.
//!
//! Used by the failure experiments (a failed bridge disconnects demand —
//! the TE harness avoids such failure sets, and these routines certify
//! why) and by the lower-bound family (all inter-block edges of
//! [`crate::gen::TwoStarChain`] are bridges, which is what localizes the
//! adversary's argument to one block).

use crate::graph::{EdgeId, Graph, NodeId};

/// Shared lowlink DFS (iterative). Calls `on_tree_edge_done(parent,
/// child, parent_edge)` when a DFS subtree closes, after lowlinks are
/// final — enough to classify both bridges and articulation points.
struct Lowlink {
    disc: Vec<u32>,
    low: Vec<u32>,
    timer: u32,
}

impl Lowlink {
    fn run(
        g: &Graph,
        mut on_edge_done: impl FnMut(&Lowlink, NodeId, NodeId, EdgeId),
        mut on_root: impl FnMut(NodeId, usize),
    ) -> Self {
        let n = g.num_nodes();
        let mut ll = Lowlink {
            disc: vec![u32::MAX; n],
            low: vec![u32::MAX; n],
            timer: 0,
        };
        // Per-node incident cursor (each node is expanded once).
        let mut cursor = vec![0usize; n];
        for root in g.nodes() {
            if ll.disc[root.index()] != u32::MAX {
                continue;
            }
            let mut root_children = 0usize;
            ll.disc[root.index()] = ll.timer;
            ll.low[root.index()] = ll.timer;
            ll.timer += 1;
            let mut stack: Vec<(NodeId, Option<EdgeId>)> = vec![(root, None)];
            while let Some(&(u, pe)) = stack.last() {
                if cursor[u.index()] < g.degree(u) {
                    let (e, v) = g.incident(u)[cursor[u.index()]];
                    cursor[u.index()] += 1;
                    if Some(e) == pe {
                        // skip the tree edge itself; a parallel copy has a
                        // different EdgeId and correctly counts as a back
                        // edge below
                        continue;
                    }
                    if ll.disc[v.index()] == u32::MAX {
                        ll.disc[v.index()] = ll.timer;
                        ll.low[v.index()] = ll.timer;
                        ll.timer += 1;
                        if u == root {
                            root_children += 1;
                        }
                        stack.push((v, Some(e)));
                    } else {
                        ll.low[u.index()] = ll.low[u.index()].min(ll.disc[v.index()]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        ll.low[p.index()] = ll.low[p.index()].min(ll.low[u.index()]);
                        // sor-check: allow(unwrap) — invariant stated in the expect message
                        on_edge_done(&ll, p, u, pe.expect("non-root has a parent edge"));
                    }
                }
            }
            on_root(root, root_children);
        }
        ll
    }
}

/// All bridge edges (edges whose removal disconnects their component),
/// sorted by id.
pub fn bridges(g: &Graph) -> Vec<EdgeId> {
    let mut out = Vec::new();
    Lowlink::run(
        g,
        |ll, p, u, pe| {
            if ll.low[u.index()] > ll.disc[p.index()] {
                out.push(pe);
            }
        },
        |_, _| {},
    );
    out.sort();
    out
}

/// All articulation points (vertices whose removal disconnects their
/// component), sorted by id.
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let mut is_art = vec![false; g.num_nodes()];
    {
        let is_art_cell = std::cell::RefCell::new(&mut is_art);
        Lowlink::run(
            g,
            |ll, p, u, _| {
                // p cuts if some child subtree can't climb above it. This
                // also fires (vacuously) for roots; the root rule below
                // overwrites with the correct child-count criterion.
                if ll.low[u.index()] >= ll.disc[p.index()] {
                    is_art_cell.borrow_mut()[p.index()] = true;
                }
            },
            |root, children| {
                // overwrite the root's classification with the child-count rule
                is_art_cell.borrow_mut()[root.index()] = children >= 2;
            },
        );
    }
    g.nodes().filter(|v| is_art[v.index()]).collect()
}

/// Whether removing `removed` keeps the graph connected — the failure-set
/// admissibility check used by the TE harness, answered without building
/// the reduced graph.
pub fn connected_without(g: &Graph, removed: &[EdgeId]) -> bool {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId(0)];
    seen[0] = true;
    let mut count = 1usize;
    while let Some(u) = stack.pop() {
        for &(e, v) in g.incident(u) {
            if !seen[v.index()] && !removed.contains(&e) {
                seen[v.index()] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_graph_is_all_bridges() {
        let g = gen::path_graph(5);
        assert_eq!(bridges(&g).len(), 4);
        let arts = articulation_points(&g);
        assert_eq!(arts, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = gen::cycle_graph(6);
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let mut g = Graph::new(2);
        g.add_unit_edge(NodeId(0), NodeId(1));
        g.add_unit_edge(NodeId(0), NodeId(1));
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn single_edge_is_bridge() {
        let mut g = Graph::new(2);
        let e = g.add_unit_edge(NodeId(0), NodeId(1));
        assert_eq!(bridges(&g), vec![e]);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn star_center_is_articulation() {
        let g = gen::star(4);
        assert_eq!(articulation_points(&g), vec![NodeId(0)]);
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn two_star_chain_inter_block_edges_are_bridges() {
        let chain = gen::TwoStarChain::new(&[(2, 3), (3, 4)]);
        let g = chain.graph();
        let bs = bridges(g);
        let (c1a, _) = chain.centers(0);
        let (c1b, _) = chain.centers(1);
        assert!(bs.iter().any(|&e| {
            let rec = g.edge(e);
            (rec.u == c1a && rec.v == c1b) || (rec.u == c1b && rec.v == c1a)
        }));
    }

    #[test]
    fn dumbbell_single_bridge_detected() {
        let g = gen::dumbbell(4, 1);
        let bs = bridges(&g);
        assert_eq!(bs.len(), 1);
        let arts = articulation_points(&g);
        assert_eq!(arts.len(), 2); // both bridge endpoints
    }

    #[test]
    fn grid_has_no_cut_structure() {
        let g = gen::grid(3, 3);
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn connected_without_matches_rebuild() {
        let g = gen::cycle_graph(5);
        assert!(connected_without(&g, &[EdgeId(0)]));
        assert!(!connected_without(&g, &[EdgeId(0), EdgeId(2)]));
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a == b {
                    continue;
                }
                let rm = [EdgeId(a), EdgeId(b)];
                let direct = connected_without(&g, &rm);
                let rebuilt = crate::traversal::is_connected(&g.without_edges(&rm));
                assert_eq!(direct, rebuilt);
            }
        }
    }

    /// Cross-validate bridges against brute force on several generators.
    #[test]
    fn bridges_match_brute_force() {
        for g in [
            gen::path_graph(6),
            gen::cycle_graph(6),
            gen::dumbbell(3, 1),
            gen::star(5),
            gen::grid(2, 4),
            gen::two_star(2, 3),
        ] {
            let fast: Vec<EdgeId> = bridges(&g);
            let brute: Vec<EdgeId> = g
                .edge_ids()
                .filter(|&e| !connected_without(&g, &[e]))
                .collect();
            assert_eq!(fast, brute, "mismatch on a generator graph");
        }
    }

    use crate::graph::{Graph, NodeId};
}
