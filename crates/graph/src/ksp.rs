//! Yen's algorithm for the k shortest loopless paths.
//!
//! Used by the `UniformKsp` baseline oblivious routing (the strategy SMORE
//! compares against) and by tests that need a deterministic family of
//! distinct simple paths between a pair.

use crate::graph::{Graph, NodeId};
use crate::path::Path;
use crate::shortest::dijkstra;

/// The `k` shortest loopless `s`-`t` paths under `lengths`, sorted by
/// non-decreasing length (ties broken arbitrarily but deterministically).
/// Returns fewer than `k` paths when the graph has fewer distinct simple
/// paths between the pair.
///
/// Standard Yen: spur from every prefix of the last accepted path, banning
/// the prefix's root edges and root nodes.
pub fn yen_ksp(g: &Graph, s: NodeId, t: NodeId, k: usize, lengths: &[f64]) -> Vec<Path> {
    assert_eq!(lengths.len(), g.num_edges());
    if k == 0 {
        return Vec::new();
    }
    if s == t {
        return vec![Path::trivial(s)];
    }
    let mut accepted: Vec<Path> = Vec::with_capacity(k);
    // Candidate pool: (length, path). Kept sorted ascending; we pop the
    // smallest. Duplicates are filtered on insertion.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    let first = match dijkstra(g, s, lengths).path_to(g, t) {
        Some(p) => p,
        None => return Vec::new(),
    };
    accepted.push(first);

    while accepted.len() < k {
        // `accepted` starts with `first` and only grows
        let prev = accepted[accepted.len() - 1].clone();
        // Spur from each vertex of the previous path except the target.
        for i in 0..prev.hops() {
            let spur_node = prev.nodes()[i];
            let root_nodes = &prev.nodes()[..=i];
            let root_edges = &prev.edges()[..i];

            // Build a modified metric: ban edges that would recreate an
            // already-accepted path with the same root, and ban root nodes
            // (except the spur node) entirely.
            let mut banned = lengths.to_vec();
            for p in accepted.iter().chain(candidates.iter().map(|(_, p)| p)) {
                if p.hops() > i && p.nodes()[..=i] == *root_nodes {
                    banned[p.edges()[i].index()] = f64::INFINITY;
                }
            }
            for &v in &root_nodes[..i] {
                for &(e, _) in g.incident(v) {
                    banned[e.index()] = f64::INFINITY;
                }
            }

            let spur = dijkstra(g, spur_node, &banned).path_to(g, t);
            let Some(spur_path) = spur else { continue };
            if spur_path.length(&banned).is_infinite() {
                continue; // only reachable through banned edges
            }
            // A prefix of an accepted path is always valid; skipping the
            // spur is a safe fallback if that ever stopped holding.
            let Some(root) = Path::from_edges(g, s, root_edges.to_vec()) else {
                continue;
            };
            let Some(total) = root.join_simplified(&spur_path) else {
                continue;
            };
            // join_simplified may shortcut; only keep genuine s-t simple paths
            // that extend the root exactly (Yen requires root ++ spur simple).
            if total.hops() != root.hops() + spur_path.hops() {
                continue;
            }
            let total_len = total.length(lengths);
            let duplicate =
                accepted.contains(&total) || candidates.iter().any(|(_, p)| *p == total);
            if !duplicate {
                candidates.push((total_len, total));
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the shortest candidate (total order via total_cmp keeps
        // this panic-free even for NaN lengths; nonempty checked above).
        let mut best = 0usize;
        for (i, (l, _)) in candidates.iter().enumerate() {
            if l.total_cmp(&candidates[best].0).is_lt() {
                best = i;
            }
        }
        let (_, path) = candidates.swap_remove(best);
        accepted.push(path);
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn single_path_graph() {
        let g = gen::path_graph(4);
        let ps = yen_ksp(&g, NodeId(0), NodeId(3), 5, &g.unit_lengths());
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].hops(), 3);
    }

    #[test]
    fn cycle_has_two_paths() {
        let g = gen::cycle_graph(6);
        let ps = yen_ksp(&g, NodeId(0), NodeId(2), 5, &g.unit_lengths());
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].hops(), 2);
        assert_eq!(ps[1].hops(), 4);
    }

    #[test]
    fn paths_sorted_and_distinct() {
        let g = gen::grid(3, 3);
        let ps = yen_ksp(&g, NodeId(0), NodeId(8), 6, &g.unit_lengths());
        assert!(ps.len() >= 3);
        for w in ps.windows(2) {
            assert!(w[0].length(&g.unit_lengths()) <= w[1].length(&g.unit_lengths()) + 1e-9);
            assert_ne!(w[0], w[1]);
        }
        for p in &ps {
            assert!(p.validate(&g));
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), NodeId(8));
        }
    }

    #[test]
    fn complete_graph_counts() {
        // K4: s-t paths: direct (1), via one intermediate (2), via two (2) = 5.
        let g = gen::complete_graph(4);
        let ps = yen_ksp(&g, NodeId(0), NodeId(1), 10, &g.unit_lengths());
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn respects_lengths() {
        // Square where one side is heavy.
        let mut g = Graph::new(4);
        g.add_unit_edge(NodeId(0), NodeId(1)); // e0
        g.add_unit_edge(NodeId(1), NodeId(3)); // e1
        g.add_unit_edge(NodeId(0), NodeId(2)); // e2
        g.add_unit_edge(NodeId(2), NodeId(3)); // e3
        let ps = yen_ksp(&g, NodeId(0), NodeId(3), 2, &[10.0, 10.0, 1.0, 1.0]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].nodes()[1], NodeId(2));
        assert_eq!(ps[1].nodes()[1], NodeId(1));
    }

    #[test]
    fn k_zero_and_same_endpoints() {
        let g = gen::cycle_graph(4);
        assert!(yen_ksp(&g, NodeId(0), NodeId(1), 0, &g.unit_lengths()).is_empty());
        let same = yen_ksp(&g, NodeId(2), NodeId(2), 3, &g.unit_lengths());
        assert_eq!(same.len(), 1);
        assert_eq!(same[0].hops(), 0);
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut g = Graph::new(4);
        g.add_unit_edge(NodeId(0), NodeId(1));
        g.add_unit_edge(NodeId(2), NodeId(3));
        assert!(yen_ksp(&g, NodeId(0), NodeId(3), 3, &g.unit_lengths()).is_empty());
    }
}
